//! Section IV/VII of the paper: the nine properties of the COVID-19 case
//! study, checked against the exact published answers.
//!
//! Every assertion in this file is an oracle taken verbatim from the
//! paper; `EXPERIMENTS.md` cross-references them.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::prelude::*;

fn covid() -> FaultTree {
    bfl::ft::corpus::covid()
}

fn sets(names: &[&[&str]]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = names
        .iter()
        .map(|s| {
            let mut v: Vec<String> = s.iter().map(|x| x.to_string()).collect();
            v.sort();
            v
        })
        .collect();
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    out
}

/// Property 1: "Is an infected surface sufficient for the transmission of
/// COVID?" — ∀(IS ⇒ MoT) does **not** hold; the follow-up query
/// ⟦MCS(MoT) ∧ IS⟧ returns the single MCS {IS, H1, H5}.
#[test]
fn property_1_infected_surface() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);
    let q = parse_query("forall IS => MoT").unwrap();
    assert!(!mc.check_query(&q).unwrap());

    let phi = parse_formula("MCS(MoT) & IS").unwrap();
    let vectors = mc.satisfying_vectors(&phi).unwrap();
    assert_eq!(
        mc.vectors_to_failed_sets(&vectors),
        sets(&[&["IS", "H1", "H5"]])
    );
}

/// Property 2: "Does the occurrence of Mode of Transmission require human
/// errors?" — ∀(MoT ⇒ (H1∨H2∨H3∨H4∨H5)) does **not** hold (droplet or
/// airborne transmission needs no human error).
#[test]
fn property_2_human_errors_not_required_for_mot() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);
    let q = parse_query("forall MoT => H1 | H2 | H3 | H4 | H5").unwrap();
    assert!(!mc.check_query(&q).unwrap());

    // The paper's explanation: DT or AT can occur with no human error.
    // Witness: fail exactly {IW, AB} (droplet transmission).
    let b = StatusVector::from_failed_names(&tree, &["IW", "AB"]);
    assert!(mc.holds(&b, &parse_formula("MoT").unwrap()).unwrap());
    assert!(!mc
        .holds(&b, &parse_formula("H1 | H2 | H3 | H4 | H5").unwrap())
        .unwrap());
}

/// Property 3: "Is an object disinfection error sufficient for the
/// occurrence of the TLE?" — ∀(H4 ⇒ IWoS) does **not** hold.
#[test]
fn property_3_h4_not_sufficient() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);
    let q = parse_query("forall H4 => IWoS").unwrap();
    assert!(!mc.check_query(&q).unwrap());
}

/// Property 4: "Are at least 2 human errors sufficient for the occurrence
/// of the TLE?" — ∀(VOT≥2(H1,…,H5) ⇒ IWoS) does **not** hold; the
/// follow-up query for MCSs containing a human error returns **twelve**
/// MCSs.
#[test]
fn property_4_two_human_errors_not_sufficient() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);
    let q = parse_query("forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS").unwrap();
    assert!(!mc.check_query(&q).unwrap());

    // ⟦(MCS(IWoS)∧H1) ∨ … ∨ (MCS(IWoS)∧H5)⟧ — twelve MCSs.
    let phi = parse_formula(
        "MCS(IWoS) & H1 | MCS(IWoS) & H2 | MCS(IWoS) & H3 | MCS(IWoS) & H4 | MCS(IWoS) & H5",
    )
    .unwrap();
    let vectors = mc.satisfying_vectors(&phi).unwrap();
    assert_eq!(vectors.len(), 12);
    // Sanity: these are exactly all MCSs (every MCS contains H1).
    let all = mc
        .satisfying_vectors(&parse_formula("MCS(IWoS)").unwrap())
        .unwrap();
    assert_eq!(vectors, all);
}

/// Property 5: "What are all the MCSs for the TLE that include errors in
/// disinfecting objects?" — ⟦MCS(IWoS) ∧ H4⟧ =
/// {IW, H3, IT, H1, H4, VW} and {IT, H2, H1, H4, VW}.
#[test]
fn property_5_mcs_with_h4() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);
    let phi = parse_formula("MCS(IWoS) & H4").unwrap();
    let vectors = mc.satisfying_vectors(&phi).unwrap();
    assert_eq!(
        mc.vectors_to_failed_sets(&vectors),
        sets(&[
            &["IW", "H3", "IT", "H1", "H4", "VW"],
            &["IT", "H2", "H1", "H4", "VW"],
        ])
    );
}

/// Property 6: "Is not committing any human error sufficient to prevent
/// the occurrence of the TLE?" — the specific vector (all human errors
/// operational, everything else failed) is a path set but **not**
/// minimal, so ∃MPS(IWoS)[H1↦0,…,H5↦0, rest↦1] is false; following
/// pattern 2, counterexamples identify the MPSs {H1} and {H2, H3}.
#[test]
fn property_6_all_human_errors_not_minimal() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);

    // Build MPS(IWoS)[H1↦0,…,H5↦0, e↦1 for every other basic event].
    let mut phi = parse_formula("MPS(IWoS)").unwrap();
    let humans = ["H1", "H2", "H3", "H4", "H5"];
    for h in humans {
        phi = phi.with_evidence(h, false);
    }
    for &be in tree.basic_events() {
        let name = tree.name(be);
        if !humans.contains(&name) {
            phi = phi.with_evidence(name, true);
        }
    }
    // All variables are fixed by evidence, so ∃ asks for the single
    // remaining valuation — false, the vector is not maximal.
    assert!(!mc.check_query(&Query::Exists(phi)).unwrap());

    // The vector itself is a path set (H1 operational keeps SH up)…
    let failed: Vec<&str> = tree
        .basic_event_names()
        .into_iter()
        .filter(|n| !humans.contains(n))
        .collect();
    let b = StatusVector::from_failed_names(&tree, &failed);
    assert!(tree.is_path_set(&b, tree.top()));
    // …and the two pattern-2 counterexamples of the paper are MPSs:
    // {H1} and {H2, H3} (operational sets).
    let mps = mc.minimal_path_sets("IWoS").unwrap();
    assert!(mps.contains(&vec!["H1".to_string()]));
    assert!(mps.contains(&vec!["H2".to_string(), "H3".to_string()]));
    // Both are reachable from b by Algorithm 4 style revision: check
    // Def. 7 validity of the corresponding maximal vectors.
    let phi_mps = parse_formula("MPS(IWoS)").unwrap();
    for keep in [vec!["H1"], vec!["H2", "H3"]] {
        let failed: Vec<&str> = tree
            .basic_event_names()
            .into_iter()
            .filter(|n| !keep.contains(n))
            .collect();
        let v = StatusVector::from_failed_names(&tree, &failed);
        assert!(mc.holds(&v, &phi_mps).unwrap(), "{keep:?}");
        assert!(
            is_valid_counterexample(&mut mc, &b, &v, &phi_mps).unwrap(),
            "{keep:?}"
        );
    }
}

/// Property 7: "What are all the minimal ways to prevent the occurrence of
/// the TLE?" — ⟦MPS(IWoS)⟧: the twelve MPSs printed in the paper.
#[test]
fn property_7_all_mps() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);
    let mps = mc.minimal_path_sets("IWoS").unwrap();
    assert_eq!(
        mps,
        sets(&[
            &["IW", "IT"],
            &["IW", "H2"],
            &["IW", "H4", "IS", "UT"],
            &["IW", "H4", "H5", "UT"],
            &["H3", "IT"],
            &["H3", "H2"],
            &["IT", "PP", "IS", "AB", "MV", "UT"],
            &["IT", "PP", "H5", "AB", "MV", "UT"],
            &["PP", "H4", "IS", "AB", "MV", "UT"],
            &["PP", "H4", "H5", "AB", "MV", "UT"],
            &["H1"],
            &["VW"],
        ])
    );
}

/// Property 8: "Are a contact with an infected object and a contact with
/// an infected surface independent scenarios?" — IDP(CIO, CIS) is
/// **false**; both depend on H1.
#[test]
fn property_8_cio_cis_not_independent() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);
    let q = parse_query("IDP(CIO, CIS)").unwrap();
    assert!(!mc.check_query(&q).unwrap());

    let ibe_cio = mc
        .influencing_basic_events(&parse_formula("CIO").unwrap())
        .unwrap();
    let ibe_cis = mc
        .influencing_basic_events(&parse_formula("CIS").unwrap())
        .unwrap();
    let shared: Vec<&String> = ibe_cio.iter().filter(|e| ibe_cis.contains(e)).collect();
    assert_eq!(shared, vec!["H1"]);
    // Full IBE sets, for the record.
    assert_eq!(ibe_cio, vec!["IT", "H1", "H4"]);
    assert_eq!(ibe_cis, vec!["IS", "H1", "H5"]);
}

/// Property 9: "Is physical proximity superfluous for the occurrence of
/// the TLE?" — SUP(PP) is **false**: PP must not be removed from the
/// tree's leaves.
#[test]
fn property_9_pp_not_superfluous() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);
    assert!(!mc.check_query(&parse_query("SUP(PP)").unwrap()).unwrap());
    // Indeed PP influences the top event.
    let ibe = mc
        .influencing_basic_events(&parse_formula("IWoS").unwrap())
        .unwrap();
    assert!(ibe.contains(&"PP".to_string()));
    // Every basic event influences the top event in this tree — none is
    // superfluous.
    for name in tree.basic_event_names() {
        assert!(
            !mc.check_query(&Query::sup(name)).unwrap(),
            "{name} unexpectedly superfluous"
        );
    }
}

/// The repeated basic events of Fig. 2 are exactly IT, PP, H1, IW
/// (Section IV).
#[test]
fn fig2_repeated_events() {
    let tree = covid();
    let mut counts = std::collections::HashMap::new();
    for g in tree.gates() {
        for &c in tree.children(g) {
            if tree.is_basic(c) {
                *counts.entry(tree.name(c)).or_insert(0) += 1;
            }
        }
    }
    let mut repeated: Vec<&str> = counts
        .iter()
        .filter(|(_, &n)| n > 1)
        .map(|(&k, _)| k)
        .collect();
    repeated.sort();
    assert_eq!(repeated, vec!["H1", "IT", "IW", "PP"]);
}

/// Example 1 of the paper (Section III): ∀(CP ⇒ CP/R) and ∃(CP ∧ CR).
#[test]
fn example_1_queries() {
    let tree = covid();
    let mut mc = ModelChecker::new(&tree);
    assert!(mc
        .check_query(&parse_query("forall CP => \"CP/R\"").unwrap())
        .unwrap());
    assert!(mc
        .check_query(&parse_query("exists CP & CR").unwrap())
        .unwrap());
}
