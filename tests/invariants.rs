//! Structural invariants of fault-tree analysis, checked on random trees
//! and under random model mutations.


// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::ft::generator::{random_tree, RandomTreeConfig};
use bfl::prelude::*;
use proptest::prelude::*;

fn arb_tree() -> impl Strategy<Value = FaultTree> {
    (0u64..3000).prop_map(|seed| {
        random_tree(&RandomTreeConfig {
            num_basic: 7,
            num_gates: 5,
            max_children: 3,
            vot_probability: 0.25,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coherence: fault trees are monotone — failing one more event never
    /// repairs the top.
    #[test]
    fn structure_function_is_monotone(tree in arb_tree(), bits in 0u64..128, extra in 0usize..7) {
        let b = StatusVector::from_bits((0..7).map(|i| (bits >> i) & 1 == 1));
        let before = tree.evaluate(&b, tree.top());
        let more = b.with(extra, true);
        let after = tree.evaluate(&more, tree.top());
        prop_assert!(!before || after, "failure repaired the top: {} -> {}", b, more);
    }

    /// Every enumerated MCS is a minimal cut set, and every MPS vector a
    /// minimal path set, per the Definition 3/4 predicates.
    #[test]
    fn enumerated_sets_satisfy_definitions(tree in arb_tree()) {
        use bfl::ft::analysis;
        let n = tree.num_basic_events();
        for set in analysis::minimal_cut_sets(&tree, tree.top()) {
            let mut b = StatusVector::all_operational(n);
            for i in set {
                b.set(i, true);
            }
            prop_assert!(tree.is_minimal_cut_set(&b, tree.top()), "{}", b);
        }
        for set in analysis::minimal_path_sets(&tree, tree.top()) {
            let mut b = StatusVector::all_failed(n);
            for i in set {
                b.set(i, false);
            }
            prop_assert!(tree.is_minimal_path_set(&b, tree.top()), "{}", b);
        }
    }

    /// MCS families are antichains: no member contains another.
    #[test]
    fn mcs_family_is_an_antichain(tree in arb_tree()) {
        use bfl::ft::analysis;
        let sets = analysis::minimal_cut_sets(&tree, tree.top());
        for (i, a) in sets.iter().enumerate() {
            for b in sets.iter().skip(i + 1) {
                let a_in_b = a.iter().all(|x| b.contains(x));
                let b_in_a = b.iter().all(|x| a.contains(x));
                prop_assert!(!a_in_b && !b_in_a, "{a:?} vs {b:?}");
            }
        }
    }

    /// Mutation robustness: flipping one gate's type still yields a valid
    /// tree on which all engines agree.
    #[test]
    fn gate_flip_mutation_keeps_engines_consistent(seed in 0u64..1500, which in 0usize..5) {
        use bfl::ft::{analysis, zdd_engine};
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 7,
            num_gates: 5,
            max_children: 3,
            vot_probability: 0.0,
            seed,
        });
        // Rebuild with one gate's type flipped.
        let mut b = FaultTreeBuilder::new();
        for &e in tree.basic_events() {
            b.basic_event(tree.name(e)).unwrap();
        }
        for (gi, g) in tree.gates().enumerate() {
            let t = match tree.gate_type(g).unwrap() {
                GateType::And if gi == which => GateType::Or,
                GateType::Or if gi == which => GateType::And,
                t => t,
            };
            let children: Vec<&str> = tree.children(g).iter().map(|&c| tree.name(c)).collect();
            b.gate(tree.name(g), t, children).unwrap();
        }
        let mutated = b.build(tree.name(tree.top())).unwrap();
        let mcs = analysis::minimal_cut_sets(&mutated, mutated.top());
        prop_assert_eq!(&mcs, &analysis::minimal_cut_sets_naive(&mutated, mutated.top()));
        prop_assert_eq!(&mcs, &zdd_engine::minimal_cut_sets_zdd(&mutated, mutated.top()));
    }

    /// The top event probability is monotone in each basic-event
    /// probability (coherent systems).
    #[test]
    fn probability_is_monotone(tree in arb_tree(), which in 0usize..7) {
        use bfl::ft::prob;
        let n = tree.num_basic_events();
        let base = vec![0.3; n];
        let p0 = prob::top_event_probability(&tree, &base).unwrap();
        let mut raised = base.clone();
        raised[which] = 0.8;
        let p1 = prob::top_event_probability(&tree, &raised).unwrap();
        prop_assert!(p1 >= p0 - 1e-12, "p0={p0} p1={p1}");
    }

    /// Modules are sound: a module gate's cone shares no basic event with
    /// the rest of the tree.
    #[test]
    fn modules_have_private_cones(tree in arb_tree()) {
        use bfl::ft::modules;
        for m in modules::modules(&tree) {
            if m == tree.top() {
                continue;
            }
            // Everything reachable from the module gate is "inside"; no
            // outside gate may reference an inside element except m.
            let mut inside = vec![false; tree.len()];
            let mut stack = vec![m];
            while let Some(x) = stack.pop() {
                if inside[x.index()] {
                    continue;
                }
                inside[x.index()] = true;
                stack.extend(tree.children(x).iter().copied());
            }
            for g in tree.gates() {
                if inside[g.index()] {
                    continue;
                }
                for &c in tree.children(g) {
                    prop_assert!(
                        c == m || !inside[c.index()],
                        "module {} leaks {}",
                        tree.name(m),
                        tree.name(c)
                    );
                }
            }
        }
    }
}
