//! Property-based cross-checks: the BDD model checker against the naive
//! reference semantics on random trees, formulae and vectors, plus
//! structural invariants of the analyses.


// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::ft::generator::{random_tree, RandomTreeConfig};
use bfl::logic::semantics;
use bfl::prelude::*;
use proptest::prelude::*;

/// A strategy for small random fault trees (6 basic events, 4 gates).
fn arb_tree() -> impl Strategy<Value = FaultTree> {
    (0u64..5000).prop_map(|seed| {
        random_tree(&RandomTreeConfig {
            num_basic: 6,
            num_gates: 4,
            max_children: 3,
            vot_probability: 0.2,
            seed,
        })
    })
}

/// A strategy for formulae over the element names of the generated trees
/// (gates g0..g3, basic events be0..be5).
fn arb_formula() -> impl Strategy<Value = Formula> {
    let atom_names = prop_oneof![
        (0u32..4).prop_map(|i| format!("g{i}")),
        (0u32..6).prop_map(|i| format!("be{i}")),
    ];
    let leaf = prop_oneof![
        atom_names.prop_map(Formula::atom),
        Just(Formula::top()),
        Just(Formula::bot()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            (inner.clone(), (0u32..6), any::<bool>())
                .prop_map(|(f, i, v)| f.with_evidence(format!("be{i}"), v)),
            inner.clone().prop_map(|f| f.mcs()),
            inner.clone().prop_map(|f| f.mps()),
            (proptest::collection::vec(inner, 1..4), 0u32..4).prop_map(|(ops, k)| {
                Formula::vot(CmpOp::Ge, k, ops)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 2 agrees with the reference semantics on every vector.
    #[test]
    fn checker_matches_reference(tree in arb_tree(), phi in arb_formula(), bits in 0u64..64) {
        let mut mc = ModelChecker::new(&tree);
        let b = StatusVector::from_bits((0..6).map(|i| (bits >> i) & 1 == 1));
        let fast = mc.holds(&b, &phi).unwrap();
        let slow = semantics::eval(&tree, &b, &phi).unwrap();
        prop_assert_eq!(fast, slow, "{} at {}", phi, b);
    }

    /// Algorithm 3 agrees with exhaustive enumeration.
    #[test]
    fn satisfying_vectors_match_reference(tree in arb_tree(), phi in arb_formula()) {
        let mut mc = ModelChecker::new(&tree);
        let fast = mc.satisfying_vectors(&phi).unwrap();
        let slow = semantics::satisfying_vectors(&tree, &phi).unwrap();
        let slow_sorted = {
            let mut s = slow;
            s.sort();
            s
        };
        prop_assert_eq!(fast.len() as u128, mc.count_satisfying(&phi).unwrap());
        prop_assert_eq!(fast, slow_sorted, "{}", phi);
    }

    /// Layer-2 queries agree with exhaustive enumeration.
    #[test]
    fn queries_match_reference(tree in arb_tree(), phi in arb_formula()) {
        let mut mc = ModelChecker::new(&tree);
        for q in [Query::Exists(phi.clone()), Query::Forall(phi.clone())] {
            let fast = mc.check_query(&q).unwrap();
            let slow = semantics::eval_query(&tree, &q).unwrap();
            prop_assert_eq!(fast, slow, "{}", q);
        }
    }

    /// IBE via BDD support equals the definitional IBE.
    #[test]
    fn ibe_matches_reference(tree in arb_tree(), phi in arb_formula()) {
        let mut mc = ModelChecker::new(&tree);
        let fast = mc.influencing_basic_events(&phi).unwrap();
        let slow = semantics::influencing_basic_events(&tree, &phi).unwrap();
        // Reference returns basic-index order; ours too.
        prop_assert_eq!(fast, slow, "{}", phi);
    }

    /// Algorithm 4 always returns a Definition-7-valid counterexample when
    /// the formula is satisfiable.
    #[test]
    fn counterexamples_are_valid(tree in arb_tree(), phi in arb_formula(), bits in 0u64..64) {
        let mut mc = ModelChecker::new(&tree);
        let b = StatusVector::from_bits((0..6).map(|i| (bits >> i) & 1 == 1));
        match counterexample(&mut mc, &b, &phi).unwrap() {
            Counterexample::Found(v) => {
                prop_assert!(is_valid_counterexample(&mut mc, &b, &v, &phi).unwrap(),
                    "{} at {} gave {}", phi, b, v);
            }
            Counterexample::AlreadySatisfies => {
                prop_assert!(mc.holds(&b, &phi).unwrap());
            }
            Counterexample::Unsatisfiable => {
                prop_assert!(mc.satisfying_vectors(&phi).unwrap().is_empty());
            }
        }
    }

    /// MCS/MPS of random trees: the minsol engine, the paper construction,
    /// the bottom-up ZDD engine and the exhaustive reference all agree.
    #[test]
    fn mcs_engines_agree(tree in arb_tree()) {
        use bfl::ft::{analysis, zdd_engine};
        let top = tree.top();
        let minsol = analysis::minimal_cut_sets(&tree, top);
        prop_assert_eq!(&minsol, &analysis::minimal_cut_sets_paper(&tree, top));
        prop_assert_eq!(&minsol, &analysis::minimal_cut_sets_naive(&tree, top));
        prop_assert_eq!(&minsol, &zdd_engine::minimal_cut_sets_zdd(&tree, top));
        prop_assert_eq!(
            minsol.len() as u128,
            zdd_engine::count_minimal_cut_sets_zdd(&tree, top)
        );
        let mps = analysis::minimal_path_sets(&tree, top);
        prop_assert_eq!(&mps, &analysis::minimal_path_sets_paper(&tree, top));
        prop_assert_eq!(&mps, &analysis::minimal_path_sets_naive(&tree, top));
    }

    /// Duality: the MPSs of a tree are the MCSs of its dual (AND↔OR), for
    /// trees without VOT gates.
    #[test]
    fn mps_equals_mcs_of_dual(seed in 0u64..2000) {
        use bfl::ft::analysis;
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 6,
            num_gates: 4,
            max_children: 3,
            vot_probability: 0.0,
            seed,
        });
        // Build the dual tree.
        let mut b = FaultTreeBuilder::new();
        for &e in tree.basic_events() {
            b.basic_event(tree.name(e)).unwrap();
        }
        for g in tree.gates() {
            let dual_type = match tree.gate_type(g).unwrap() {
                GateType::And => GateType::Or,
                GateType::Or => GateType::And,
                GateType::Vot { .. } => unreachable!("vot_probability = 0"),
            };
            let children: Vec<&str> = tree.children(g).iter().map(|&c| tree.name(c)).collect();
            b.gate(tree.name(g), dual_type, children).unwrap();
        }
        let dual = b.build(tree.name(tree.top())).unwrap();
        prop_assert_eq!(
            analysis::minimal_path_sets(&tree, tree.top()),
            analysis::minimal_cut_sets(&dual, dual.top())
        );
    }

    /// The DSL round-trips every generated formula.
    #[test]
    fn dsl_roundtrip(phi in arb_formula()) {
        let printed = phi.to_string();
        let parsed = parse_formula(&printed).unwrap();
        prop_assert_eq!(phi, parsed, "printed `{}`", printed);
    }

    /// Rewrites preserve semantics: desugaring, NNF and simplification all
    /// compile to the same BDD as the original (canonicity gives semantic
    /// equality).
    #[test]
    fn rewrites_preserve_semantics(tree in arb_tree(), phi in arb_formula()) {
        use bfl::logic::rewrite;
        let mut mc = ModelChecker::new(&tree);
        let original = mc.formula_bdd(&phi).unwrap();
        for rewritten in [rewrite::desugar(&phi), rewrite::to_nnf(&phi), rewrite::simplify(&phi)] {
            let f = mc.formula_bdd(&rewritten).unwrap();
            prop_assert_eq!(original, f, "{} vs {}", phi, rewritten);
        }
    }

    /// Galileo round-trips random trees structurally (same MCS).
    #[test]
    fn galileo_roundtrip(tree in arb_tree()) {
        use bfl::ft::{analysis, galileo};
        let text = galileo::to_galileo(&tree, None);
        let model = galileo::parse(&text).unwrap();
        prop_assert_eq!(
            analysis::minimal_cut_sets_names(&tree, tree.top()),
            analysis::minimal_cut_sets_names(&model.tree, model.tree.top())
        );
    }

    /// With dynamic maintenance interleaved — sifting reordering plus
    /// mark-and-sweep GC between queries — the checker still agrees with
    /// the reference semantics on every vector and satisfaction set.
    #[test]
    fn checker_with_sift_and_gc_matches_reference(
        tree in arb_tree(),
        phi in arb_formula(),
        bits in 0u64..64,
    ) {
        let mut mc = ModelChecker::new(&tree);
        let b = StatusVector::from_bits((0..6).map(|i| (bits >> i) & 1 == 1));
        // Warm the caches, maintain, then ask everything again.
        let _ = mc.holds(&b, &phi).unwrap();
        let _ = mc.sift();
        let _ = mc.collect_garbage();
        let fast = mc.holds(&b, &phi).unwrap();
        let slow = semantics::eval(&tree, &b, &phi).unwrap();
        prop_assert_eq!(fast, slow, "{} at {}", phi, b);
        let sats = mc.satisfying_vectors(&phi).unwrap();
        let mut reference = semantics::satisfying_vectors(&tree, &phi).unwrap();
        reference.sort();
        prop_assert_eq!(sats, reference, "{}", phi);
    }

    /// Probability via BDD equals the exhaustive sum on random trees.
    #[test]
    fn probability_matches_reference(tree in arb_tree(), seed in 0u64..1000) {
        use bfl::ft::prob;
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|i| {
                let x = seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32 * 7);
                (x % 1000) as f64 / 1000.0
            })
            .collect();
        let fast = prob::top_event_probability(&tree, &probs).unwrap();
        let slow = prob::probability_naive(&tree, tree.top(), &probs).unwrap();
        prop_assert!((fast - slow).abs() < 1e-9, "fast={} slow={}", fast, slow);
    }
}
