//! Integration suite for the `AnalysisSession` engine API: builder
//! permutations, batch/one-by-one equivalence, thread-safety guarantees,
//! and the COVID case-study verdicts through the new façade.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::sync::Arc;

use bfl::logic::report::SpecKind;
use bfl::prelude::*;

fn covid() -> FaultTree {
    bfl::ft::corpus::covid()
}

/// The nine case-study properties of Section VII as a batch spec, with
/// the paper's verdicts (P5–P7 are enumeration-shaped in the paper; the
/// query forms below are their layer-2 readings).
const COVID_SPEC: &str = "\
# COVID-19 case study, Table/Section VII
P1: forall IS => MoT
P2: forall MoT => H1 | H2 | H3 | H4 | H5
P3: forall H4 => IWoS
P4: forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS
P5: exists MCS(IWoS) & H4
P8: IDP(CIO, CIS)
P9: SUP(PP)
";

const COVID_VERDICTS: [(&str, bool); 7] = [
    ("P1", false),
    ("P2", false),
    ("P3", false),
    ("P4", false),
    ("P5", true),
    ("P8", false),
    ("P9", false),
];

// ---------------------------------------------------------------------
// Thread-safety and ownership.
// ---------------------------------------------------------------------

#[test]
fn session_is_send_sync_and_static() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    fn assert_static<T: 'static>() {}
    assert_send::<AnalysisSession>();
    assert_sync::<AnalysisSession>();
    // No lifetime parameter: the session is an owned, 'static value.
    assert_static::<AnalysisSession>();
    assert_send::<SessionBuilder>();
    assert_send::<Report>();
    assert_send::<Outcome>();
}

#[test]
fn session_outlives_the_scope_that_built_it() {
    let session = {
        let tree = covid();
        AnalysisSession::new(tree)
    };
    assert_eq!(
        session.tree().num_basic_events(),
        covid().num_basic_events()
    );
    assert_eq!(session.minimal_path_sets("IWoS").unwrap().len(), 12);
}

#[test]
fn sessions_share_a_tree_without_cloning() {
    let tree = Arc::new(covid());
    let a = AnalysisSession::new(Arc::clone(&tree));
    let b = AnalysisSession::new(Arc::clone(&tree));
    assert!(Arc::ptr_eq(&a.tree_arc(), &b.tree_arc()));
}

#[test]
fn concurrent_batches_agree() {
    let session = Arc::new(AnalysisSession::new(covid()));
    let spec = Arc::new(Spec::parse(COVID_SPEC).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let s = Arc::clone(&session);
            let spec = Arc::clone(&spec);
            std::thread::spawn(move || {
                let report = s.run(&spec).unwrap();
                report.outcomes.iter().map(|o| o.holds).collect::<Vec<_>>()
            })
        })
        .collect();
    let expected: Vec<bool> = COVID_VERDICTS.iter().map(|&(_, v)| v).collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), expected);
    }
}

// ---------------------------------------------------------------------
// Builder permutations: orderings × scopes × backends.
// ---------------------------------------------------------------------

#[test]
fn builder_permutations_agree_on_verdicts_and_sets() {
    let tree = Arc::new(covid());
    let spec = Spec::parse(COVID_SPEC).unwrap();
    let reference = AnalysisSession::new(Arc::clone(&tree));
    let ref_verdicts: Vec<bool> = reference
        .run(&spec)
        .unwrap()
        .outcomes
        .iter()
        .map(|o| o.holds)
        .collect();
    let ref_mcs = reference.minimal_cut_sets("IWoS").unwrap();
    let ref_mps = reference.minimal_path_sets("IWoS").unwrap();

    let orderings = [
        VariableOrdering::DfsPreorder,
        VariableOrdering::BfsLevel,
        VariableOrdering::Declaration,
        VariableOrdering::BouissouWeight,
    ];
    let scopes = [
        MinimalityScope::GlobalUniverse,
        MinimalityScope::FormulaSupport,
    ];
    for ordering in orderings {
        for scope in scopes {
            for backend in Backend::ALL {
                let session = AnalysisSession::builder()
                    .ordering(ordering)
                    .minimality_scope(scope)
                    .backend(backend)
                    .build(Arc::clone(&tree));
                assert_eq!(session.ordering(), ordering);
                assert_eq!(session.minimality_scope(), scope);
                assert_eq!(session.backend(), backend);

                // Backend/ordering choices never change cut/path sets.
                assert_eq!(
                    session.minimal_cut_sets("IWoS").unwrap(),
                    ref_mcs,
                    "{ordering:?}/{scope:?}/{backend}"
                );
                assert_eq!(
                    session.minimal_path_sets("IWoS").unwrap(),
                    ref_mps,
                    "{ordering:?}/{scope:?}/{backend}"
                );

                // The case-study verdicts are scope-insensitive (none of
                // the seven probe the Table-I corner): all configurations
                // reproduce the paper.
                let verdicts: Vec<bool> = session
                    .run(&spec)
                    .unwrap()
                    .outcomes
                    .iter()
                    .map(|o| o.holds)
                    .collect();
                assert_eq!(verdicts, ref_verdicts, "{ordering:?}/{scope:?}/{backend}");
            }
        }
    }
}

#[test]
fn minimality_scope_changes_table1_pattern3() {
    let tree = bfl::logic::patterns::table1_tree();
    let q = parse_query("exists MCS(e1) & MCS(e3)").unwrap();
    let global = AnalysisSession::new(tree.clone());
    assert!(!global.check_query(&q).unwrap().holds);
    let support = AnalysisSession::builder()
        .minimality_scope(MinimalityScope::FormulaSupport)
        .build(tree);
    assert!(support.check_query(&q).unwrap().holds);
}

// ---------------------------------------------------------------------
// Batch run ≡ one-by-one evaluation.
// ---------------------------------------------------------------------

#[test]
fn batch_run_equals_one_by_one_eval() {
    let tree = Arc::new(covid());
    let spec = Spec::parse(COVID_SPEC).unwrap();

    let batch_session = AnalysisSession::new(Arc::clone(&tree));
    let report = batch_session.run(&spec).unwrap();

    // Fresh session per item: verdicts and explanatory payloads must
    // match the batch exactly (stats legitimately differ — the batch
    // shares caches).
    for (item, outcome) in spec.items.iter().zip(&report.outcomes) {
        let solo = AnalysisSession::new(Arc::clone(&tree));
        let one = solo.eval(item).unwrap();
        assert_eq!(one.holds, outcome.holds, "{}", item.source);
        assert_eq!(one.witnesses, outcome.witnesses, "{}", item.source);
        assert_eq!(
            one.counterexamples, outcome.counterexamples,
            "{}",
            item.source
        );
        assert_eq!(one.shared_events, outcome.shared_events, "{}", item.source);
        assert_eq!(one.label, outcome.label);
    }

    // And both agree with the raw ModelChecker on query items.
    let raw_tree = covid();
    let mut mc = ModelChecker::new(&raw_tree);
    for (item, outcome) in spec.items.iter().zip(&report.outcomes) {
        if let SpecKind::Query(q) = &item.kind {
            assert_eq!(mc.check_query(q).unwrap(), outcome.holds, "{}", item.source);
        }
    }
}

#[test]
fn covid_table_verdicts_with_populated_stats() {
    let session = AnalysisSession::new(covid());
    let spec = Spec::parse(COVID_SPEC).unwrap();
    let report = session.run(&spec).unwrap();

    assert_eq!(report.outcomes.len(), COVID_VERDICTS.len());
    for (outcome, &(label, verdict)) in report.outcomes.iter().zip(&COVID_VERDICTS) {
        assert_eq!(outcome.label.as_deref(), Some(label));
        assert_eq!(outcome.holds, verdict, "{label}: {}", outcome.source);
        // EvalStats are populated per query: every item here compiles a
        // BDD and registers cache traffic.
        assert!(outcome.stats.bdd_nodes > 0, "{label} bdd_nodes");
        assert!(outcome.stats.arena_nodes > 0, "{label} arena_nodes");
        assert!(
            outcome.stats.cache_hits + outcome.stats.cache_misses > 0,
            "{label} cache traffic"
        );
    }

    // Repeated sub-formulae across the batch hit the shared cache: P3
    // re-uses `IWoS` compiled by P1/P2 chains, P4 re-uses the `H*`
    // atoms, P5 re-uses `MCS(IWoS)` machinery…
    assert!(report.totals.cache_hits > 0, "{:?}", report.totals);
    // …and a re-run of the same batch is answered almost entirely from
    // cache: no new arena nodes at all.
    let again = session.run(&spec).unwrap();
    assert_eq!(again.totals.cache_misses, 0);
    assert_eq!(again.totals.arena_nodes, report.totals.arena_nodes);
}

#[test]
fn outcome_payloads_explain_verdicts() {
    let session = AnalysisSession::new(covid());

    // forall-failure carries refuting vectors that really refute.
    let q = parse_query("forall IS => MoT").unwrap();
    let o = session.check_query(&q).unwrap();
    assert!(!o.holds);
    assert!(!o.counterexamples.is_empty() && o.counterexamples.len() <= 3);
    let negated = parse_formula("!(IS => MoT)").unwrap();
    for c in &o.counterexamples {
        assert!(session.check_vector(c, &negated).unwrap().holds);
    }

    // exists-success carries witnesses that really satisfy.
    let q = parse_query("exists MCS(IWoS) & H4").unwrap();
    let o = session.check_query(&q).unwrap();
    assert!(o.holds);
    let phi = parse_formula("MCS(IWoS) & H4").unwrap();
    for w in &o.witnesses {
        assert!(session.check_vector(w, &phi).unwrap().holds);
    }

    // IDP failure names the shared dependency (Property 8: H1).
    let q = parse_query("IDP(CIO, CIS)").unwrap();
    let o = session.check_query(&q).unwrap();
    assert!(!o.holds);
    assert_eq!(o.shared_events, vec!["H1"]);

    // Failed vector checks carry a Definition-7 counterexample.
    let phi = parse_formula("MCS(IWoS)").unwrap();
    let b = session.vector_of_failed(&["IW".into()]).unwrap();
    let o = session.check_vector(&b, &phi).unwrap();
    assert!(!o.holds);
    assert!(matches!(o.counterexample, Some(Counterexample::Found(_))));
}

#[test]
fn witness_limit_zero_disables_vector_witnesses() {
    let session = AnalysisSession::builder().witness_limit(0).build(covid());
    let phi = parse_formula("MCS(IWoS)").unwrap();
    let b = session
        .vector_of_failed(&["H1".into(), "VW".into()])
        .unwrap();
    let o = session.check_vector(&b, &phi).unwrap();
    assert!(o.witnesses.is_empty());
}

#[test]
fn witness_limit_is_respected() {
    let tree = covid();
    let q = parse_query("exists IWoS").unwrap();
    for limit in [0, 1, 5] {
        let session = AnalysisSession::builder()
            .witness_limit(limit)
            .build(tree.clone());
        let o = session.check_query(&q).unwrap();
        assert!(o.holds);
        assert!(o.witnesses.len() <= limit, "limit {limit}");
        if limit > 0 {
            assert!(!o.witnesses.is_empty());
        }
    }
}

// ---------------------------------------------------------------------
// Report rendering.
// ---------------------------------------------------------------------

#[test]
fn report_renders_text_and_json() {
    let session = AnalysisSession::new(covid());
    let spec = Spec::parse("P1: forall IS => MoT\nP5: exists MCS(IWoS) & H4\n").unwrap();
    let report = session.run(&spec).unwrap();

    let text = report.to_string();
    assert!(text.contains("FAIL  P1"), "{text}");
    assert!(text.contains("PASS  P5"), "{text}");
    assert!(text.contains("1/2 hold"), "{text}");

    let json = report.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"label\":\"P1\""), "{json}");
    assert!(json.contains("\"holds\":false"), "{json}");
    assert!(json.contains("\"cache_hits\""), "{json}");
    assert!(json.contains("\"totals\""), "{json}");
    // The paper's P5 witnesses surface as failed-name arrays.
    assert!(json.contains("\"witnesses\":[["), "{json}");
}

#[test]
fn errors_surface_not_panic() {
    let session = AnalysisSession::new(covid());
    let q = parse_query("forall Ghost => IWoS").unwrap();
    assert!(matches!(
        session.check_query(&q),
        Err(BflError::UnknownElement(_))
    ));
    let spec = Spec::parse("[Ghost] IWoS\n").unwrap();
    assert!(session.run(&spec).is_err());
    assert!(session.top_event_probability().is_err());
}
