//! Helpers shared by the integration suites (`mod common;` from each
//! registered test target — this directory is not a test target itself).

#![allow(dead_code)]

use bfl::prelude::*;
use bfl_fault_tree::rng::Prng;

/// A seeded random layer-1 formula over the given element names, with
/// every `Formula` constructor reachable: atoms and constants at the
/// leaves; negation, all binary connectives, evidence (targeting basic
/// events only), `MCS`/`MPS` and `VOT` above them.
pub fn random_formula(
    rng: &mut Prng,
    names: &[String],
    basics: &[String],
    depth: usize,
) -> Formula {
    let leaf = |rng: &mut Prng| -> Formula {
        if rng.gen_bool(0.1) {
            Formula::Const(rng.gen_bool(0.5))
        } else {
            Formula::atom(names[rng.gen_range(0..names.len())].clone())
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..11) {
        0 => leaf(rng),
        1 => random_formula(rng, names, basics, depth - 1).not(),
        2 => random_formula(rng, names, basics, depth - 1).and(random_formula(
            rng,
            names,
            basics,
            depth - 1,
        )),
        3 => random_formula(rng, names, basics, depth - 1).or(random_formula(
            rng,
            names,
            basics,
            depth - 1,
        )),
        4 => random_formula(rng, names, basics, depth - 1).implies(random_formula(
            rng,
            names,
            basics,
            depth - 1,
        )),
        5 => random_formula(rng, names, basics, depth - 1).iff(random_formula(
            rng,
            names,
            basics,
            depth - 1,
        )),
        6 => random_formula(rng, names, basics, depth - 1).neq(random_formula(
            rng,
            names,
            basics,
            depth - 1,
        )),
        7 => random_formula(rng, names, basics, depth - 1).with_evidence(
            basics[rng.gen_range(0..basics.len())].clone(),
            rng.gen_bool(0.5),
        ),
        8 => random_formula(rng, names, basics, depth - 1).mcs(),
        9 => random_formula(rng, names, basics, depth - 1).mps(),
        _ => {
            let n = rng.gen_range(2..=3);
            let ops: Vec<Formula> = (0..n)
                .map(|_| random_formula(rng, names, basics, depth - 1))
                .collect();
            let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ge, CmpOp::Gt][rng.gen_range(0..5)];
            Formula::vot(op, rng.gen_range(0..=n + 1) as u32, ops)
        }
    }
}

/// A random scenario of up to 3 evidence bindings over the basic events.
pub fn random_scenario(rng: &mut Prng, basics: &[String]) -> Scenario {
    let k = rng.gen_range(0..=3);
    let mut s = Scenario::new();
    for _ in 0..k {
        s = s.bind(
            basics[rng.gen_range(0..basics.len())].clone(),
            rng.gen_bool(0.5),
        );
    }
    s
}
