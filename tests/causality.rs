//! Differential and semantic validation of the actual-causality layer:
//! the BDD plan path (`PreparedQuery::cause` / `sweep_causes`) must agree
//! **exactly** — cause sets, totals, truncation — with the brute-force
//! enumeration over all candidate subsets (`semantics::actual_causes_naive`)
//! on seeded random trees; and every returned cause must satisfy the
//! paper-style conditions by direct semantic re-evaluation: the
//! observation is failing, repairing the cause flips the verdict, and no
//! proper subset does.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::prelude::*;
use bfl_core::semantics;
use bfl_fault_tree::generator::{random_tree, RandomTreeConfig};
use bfl_fault_tree::rng::Prng;

mod common;
use common::random_formula;

/// Brute-force causes as sorted name sets, in the BDD path's order
/// (by size, then lexicographically).
fn naive_cause_names(
    tree: &FaultTree,
    phi: &Formula,
    evidence: &[(String, bool)],
) -> Vec<Vec<String>> {
    let sets = semantics::actual_causes_naive(tree, phi, evidence).expect("naive enumeration");
    let mut named: Vec<Vec<String>> = sets
        .iter()
        .map(|s| {
            s.iter()
                .map(|&bi| tree.name(tree.basic_events()[bi]).to_string())
                .collect()
        })
        .collect();
    for set in &mut named {
        set.sort();
    }
    named.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    named
}

/// Re-check the definition directly with the reference recursion:
/// `b ⊨ ϕ`, `b[S→0] ⊭ ϕ`, and every proper subset of `S` leaves the
/// verdict intact (subset-minimality).
fn assert_cause_is_valid(
    tree: &FaultTree,
    phi: &Formula,
    observation: &StatusVector,
    cause: &ActualCause,
) {
    assert!(
        semantics::eval(tree, observation, phi).expect("eval"),
        "observation must be failing for {phi}"
    );
    let idx_of = |name: &str| {
        tree.basic_events()
            .iter()
            .position(|&e| tree.name(e) == name)
            .expect("cause event is a basic event")
    };
    let indices: Vec<usize> = cause.events.iter().map(|n| idx_of(n)).collect();
    let mut repaired = observation.clone();
    for &bi in &indices {
        assert!(
            observation.get(bi),
            "cause event {} must be failed in the observation",
            cause.events[indices.iter().position(|&i| i == bi).unwrap()]
        );
        repaired.set(bi, false);
    }
    assert!(
        !semantics::eval(tree, &repaired, phi).expect("eval"),
        "repairing {{{}}} must flip the verdict of {phi}",
        cause.events.join(", ")
    );
    assert_eq!(
        &repaired, &cause.witness,
        "witness must be the observation with the cause repaired"
    );
    // Minimality: dropping any single event from the repair (i.e. any
    // maximal proper subset) must keep ϕ failing — and by monotonicity
    // of the subset lattice under the but-for check performed above,
    // checking the maximal subsets via brute force over all proper
    // subsets keeps this exact for small causes.
    let k = indices.len();
    for mask in 0..(1u32 << k) {
        if mask == (1u32 << k) - 1 {
            continue; // the full set is the cause itself
        }
        let mut partial = observation.clone();
        for (j, &bi) in indices.iter().enumerate() {
            if mask & (1 << j) != 0 {
                partial.set(bi, false);
            }
        }
        assert!(
            semantics::eval(tree, &partial, phi).expect("eval"),
            "proper subset repair {{mask {mask:b}}} of {{{}}} must not flip {phi}",
            cause.events.join(", ")
        );
    }
}

/// Session path ≡ brute force on seeded random trees, over random
/// formulae and random (partial and full) evidence vectors.
#[test]
fn session_causes_match_brute_force_on_random_trees() {
    let mut rng = Prng::seed_from_u64(0xB0F1_CA05);
    let mut failing = 0usize;
    let mut with_causes = 0usize;
    for seed in 0..10u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 7,
            num_gates: 5,
            max_children: 3,
            vot_probability: 0.2,
            seed: 0xB0F1 + seed,
        });
        let names: Vec<String> = tree.iter().map(|e| tree.name(e).to_string()).collect();
        let basics: Vec<String> = tree
            .basic_event_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let session = AnalysisSession::builder()
            .witness_limit(1 << 10)
            .build(tree);
        for round in 0..7 {
            // Round 0 is the canonical failing case — the top event under
            // the all-failed observation — so every tree contributes at
            // least one observation with causes; the rest are random.
            let phi = if round == 0 {
                Formula::atom(session.tree().name(session.tree().top()))
            } else {
                random_formula(&mut rng, &names, &basics, 2)
            };
            // Alternate full observations with partial evidence (unbound
            // events default to operational).
            let evidence: Vec<(String, bool)> = if round == 0 {
                basics.iter().map(|n| (n.clone(), true)).collect()
            } else if round % 2 == 0 {
                basics
                    .iter()
                    .map(|n| (n.clone(), rng.gen_bool(0.5)))
                    .collect()
            } else {
                (0..rng.gen_range(0..=3))
                    .map(|_| {
                        (
                            basics[rng.gen_range(0..basics.len())].clone(),
                            rng.gen_bool(0.5),
                        )
                    })
                    .collect()
            };
            let outcome = session.cause(&phi, &evidence).expect("session cause");
            let report = outcome.causes.as_ref().expect("cause outcome has report");
            let expected = naive_cause_names(session.tree(), &phi, &evidence);
            let got: Vec<Vec<String>> = report.causes.iter().map(|c| c.events.clone()).collect();
            assert_eq!(got, expected, "causes of {phi} under {evidence:?}");
            assert_eq!(report.total, expected.len() as u128, "exact total");
            assert!(!report.truncated, "limit is far above any cause count");
            assert_eq!(
                outcome.holds,
                report.failing && !expected.is_empty(),
                "verdict is `failing observation with at least one cause`"
            );
            if report.failing {
                failing += 1;
            }
            for cause in &report.causes {
                with_causes += 1;
                assert_cause_is_valid(session.tree(), &phi, &report.observation, cause);
            }
        }
    }
    // The sweep must have exercised the interesting side of the space.
    assert!(failing >= 10, "too few failing observations: {failing}");
    assert!(with_causes >= 10, "too few causes validated: {with_causes}");
}

/// The prepared-plan path (BDD restriction + scenario memo) must agree
/// with the session path (AST specialisation + fresh check) — and a
/// repeat sweep must be pure memo hits.
#[test]
fn prepared_causes_agree_with_specialised_query_path() {
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let top = session.tree().name(session.tree().top()).to_string();
    let queries = [
        "cause(IWoS, IW := 1, H3 := 1, PP := 1, H1 := 1, VW := 1)",
        "cause(CP/R, IW := 1, H3 := 1, IT := 1, H2 := 1)",
        "causes(IWoS, IW := 1, H3 := 1, PP := 1, H1 := 1, VW := 1, 2)",
        "cause(SH & CIW, IW := 1, PP := 1, H1 := 1, VW := 1)",
        "cause(IWoS, IW := 1)", // not failing: no causes
    ];
    let mut scenarios = vec![Scenario::new()];
    for name in ["IT", "H2", "UT", "MV"] {
        scenarios.push(Scenario::new().bind(name, true));
        scenarios.push(Scenario::new().bind(name, false));
    }
    scenarios.push(Scenario::from_pairs([("IT", true), ("H2", true)]));
    for src in queries {
        let q = parse_query(src).expect(src);
        let prepared = session.prepare(&q).expect("prepare");
        assert!(prepared.is_cause_plan());
        for scenario in &scenarios {
            let fast = prepared.cause(scenario).expect("prepared cause");
            let slow = session
                .check_query(&scenario.specialise_query(&q, &top))
                .expect("check_query");
            assert_eq!(fast.holds, slow.holds, "{q} under {scenario}");
            let fast_report = fast.causes.expect("plan path reports causes");
            let slow_report = slow.causes.expect("session path reports causes");
            assert_eq!(
                fast_report, slow_report,
                "cause reports diverge for {q} under {scenario}"
            );
        }
    }
}

/// `sweep_causes` shares the plan's scenario memo: re-sweeping the same
/// set answers every evaluation from the memo and agrees outcome-for-
/// outcome with the first pass.
#[test]
fn sweep_causes_hits_memo_on_repeat() {
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let q = parse_query("cause(IWoS, IW := 1, H3 := 1, PP := 1, H1 := 1, VW := 1)").unwrap();
    let prepared = session.prepare(&q).unwrap();
    let set = ScenarioSet::singletons(session.tree().basic_event_names(), false);
    let cold = prepared.sweep_causes(&set).expect("cold sweep");
    let warm = prepared.sweep_causes(&set).expect("warm sweep");
    assert_eq!(cold.outcomes.len(), warm.outcomes.len());
    for (a, b) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(a.holds, b.holds);
        assert_eq!(a.causes, b.causes);
    }
    assert_eq!(warm.stats.memo_misses, 0, "repeat sweep must be all hits");
    assert_eq!(warm.stats.memo_hits as usize, warm.outcomes.len());
}

/// Shape guards: `cause`/`sweep_causes` on a non-cause plan is a typed
/// error, and probability entry points reject cause plans.
#[test]
fn cause_entry_points_reject_mismatched_plans() {
    let session = AnalysisSession::new(bfl::ft::corpus::fig1());
    let exists = session
        .prepare(&parse_query("exists CP/R").unwrap())
        .unwrap();
    assert!(!exists.is_cause_plan());
    let err = exists.cause(&Scenario::new()).unwrap_err();
    assert!(matches!(err, BflError::PlanShapeMismatch { .. }), "{err}");
    let err = exists
        .sweep_causes(&ScenarioSet::singletons(["IW"], true))
        .unwrap_err();
    assert!(matches!(err, BflError::PlanShapeMismatch { .. }), "{err}");
}
