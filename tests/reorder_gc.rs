//! Property tests for dynamic BDD maintenance: random builds interleaved
//! with `sift()` / `collect_garbage()` must stay semantically equivalent
//! to an untouched manager — SAT counts, evaluations and witness sets
//! agree, and handles remapped by a collection evaluate identically.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::bdd::{Bdd, Manager, Var};
use bfl::prelude::*;
use bfl_fault_tree::generator::{random_tree, RandomTreeConfig};
use bfl_fault_tree::rng::Prng;

mod common;
use common::{random_formula, random_scenario};

/// Builds the same random expression DAG in two managers, returning the
/// parallel handle vectors. Ops cover vars, negation, the apply family,
/// ite and restriction.
fn random_build(
    rng: &mut Prng,
    a: &mut Manager,
    b: &mut Manager,
    num_vars: u32,
    steps: usize,
    fa: &mut Vec<Bdd>,
    fb: &mut Vec<Bdd>,
) {
    let pick = |rng: &mut Prng, len: usize| rng.gen_range(0..len);
    for _ in 0..steps {
        let op = rng.gen_range(0..7);
        let (x, y, z) = (
            pick(rng, fa.len()),
            pick(rng, fa.len()),
            pick(rng, fa.len()),
        );
        let v = Var(rng.gen_range(0..num_vars as usize) as u32);
        let value = rng.gen_bool(0.5);
        let (na, nb) = match op {
            0 => (a.var(v), b.var(v)),
            1 => (a.not(fa[x]), b.not(fb[x])),
            2 => (a.and(fa[x], fa[y]), b.and(fb[x], fb[y])),
            3 => (a.or(fa[x], fa[y]), b.or(fb[x], fb[y])),
            4 => (a.xor(fa[x], fa[y]), b.xor(fb[x], fb[y])),
            5 => (a.ite(fa[x], fa[y], fa[z]), b.ite(fb[x], fb[y], fb[z])),
            _ => (a.restrict(fa[x], v, value), b.restrict(fb[x], v, value)),
        };
        fa.push(na);
        fb.push(nb);
    }
}

/// Asserts that the two handle vectors represent the same functions:
/// model counts over the full universe plus sampled evaluations.
fn assert_equivalent(
    rng: &mut Prng,
    a: &Manager,
    b: &Manager,
    num_vars: u32,
    fa: &[Bdd],
    fb: &[Bdd],
) {
    assert_eq!(fa.len(), fb.len());
    for (i, (&x, &y)) in fa.iter().zip(fb).enumerate() {
        assert_eq!(
            a.sat_count(x, num_vars),
            b.sat_count(y, num_vars),
            "SAT count diverged for handle {i}"
        );
        for _ in 0..16 {
            let bits: u64 = rng.gen_range(0..(1usize << num_vars)) as u64;
            let assign = |v: Var| (bits >> v.index()) & 1 == 1;
            assert_eq!(
                a.eval(x, assign),
                b.eval(y, assign),
                "handle {i} at {bits:b}"
            );
        }
    }
}

#[test]
fn random_builds_with_interleaved_sift_and_gc_stay_equivalent() {
    let mut rng = Prng::seed_from_u64(0xD15EA5E);
    for round in 0..12u64 {
        let num_vars = 6 + (round % 5) as u32; // 6..=10
        let mut touched = Manager::new(num_vars);
        let untouched = &mut Manager::new(num_vars);
        let mut fa: Vec<Bdd> = vec![touched.bot(), touched.top()];
        let mut fb: Vec<Bdd> = vec![untouched.bot(), untouched.top()];
        for _ in 0..4 {
            random_build(
                &mut rng,
                &mut touched,
                untouched,
                num_vars,
                12,
                &mut fa,
                &mut fb,
            );
            // Interleave maintenance on the touched manager only.
            match rng.gen_range(0..3) {
                0 => {
                    let stats = touched.sift(&mut fa);
                    assert!(stats.live_after <= stats.live_before);
                }
                1 => {
                    let gc = touched.collect_garbage(&fa);
                    for f in fa.iter_mut() {
                        *f = gc.remap(*f).expect("rooted handle survives");
                    }
                }
                _ => {
                    // Both, the way the engine composes them.
                    let _ = touched.sift(&mut fa);
                    let gc = touched.collect_garbage(&fa);
                    for f in fa.iter_mut() {
                        *f = gc.remap(*f).expect("rooted handle survives");
                    }
                }
            }
            // Every maintenance primitive leaves a fully auditable
            // arena behind — canonical, sound caches, ordered edges.
            let report = touched.audit();
            assert!(report.is_ok(), "touched arena after maintenance: {report}");
            assert_equivalent(&mut rng, &touched, untouched, num_vars, &fa, &fb);
        }
        // The maintained arena never exceeds the untouched one at rest.
        let gc = touched.collect_garbage(&fa);
        for f in fa.iter_mut() {
            *f = gc.remap(*f).expect("rooted handle survives");
        }
        assert!(touched.arena_size() <= untouched.arena_size() + fa.len());
        assert_equivalent(&mut rng, &touched, untouched, num_vars, &fa, &fb);
        let touched_report = touched.audit();
        let untouched_report = untouched.audit();
        assert!(touched_report.is_ok(), "{touched_report}");
        assert!(untouched_report.is_ok(), "{untouched_report}");
    }
}

#[test]
fn sift_keeps_canonicity_with_fresh_operations() {
    // After maintenance, rebuilding a function from scratch must land on
    // the same node as its maintained handle (hash-consing stays sound).
    let mut rng = Prng::seed_from_u64(0xCAFE);
    for _ in 0..8 {
        let num_vars = 8u32;
        let mut m = Manager::new(num_vars);
        let mut fs: Vec<Bdd> = vec![m.bot(), m.top()];
        let mut mirror = Manager::new(num_vars); // only to drive the same build
        let mut gs: Vec<Bdd> = vec![mirror.bot(), mirror.top()];
        random_build(
            &mut rng,
            &mut m,
            &mut mirror,
            num_vars,
            20,
            &mut fs,
            &mut gs,
        );
        let _ = m.sift(&mut fs);
        let gc = m.collect_garbage(&fs);
        for f in fs.iter_mut() {
            *f = gc.remap(*f).expect("rooted");
        }
        let report = m.audit();
        assert!(report.is_ok(), "arena after sift + gc: {report}");
        // x ∧ y rebuilt twice gives the same handle; double negation is
        // the identity on every maintained handle.
        for &f in fs.iter().take(8) {
            let n = m.not(f);
            assert_eq!(m.not(n), f);
            let idem = m.and(f, f);
            assert_eq!(idem, f);
        }
    }
}

#[test]
fn tree_bdd_maintenance_matches_untouched_translation() {
    let mut rng = Prng::seed_from_u64(0xB0BA);
    for seed in 0..6u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 10,
            num_gates: 7,
            max_children: 3,
            vot_probability: 0.2,
            seed: 0xFEED + seed,
        });
        let mut plain = bfl_fault_tree::bdd::TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let mut maintained = bfl_fault_tree::bdd::TreeBdd::new(&tree, VariableOrdering::Sifted);
        for e in tree.iter() {
            let _ = plain.element_bdd(&tree, e);
            let _ = maintained.element_bdd(&tree, e);
            if rng.gen_bool(0.3) {
                let _ = maintained.sift();
                let _ = maintained.collect_garbage();
            }
        }
        let _ = maintained.sift();
        let _ = maintained.collect_garbage();
        let report = maintained.manager().audit();
        assert!(report.is_ok(), "maintained arena: {report}");
        for e in tree.iter() {
            let f = plain.element_bdd(&tree, e);
            let g = maintained.element_bdd(&tree, e);
            for _ in 0..40 {
                let bits: Vec<bool> = (0..tree.num_basic_events())
                    .map(|_| rng.gen_bool(0.5))
                    .collect();
                let b = StatusVector::from_bits(bits);
                assert_eq!(
                    plain.eval_vector(&tree, f, &b),
                    maintained.eval_vector(&tree, g, &b),
                    "element {} at {b}",
                    tree.name(e)
                );
            }
        }
    }
}

#[test]
fn sessions_with_maintenance_agree_with_static_sessions() {
    let mut rng = Prng::seed_from_u64(0xA11CE);
    for seed in 0..4u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 8,
            num_gates: 5,
            max_children: 3,
            vot_probability: 0.2,
            seed: 0xACE + seed,
        });
        let names: Vec<String> = tree.iter().map(|e| tree.name(e).to_string()).collect();
        let basics: Vec<String> = tree
            .basic_event_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let stat = AnalysisSession::new(tree.clone());
        let dynamic = AnalysisSession::builder()
            .ordering(VariableOrdering::Sifted)
            .reorder(ReorderPolicy::OnPrepare)
            .gc(true)
            .build(tree);
        for _ in 0..6 {
            let phi = random_formula(&mut rng, &names, &basics, 3);
            // Full satisfaction sets and counts are order-independent.
            match (
                stat.satisfying_vectors(&phi),
                dynamic.satisfying_vectors(&phi),
            ) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{phi}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "{phi}"),
                (a, b) => panic!("paths disagree on {phi}: {a:?} vs {b:?}"),
            }
            if let (Ok(a), Ok(b)) = (stat.count_satisfying(&phi), dynamic.count_satisfying(&phi)) {
                assert_eq!(a, b, "{phi}");
            }
            let q = if rng.gen_bool(0.5) {
                Query::exists(phi)
            } else {
                Query::forall(phi)
            };
            // Prepared path on the maintained session: every prepare
            // sifts + collects, every eval restricts remapped roots.
            if let Ok(prepared) = dynamic.prepare(&q) {
                for _ in 0..3 {
                    let scenario = random_scenario(&mut rng, &basics);
                    let top = dynamic.tree().name(dynamic.tree().top()).to_string();
                    let fast = prepared.eval(&scenario).expect("eval");
                    let slow = stat
                        .check_query(&scenario.specialise_query(&q, &top))
                        .expect("static path");
                    assert_eq!(fast.holds, slow.holds, "{q} under {scenario}");
                }
            }
        }
        // The maintained session's books balance.
        let stats = dynamic.maintenance_stats();
        assert!(stats.sift_runs >= 1, "OnPrepare must have sifted");
        assert!(stats.gc_runs >= 1, "GC was enabled");
        assert!(stats.audits_run >= 1, "every maintenance cycle audits");
        assert_eq!(stats.audit_violations, 0, "arena must audit clean");
    }
}

#[test]
fn prepared_probabilities_survive_interleaved_sift_and_gc() {
    // The plan's node-keyed Shannon memo is invalidated through the
    // GC/reorder plan registry: every maintenance pass bumps the plan
    // generation and the next walk starts fresh. Interleaving explicit
    // maintain() calls with probability evaluations must never change a
    // value — cross-checked against a static session and the naive
    // reference.
    use bfl::logic::quant;

    let mut rng = Prng::seed_from_u64(0x5EED);
    for seed in 0..3u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 8,
            num_gates: 6,
            max_children: 3,
            vot_probability: 0.2,
            seed: 0xC0DE + seed,
        });
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(5..95) as f64 / 100.0)
            .collect();
        let names: Vec<String> = tree.iter().map(|e| tree.name(e).to_string()).collect();
        let basics: Vec<String> = tree
            .basic_event_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let dynamic = AnalysisSession::builder()
            .ordering(VariableOrdering::Sifted)
            .reorder(ReorderPolicy::OnPrepare)
            .gc(true)
            .probabilities(probs.iter().map(|&p| Some(p)).collect())
            .build(tree.clone());
        for _ in 0..4 {
            let phi = random_formula(&mut rng, &names, &basics, 3);
            let Ok(expected) = quant::probability_naive(&tree, &phi, &probs) else {
                continue;
            };
            let prepared = match dynamic.prepare(&Query::exists(phi.clone())) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let before = prepared.probability(&Scenario::new()).unwrap();
            assert!((before - expected).abs() < 1e-9, "{phi}");
            // Maintenance remaps the compiled roots and drops the memo;
            // values are bit-identical afterwards.
            dynamic.maintain();
            let after = prepared.probability(&Scenario::new()).unwrap();
            assert!(
                (after - expected).abs() < 1e-12,
                "{phi}: {before} vs {after}"
            );
            // Scenario probabilities agree with the evidence-wrapped
            // recompute path across another maintenance.
            let scenario = random_scenario(&mut rng, &basics);
            let p1 = prepared.probability(&scenario).unwrap();
            dynamic.maintain();
            let p2 = prepared.probability(&scenario).unwrap();
            assert!((p1 - p2).abs() < 1e-12, "{phi} under {scenario}");
            let wrapped = scenario.specialise(&phi);
            let naive = quant::probability_naive(&tree, &wrapped, &probs).unwrap();
            assert!((p1 - naive).abs() < 1e-9, "{phi} under {scenario}");
        }
        let stats = dynamic.maintenance_stats();
        assert!(stats.audits_run >= 1, "explicit maintain() cycles audit");
        assert_eq!(stats.audit_violations, 0, "arena must audit clean");
    }
}

#[test]
fn importance_ranks_survive_maintenance() {
    let tree = bfl::ft::corpus::covid();
    let n = tree.num_basic_events();
    let probs: Vec<Option<f64>> = (0..n).map(|i| Some(0.05 + (i as f64) * 0.02)).collect();
    let stat = AnalysisSession::builder()
        .probabilities(probs.clone())
        .build(tree.clone());
    let dynamic = AnalysisSession::builder()
        .ordering(VariableOrdering::Sifted)
        .probabilities(probs)
        .build(tree);
    let phi = parse_formula("IWoS").unwrap();
    let reference = stat.rank_events(&phi).unwrap();
    dynamic.maintain();
    assert_eq!(dynamic.maintenance_stats().audit_violations, 0);
    let maintained = dynamic.rank_events(&phi).unwrap();
    assert_eq!(reference.len(), maintained.len());
    for (a, b) in reference.iter().zip(&maintained) {
        assert_eq!(a.event, b.event);
        assert!((a.birnbaum - b.birnbaum).abs() < 1e-12, "{}", a.event);
        assert!(
            (a.fussell_vesely - b.fussell_vesely).abs() < 1e-12,
            "{}",
            a.event
        );
    }
}

#[test]
fn probabilities_survive_maintenance() {
    let mut rng = Prng::seed_from_u64(0x9E37);
    let tree = bfl::ft::corpus::covid();
    let probs: Vec<Option<f64>> = (0..tree.num_basic_events())
        .map(|_| Some(0.05 + 0.9 * rng.gen_bool(0.5) as u8 as f64 * 0.1))
        .collect();
    let stat = AnalysisSession::builder()
        .probabilities(probs.clone())
        .build(tree.clone());
    let dynamic = AnalysisSession::builder()
        .ordering(VariableOrdering::Sifted)
        .probabilities(probs)
        .build(tree);
    for src in ["IWoS", "MCS(IWoS)", "MoT & !H1", "CP/R | SH"] {
        let phi = parse_formula(src).unwrap();
        let a = stat.formula_probability(&phi).unwrap();
        dynamic.maintain();
        let b = dynamic.formula_probability(&phi).unwrap();
        assert!((a - b).abs() < 1e-12, "{src}: {a} vs {b}");
    }
    let a = stat
        .birnbaum(&parse_formula("IWoS").unwrap(), "IW")
        .unwrap();
    let b = dynamic
        .birnbaum(&parse_formula("IWoS").unwrap(), "IW")
        .unwrap();
    assert!((a - b).abs() < 1e-12);
}
