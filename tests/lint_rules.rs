//! One minimized fixture per lint rule, plus the clean-corpus gate.
//!
//! Each `l0xx_*` test is the smallest Galileo model / BFL spec pair that
//! triggers exactly the rule under test (asserted via subject + severity
//! so a rule firing for the wrong reason fails the fixture), mirroring
//! the triggering examples in `docs/lint.md`. The clean-corpus tests pin
//! the zero-false-positive bar: the shipped case-study trees, the
//! generated industrial corpus and every example model/spec in the repo
//! must produce nothing at `Warning` or above.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bfl_core::engine::AnalysisSession;
use bfl_core::lint::{self, Diagnostic};
use bfl_core::{Severity, Spec};
use bfl_fault_tree::{corpus, galileo};

/// Builds a session from Galileo source, carrying any `prob=`
/// annotations into the lint pipeline.
fn session(src: &str) -> AnalysisSession {
    let model = galileo::parse(src).expect("fixture must parse");
    AnalysisSession::builder()
        .probabilities(model.probabilities)
        .intervals(model.intervals)
        .build(model.tree)
}

fn lint_spec(session: &AnalysisSession, spec_src: &str) -> Vec<Diagnostic> {
    let spec = Spec::parse(spec_src).expect("spec fixture must parse");
    session.lint_spec(&spec)
}

/// Asserts exactly one diagnostic with `code` about `subject` and
/// returns it.
fn expect_one<'a>(diags: &'a [Diagnostic], code: &str, subject: &str) -> &'a Diagnostic {
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.code == code && d.subject == subject)
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "wanted exactly one {code} about `{subject}`, got: {}",
        lint::render_text(diags)
    );
    hits[0]
}

fn assert_none(diags: &[Diagnostic], code: &str) {
    assert!(
        diags.iter().all(|d| d.code != code),
        "unexpected {code}: {}",
        lint::render_text(diags)
    );
}

#[test]
fn l000_invalid_item_flags_unknown_atoms() {
    let s = session("toplevel T;\nT and A B;\n");
    let diags = lint_spec(&s, "P: exists ghost\n");
    let d = expect_one(&diags, "L000", "P");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("ghost"), "{}", d.message);
}

#[test]
fn l001_absorbed_event_is_reported_as_info() {
    // top = A ∧ (A ∨ B) = A: B is declared, reachable, and semantically
    // inert. The BDD support computation, not syntax, detects this.
    let s = session("toplevel T;\nT and A G;\nG or A B;\n");
    let diags = s.lint();
    let d = expect_one(&diags, "L001", "B");
    assert_eq!(d.severity, Severity::Info, "L001 is advisory by design");
    assert!(
        diags.iter().all(|d| d.code != "L001" || d.subject == "B"),
        "A influences the top and must not be flagged"
    );
}

#[test]
fn l002_single_child_gate_is_a_pass_through() {
    let s = session("toplevel T;\nT and A G;\nG or B;\n");
    let diags = s.lint();
    let d = expect_one(&diags, "L002", "G");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.suggestion.as_deref().unwrap_or("").contains('B'));
}

#[test]
fn l003_duplicate_child_is_flagged_once() {
    let s = session("toplevel T;\nT and A A;\n");
    let diags = s.lint();
    let d = expect_one(&diags, "L003", "T");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains('A'), "{}", d.message);
}

#[test]
fn l004_structural_duplicate_modulo_child_order() {
    // G2 lists the same children as G1 in reverse order; commutative
    // hashing still collides them. The report names the first gate.
    let s = session("toplevel T;\nT or G1 G2 C;\nG1 and A B;\nG2 and B A;\n");
    let diags = s.lint();
    let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "L004").collect();
    assert_eq!(hits.len(), 1, "{}", lint::render_text(&diags));
    let d = hits[0];
    assert_eq!(d.severity, Severity::Info);
    // Which twin gets reported depends on traversal order; the finding
    // must pair G1 with G2 in one orientation or the other.
    let other = if d.subject == "G1" { "G2" } else { "G1" };
    assert!(d.subject == "G1" || d.subject == "G2", "{}", d.render());
    assert!(d.message.contains(other), "{}", d.render());
}

#[test]
fn l005_vot_thresholds_that_collapse_to_or_and_and() {
    let s = session("toplevel T;\nT 1of3 A B C;\n");
    let diags = s.lint();
    let d = expect_one(&diags, "L005", "T");
    assert!(d.suggestion.as_deref().unwrap_or("").contains("OR"));

    let s = session("toplevel T;\nT 3of3 A B C;\n");
    let diags = s.lint();
    let d = expect_one(&diags, "L005", "T");
    assert!(d.suggestion.as_deref().unwrap_or("").contains("AND"));

    // A genuine majority vote is fine.
    assert_none(&session("toplevel T;\nT 2of3 A B C;\n").lint(), "L005");
}

#[test]
fn l006_constant_probabilities() {
    let s = session("toplevel T;\nT and A B;\nA prob=1.0;\nB prob=0.0;\n");
    let diags = s.lint();
    expect_one(&diags, "L006", "A");
    expect_one(&diags, "L006", "B");
    assert_none(
        &session("toplevel T;\nT and A B;\nA prob=0.5;\n").lint(),
        "L006",
    );
}

#[test]
fn l007_degenerate_interval_carries_no_uncertainty() {
    let s = session("toplevel T;\nT and A B;\nA prob=0.3..0.3;\n");
    let diags = s.lint();
    let d = expect_one(&diags, "L007", "A");
    assert_eq!(d.severity, Severity::Info);
    assert!(d.suggestion.as_deref().unwrap_or("").contains("0.3"));
}

#[test]
fn l008_tautological_formula() {
    let s = session("toplevel T;\nT and A B;\n");
    let diags = lint_spec(&s, "P: exists T | !T\n");
    let d = expect_one(&diags, "L008", "P");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn l009_contradictory_formula() {
    let s = session("toplevel T;\nT and A B;\n");
    let diags = lint_spec(&s, "P: exists A & !A\n");
    let d = expect_one(&diags, "L009", "P");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn l010_redundant_and_conflicting_evidence() {
    let s = session("toplevel T;\nT and A B;\n");
    // Evidence on an event outside the inner formula's support.
    let diags = lint_spec(&s, "P: exists (A)[B := 1]\n");
    let d = expect_one(&diags, "L010", "P");
    assert!(d.message.contains('B'), "{}", d.message);
    // Cause evidence binding the same event to both values.
    let diags = lint_spec(&s, "C: cause(A & B, A := 1, A := 0)\n");
    let d = expect_one(&diags, "L010", "C");
    assert!(d.message.contains("both values"), "{}", d.message);
}

#[test]
fn l011_evidence_decides_the_formula() {
    let s = session("toplevel T;\nT and A B;\n");
    // (A ∨ B)[A ↦ 1] ≡ ⊤ — the check no longer reads the status vector.
    // L008 also fires on the now-tautological whole formula; the fixture
    // pins the more precise L011 alongside it.
    let diags = lint_spec(&s, "P: exists (A | B)[A := 1]\n");
    let d = expect_one(&diags, "L011", "P");
    assert!(d.message.contains("constantly true"), "{}", d.message);
    expect_one(&diags, "L008", "P");
}

#[test]
fn l012_shadowed_label() {
    let s = session("toplevel T;\nT and A B;\n");
    let diags = lint_spec(&s, "P: exists A\nP: exists B\n");
    let d = expect_one(&diags, "L012", "P");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn l013_impossible_condition() {
    let s = session("toplevel T;\nT and A B;\n");
    let diags = lint_spec(&s, "P: P(T | A & !A) <= 0.5\n");
    let d = expect_one(&diags, "L013", "P");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("unsatisfiable"), "{}", d.message);
}

// ----------------------------------------------------------------------
// Zero false positives on everything the repo ships.
// ----------------------------------------------------------------------

fn assert_no_warnings(diags: &[Diagnostic], what: &str) {
    let noisy: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .collect();
    assert!(
        noisy.is_empty(),
        "{what} must lint clean at warning level:\n{}",
        lint::render_text(diags)
    );
}

#[test]
fn corpus_trees_lint_clean() {
    let covid = AnalysisSession::new(corpus::covid());
    assert_no_warnings(&covid.lint(), "corpus::covid");

    for n in [100usize, 1_000] {
        let model = corpus::scaled_model(n);
        let s = AnalysisSession::builder()
            .probabilities(model.probabilities)
            .build(model.tree);
        assert_no_warnings(&s.lint(), &format!("corpus::scaled_model({n})"));
    }
}

#[test]
fn shipped_examples_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let models = root.join("examples/models");
    let mut checked = 0;
    for entry in std::fs::read_dir(&models).expect("examples/models exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("dft") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable model");
        let s = session(&src);
        assert_no_warnings(&s.lint(), &path.display().to_string());
        checked += 1;
    }
    assert!(
        checked >= 2,
        "expected the shipped .dft models, saw {checked}"
    );

    // The COVID spec against the COVID model: the paper's own
    // properties must not trip the semantic rules.
    let spec_src = std::fs::read_to_string(root.join("examples/specs/covid.bfl"))
        .expect("examples/specs/covid.bfl exists");
    let covid = AnalysisSession::new(corpus::covid());
    assert_no_warnings(
        &lint_spec(&covid, &spec_src),
        "examples/specs/covid.bfl against corpus::covid",
    );
}
