//! Integration tests for the quantitative extension (the paper's first
//! future-work item) on the case-study tree: probabilities of arbitrary
//! BFL formulas, conditionals, thresholds and importance.

use bfl::logic::quant;
use bfl::prelude::*;

fn covid_probs(tree: &FaultTree) -> Vec<f64> {
    tree.basic_events()
        .iter()
        .map(|&e| match tree.name(e) {
            "IW" => 0.05,
            "IT" => 0.03,
            "IS" => 0.04,
            "PP" => 0.60,
            "VW" => 0.20,
            "AB" => 0.30,
            "MV" => 0.25,
            "UT" => 0.01,
            _ => 0.10, // human errors
        })
        .collect()
}

#[test]
fn formula_probability_matches_reference() {
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    let probs = covid_probs(&tree);
    for src in [
        "IWoS",
        "MoT & !SH",
        "MCS(IWoS)",
        "MPS(MoT)",
        "IWoS[H1 := 1]",
        "VOT(>=2; H1, H2, H3, H4, H5)",
    ] {
        let phi = parse_formula(src).unwrap();
        let fast = quant::probability(&mut mc, &phi, &probs).unwrap();
        let slow = quant::probability_naive(&tree, &phi, &probs).unwrap();
        assert!((fast - slow).abs() < 1e-9, "{src}: {fast} vs {slow}");
    }
}

#[test]
fn evidence_is_conditioning_free() {
    // P(ϕ[e↦1]) is the probability of ϕ with e forced, *not* P(ϕ | e):
    // conditioning rescales by P(e), forcing does not.
    let tree = bfl::ft::corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    let probs = [0.1, 0.2];
    let forced =
        quant::probability(&mut mc, &parse_formula("Top[e1 := 1]").unwrap(), &probs).unwrap();
    assert!((forced - 1.0).abs() < 1e-12);
    let conditioned = quant::conditional_probability(
        &mut mc,
        &parse_formula("Top").unwrap(),
        &parse_formula("e1").unwrap(),
        &probs,
    )
    .unwrap()
    .unwrap();
    assert!((conditioned - 1.0).abs() < 1e-12);
    // They differ on non-trivial conditions: P(Top | ¬e1) = P(e2) = 0.2.
    let cond2 = quant::conditional_probability(
        &mut mc,
        &parse_formula("Top").unwrap(),
        &parse_formula("!e1").unwrap(),
        &probs,
    )
    .unwrap()
    .unwrap();
    assert!((cond2 - 0.2).abs() < 1e-12);
}

#[test]
fn threshold_queries_on_covid() {
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    let probs = covid_probs(&tree);
    let p = quant::probability(&mut mc, &parse_formula("IWoS").unwrap(), &probs).unwrap();
    // The top event is rare under this profile.
    assert!(p < 0.01, "{p}");
    let q = quant::ProbQuery::new(parse_formula("IWoS").unwrap(), CmpOp::Le, 0.01);
    assert!(q.check(&mut mc, &probs).unwrap());
}

#[test]
fn birnbaum_ranks_h1_highest() {
    // H1 appears in SH (hence in every cut set): it should dominate the
    // Birnbaum ranking of the human errors.
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    let probs = covid_probs(&tree);
    let phi = parse_formula("IWoS").unwrap();
    let h1 = quant::birnbaum(&mut mc, &phi, "H1", &probs).unwrap();
    for other in ["H2", "H3", "H4", "H5"] {
        let b = quant::birnbaum(&mut mc, &phi, other, &probs).unwrap();
        assert!(h1 > b, "H1={h1} vs {other}={b}");
    }
}

#[test]
fn probability_of_mutually_exclusive_split_sums() {
    // P(ϕ) = P(ϕ ∧ ψ) + P(ϕ ∧ ¬ψ) — exercised through the checker.
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    let probs = covid_probs(&tree);
    let phi = parse_formula("IWoS").unwrap();
    let psi = parse_formula("CT").unwrap();
    let total = quant::probability(&mut mc, &phi, &probs).unwrap();
    let with = quant::probability(&mut mc, &phi.clone().and(psi.clone()), &probs).unwrap();
    let without = quant::probability(&mut mc, &phi.and(psi.not()), &probs).unwrap();
    assert!((total - (with + without)).abs() < 1e-12);
}
