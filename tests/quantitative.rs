//! Integration tests for the quantitative subsystem (the paper's first
//! future-work item, PFL-style): probabilities of arbitrary BFL
//! formulas, conditionals, threshold judgements, importance rankings,
//! and the prepared-plan probability path — cross-checked against the
//! exhaustive reference on the case study and on random trees.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::ft::generator::{random_tree, RandomTreeConfig};
use bfl::ft::rng::Prng;
use bfl::logic::quant;
use bfl::prelude::*;

mod common;
use common::random_formula;

fn covid_probs(tree: &FaultTree) -> Vec<f64> {
    tree.basic_events()
        .iter()
        .map(|&e| match tree.name(e) {
            "IW" => 0.05,
            "IT" => 0.03,
            "IS" => 0.04,
            "PP" => 0.60,
            "VW" => 0.20,
            "AB" => 0.30,
            "MV" => 0.25,
            "UT" => 0.01,
            _ => 0.10, // human errors
        })
        .collect()
}

#[test]
fn formula_probability_matches_reference() {
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    let probs = covid_probs(&tree);
    for src in [
        "IWoS",
        "MoT & !SH",
        "MCS(IWoS)",
        "MPS(MoT)",
        "IWoS[H1 := 1]",
        "VOT(>=2; H1, H2, H3, H4, H5)",
    ] {
        let phi = parse_formula(src).unwrap();
        let fast = quant::probability(&mut mc, &phi, &probs).unwrap();
        let slow = quant::probability_naive(&tree, &phi, &probs).unwrap();
        assert!((fast - slow).abs() < 1e-9, "{src}: {fast} vs {slow}");
    }
}

#[test]
fn evidence_is_conditioning_free() {
    // P(ϕ[e↦1]) is the probability of ϕ with e forced, *not* P(ϕ | e):
    // conditioning rescales by P(e), forcing does not.
    let tree = bfl::ft::corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    let probs = [0.1, 0.2];
    let forced =
        quant::probability(&mut mc, &parse_formula("Top[e1 := 1]").unwrap(), &probs).unwrap();
    assert!((forced - 1.0).abs() < 1e-12);
    let conditioned = quant::conditional_probability(
        &mut mc,
        &parse_formula("Top").unwrap(),
        &parse_formula("e1").unwrap(),
        &probs,
    )
    .unwrap()
    .unwrap();
    assert!((conditioned - 1.0).abs() < 1e-12);
    // They differ on non-trivial conditions: P(Top | ¬e1) = P(e2) = 0.2.
    let cond2 = quant::conditional_probability(
        &mut mc,
        &parse_formula("Top").unwrap(),
        &parse_formula("!e1").unwrap(),
        &probs,
    )
    .unwrap()
    .unwrap();
    assert!((cond2 - 0.2).abs() < 1e-12);
}

#[test]
fn threshold_queries_on_covid() {
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    let probs = covid_probs(&tree);
    let p = quant::probability(&mut mc, &parse_formula("IWoS").unwrap(), &probs).unwrap();
    // The top event is rare under this profile.
    assert!(p < 0.01, "{p}");
    let q = quant::ProbQuery::try_new(parse_formula("IWoS").unwrap(), CmpOp::Le, 0.01).unwrap();
    assert!(q.check(&mut mc, &probs).unwrap());
}

#[test]
fn birnbaum_ranks_h1_highest() {
    // H1 appears in SH (hence in every cut set): it should dominate the
    // Birnbaum ranking of the human errors.
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    let probs = covid_probs(&tree);
    let phi = parse_formula("IWoS").unwrap();
    let h1 = quant::birnbaum(&mut mc, &phi, "H1", &probs).unwrap();
    for other in ["H2", "H3", "H4", "H5"] {
        let b = quant::birnbaum(&mut mc, &phi, other, &probs).unwrap();
        assert!(h1 > b, "H1={h1} vs {other}={b}");
    }
    // The batched suite agrees with the pointwise calls and puts H1
    // first among the human errors.
    let rows = quant::rank_events(&mut mc, &phi, &probs).unwrap();
    let pos = |name: &str| rows.iter().position(|r| r.event == name).unwrap();
    for other in ["H2", "H3", "H4", "H5"] {
        assert!(pos("H1") < pos(other), "H1 ranked below {other}");
    }
}

#[test]
fn probability_of_mutually_exclusive_split_sums() {
    // P(ϕ) = P(ϕ ∧ ψ) + P(ϕ ∧ ¬ψ) — exercised through the checker.
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    let probs = covid_probs(&tree);
    let phi = parse_formula("IWoS").unwrap();
    let psi = parse_formula("CT").unwrap();
    let total = quant::probability(&mut mc, &phi, &probs).unwrap();
    let with = quant::probability(&mut mc, &phi.clone().and(psi.clone()), &probs).unwrap();
    let without = quant::probability(&mut mc, &phi.and(psi.not()), &probs).unwrap();
    assert!((total - (with + without)).abs() < 1e-12);
}

// ---------------------------------------------------------------------------
// The three-way property suite: PreparedQuery::probability ≡
// quant::probability ≡ probability_naive on random ≤20-event trees and
// formulas.
// ---------------------------------------------------------------------------

#[test]
fn prepared_probability_cross_checks_on_random_trees() {
    let mut rng = Prng::seed_from_u64(0x9A5D);
    for seed in 0..6u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 6 + (seed as usize % 5),
            num_gates: 5,
            max_children: 3,
            vot_probability: 0.2,
            seed: 0xBEEF + seed,
        });
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(1..99) as f64 / 100.0)
            .collect();
        let names: Vec<String> = tree.iter().map(|e| tree.name(e).to_string()).collect();
        let basics: Vec<String> = tree
            .basic_event_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let session = AnalysisSession::builder()
            .probabilities(probs.iter().map(|&p| Some(p)).collect())
            .build(tree.clone());
        let mut mc = ModelChecker::new(&tree);
        for _ in 0..8 {
            let phi = random_formula(&mut rng, &names, &basics, 3);
            let direct = match quant::probability(&mut mc, &phi, &probs) {
                Ok(p) => p,
                Err(_) => continue, // unknown-element formulas etc.
            };
            let naive = quant::probability_naive(&tree, &phi, &probs).unwrap();
            assert!(
                (direct - naive).abs() < 1e-9,
                "{phi}: direct={direct} naive={naive}"
            );
            let session_p = session.formula_probability(&phi).unwrap();
            assert!((session_p - naive).abs() < 1e-9, "{phi}");
            // The prepared plan computes the same value by restriction +
            // memoised Shannon walk.
            let prepared = session.prepare(&Query::exists(phi.clone())).unwrap();
            let plan_p = prepared.probability(&Scenario::new()).unwrap();
            assert!(
                (plan_p - naive).abs() < 1e-9,
                "{phi}: plan={plan_p} naive={naive}"
            );
            // And under a random scenario it agrees with the
            // evidence-wrapped recompute path.
            let scenario = common::random_scenario(&mut rng, &basics);
            let wrapped = scenario.specialise(&phi);
            let expected = quant::probability(&mut mc, &wrapped, &probs).unwrap();
            let got = prepared.probability(&scenario).unwrap();
            assert!(
                (got - expected).abs() < 1e-9,
                "{phi} under {scenario}: plan={got} recompute={expected}"
            );
        }
    }
}

#[test]
fn importance_ranks_match_naive_cofactors_on_random_trees() {
    let mut rng = Prng::seed_from_u64(0xFACE);
    for seed in 0..4u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 7,
            num_gates: 5,
            max_children: 3,
            vot_probability: 0.15,
            seed: 0xD00D + seed,
        });
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(5..95) as f64 / 100.0)
            .collect();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom(tree.name(tree.top()));
        let p_phi = quant::probability_naive(&tree, &phi, &probs).unwrap();
        if p_phi < 1e-9 {
            continue;
        }
        let rows = quant::rank_events(&mut mc, &phi, &probs).unwrap();
        assert_eq!(rows.len(), n);
        for row in &rows {
            // Naive cofactor computation: force the event in the AST and
            // sum over all vectors.
            let hi = quant::probability_naive(
                &tree,
                &phi.clone().with_evidence(&*row.event, true),
                &probs,
            )
            .unwrap();
            let lo = quant::probability_naive(
                &tree,
                &phi.clone().with_evidence(&*row.event, false),
                &probs,
            )
            .unwrap();
            assert!(
                (row.birnbaum - (hi - lo)).abs() < 1e-9,
                "{}: BB {} vs naive {}",
                row.event,
                row.birnbaum,
                hi - lo
            );
            assert!((row.fussell_vesely - row.probability * hi / p_phi).abs() < 1e-6);
            assert!((row.criticality - (p_phi - lo) / p_phi).abs() < 1e-6);
            assert!((row.raw - hi / p_phi).abs() < 1e-6);
        }
    }
}

// ---------------------------------------------------------------------------
// The probabilistic layer-2 judgements end-to-end: parser → session →
// report.
// ---------------------------------------------------------------------------

#[test]
fn prob_judgements_run_through_spec_files() {
    let tree = bfl::ft::corpus::covid();
    let probs = covid_probs(&tree);
    let session = AnalysisSession::builder()
        .probabilities(probs.iter().map(|&p| Some(p)).collect())
        .build(tree);
    let spec = Spec::parse(
        "# quantitative properties\n\
         Q1: P(IWoS) <= 0.01\n\
         Q2: P(IWoS) > 0.5\n\
         Q3: P(IWoS | H1 & H4) >= 0.001\n\
         Q4: importance(IWoS)\n",
    )
    .unwrap();
    let report = session.run(&spec).unwrap();
    assert_eq!(report.outcomes.len(), 4);
    assert!(report.outcomes[0].holds);
    assert!(report.outcomes[0].probability.unwrap() < 0.01);
    assert!(!report.outcomes[1].holds);
    assert!(report.outcomes[2].holds);
    // Conditioning can only raise the probability of a monotone top.
    assert!(report.outcomes[2].probability.unwrap() >= report.outcomes[0].probability.unwrap());
    assert!(report.outcomes[3].holds);
    assert_eq!(
        report.outcomes[3].importance.len(),
        session.tree().num_basic_events()
    );
    // Text and JSON renderings carry the quantitative payload.
    let text = report.to_string();
    assert!(text.contains("probability"), "{text}");
    assert!(text.contains("RRW"), "{text}");
    let json = report.to_json();
    assert!(json.contains("\"probability\":"), "{json}");
    assert!(json.contains("\"fussell_vesely\":"), "{json}");
}

#[test]
fn prob_judgements_without_annotations_error_cleanly() {
    let session = AnalysisSession::new(bfl::ft::corpus::or2());
    let q = parse_query("P(Top) <= 0.5").unwrap();
    assert!(matches!(
        session.check_query(&q),
        Err(BflError::MissingProbabilities { .. })
    ));
    assert!(matches!(
        session.rank_events(&Formula::atom("Top")),
        Err(BflError::MissingProbabilities { .. })
    ));
    // The bare checker reports the same (it never holds annotations).
    let tree = bfl::ft::corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    assert!(matches!(
        mc.check_query(&q),
        Err(BflError::MissingProbabilities { .. })
    ));
}

#[test]
fn invalid_annotations_error_instead_of_panicking() {
    // NaN and out-of-range values configured at build time surface as
    // InvalidProbability from every entry point (they used to panic deep
    // in the quantitative layer).
    for bad in [f64::NAN, 1.5, -0.5, f64::INFINITY] {
        let session = AnalysisSession::builder()
            .probabilities(vec![Some(0.1), Some(bad)])
            .build(bfl::ft::corpus::or2());
        assert!(
            matches!(
                session.top_event_probability(),
                Err(BflError::InvalidProbability { .. })
            ),
            "{bad}"
        );
        assert!(session.formula_probability(&Formula::atom("Top")).is_err());
        assert!(session.rank_events(&Formula::atom("Top")).is_err());
        let q = parse_query("P(Top) <= 0.5").unwrap();
        assert!(session.check_query(&q).is_err());
        let prepared = session.prepare(&q).unwrap();
        assert!(prepared.probability(&Scenario::new()).is_err());
        assert!(prepared.eval(&Scenario::new()).is_err());
        assert!(prepared
            .sweep_probabilities(&ScenarioSet::from_scenarios([Scenario::new()]))
            .is_err());
    }
}

#[test]
fn prepared_prob_plans_judge_and_sweep() {
    let tree = bfl::ft::corpus::or2();
    let session = AnalysisSession::builder()
        .probabilities(vec![Some(0.1), Some(0.2)])
        .build(tree);
    // P(Top) = 0.28; forcing e1 off leaves P = 0.2, on gives 1.
    let prepared = session
        .prepare(&parse_query("P(Top) <= 0.25").unwrap())
        .unwrap();
    assert_eq!(prepared.explain().kind, "prob");
    let baseline = prepared.eval(&Scenario::new()).unwrap();
    assert!(!baseline.holds);
    assert!((baseline.probability.unwrap() - 0.28).abs() < 1e-12);
    let fixed = prepared.eval(&Scenario::new().bind("e1", false)).unwrap();
    assert!(fixed.holds);
    assert!((fixed.probability.unwrap() - 0.2).abs() < 1e-12);

    let set = ScenarioSet::parse("baseline:\nfixed: e1 = 0\nfailed: e1 = 1\n").unwrap();
    let report = prepared.sweep_probabilities(&set).unwrap();
    assert_eq!(report.outcomes.len(), 3);
    assert!((report.outcomes[0].probability.unwrap() - 0.28).abs() < 1e-12);
    assert!((report.outcomes[1].probability.unwrap() - 0.2).abs() < 1e-12);
    assert!((report.outcomes[2].probability.unwrap() - 1.0).abs() < 1e-12);
    assert_eq!(report.outcomes[1].holds, Some(true));
    // The two eval() calls above already warmed their scenarios (the
    // Boolean and probability paths share one cache): only `e1 = 1` is
    // a fresh computation.
    assert_eq!(report.stats.memo_misses, 1);
    assert_eq!(report.stats.memo_hits, 2);
    // A warm sweep is pure cache lookups: no fresh memo nodes.
    let warm = prepared.sweep_probabilities(&set).unwrap();
    assert_eq!(warm.stats.memo_hits, 3);
    assert_eq!(warm.stats.memo_misses, 0);
    assert_eq!(warm.stats.fresh_nodes, 0);
    assert_eq!(warm.outcomes, report.outcomes);
    // Text and JSON render.
    let text = warm.to_string();
    assert!(text.contains("probability sweep"), "{text}");
    let json = warm.to_json();
    assert!(json.contains("\"memo_hits\":3"), "{json}");

    // Quantifier-shaped plans expose the operand's probability too.
    let exists = session
        .prepare(&parse_query("exists Top").unwrap())
        .unwrap();
    let p = exists.probability(&Scenario::new()).unwrap();
    assert!((p - 0.28).abs() < 1e-12);
    // Independence plans have no probability.
    let sup = session.prepare(&parse_query("SUP(e1)").unwrap()).unwrap();
    assert!(matches!(
        sup.probability(&Scenario::new()),
        Err(BflError::UnsupportedProbability { .. })
    ));
    assert!(sup
        .sweep_probabilities(&ScenarioSet::from_scenarios([Scenario::new()]))
        .is_err());
}

#[test]
fn conditional_plans_handle_impossible_conditions() {
    let session = AnalysisSession::builder()
        .probabilities(vec![Some(0.1), Some(0.2)])
        .build(bfl::ft::corpus::or2());
    let q = parse_query("P(Top | e1 & !e1) >= 0").unwrap();
    let prepared = session.prepare(&q).unwrap();
    // The condition is unsatisfiable: no bound holds, the probability is
    // undefined.
    let o = prepared.eval(&Scenario::new()).unwrap();
    assert!(!o.holds);
    assert_eq!(o.probability, None);
    assert!(matches!(
        prepared.probability(&Scenario::new()),
        Err(BflError::DivisionByZero { .. })
    ));
    // Sweeps report it per outcome instead of failing.
    let sweep = prepared
        .sweep_probabilities(&ScenarioSet::from_scenarios([Scenario::new()]))
        .unwrap();
    assert_eq!(sweep.outcomes[0].probability, None);
    assert_eq!(sweep.outcomes[0].holds, Some(false));
    // A satisfiable condition evaluates normally: P(Top | e2) = 1.
    let ok = session
        .prepare(&parse_query("P(Top | e2) >= 1").unwrap())
        .unwrap();
    assert!(ok.eval(&Scenario::new()).unwrap().holds);
}

#[test]
fn importance_judgement_through_session_and_plan() {
    let tree = bfl::ft::corpus::covid();
    let probs = covid_probs(&tree);
    let session = AnalysisSession::builder()
        .probabilities(probs.iter().map(|&p| Some(p)).collect())
        .build(tree);
    let q = parse_query("importance(IWoS)").unwrap();
    let direct = session.check_query(&q).unwrap();
    assert!(direct.holds);
    let n = session.tree().num_basic_events();
    assert_eq!(direct.importance.len(), n);
    // The prepared plan ranks the restricted diagram identically on the
    // baseline scenario.
    let prepared = session.prepare(&q).unwrap();
    assert_eq!(prepared.explain().kind, "importance");
    let o = prepared.eval(&Scenario::new()).unwrap();
    assert!(o.holds);
    assert_eq!(o.importance, direct.importance);
    // rank_events agrees with the outcome's table.
    let rows = session
        .rank_events(&parse_formula("IWoS").unwrap())
        .unwrap();
    assert_eq!(rows, direct.importance);
}

#[test]
fn boolean_and_probability_paths_share_one_scenario_cache() {
    let tree = bfl::ft::corpus::covid();
    let probs = covid_probs(&tree);
    let session = AnalysisSession::builder()
        .probabilities(probs.iter().map(|&p| Some(p)).collect())
        .build(tree);
    let prepared = session
        .prepare(&parse_query("P(IWoS) <= 0.5").unwrap())
        .unwrap();
    let set = ScenarioSet::parse("baseline:\nfixed: H1 = 0\nfailed: H1 = 1\n").unwrap();
    // A Boolean sweep computes each scenario's probability once…
    let bool_sweep = prepared.sweep(&set).unwrap();
    // …so the probability sweep over the same set is pure cache hits.
    let prob_sweep = prepared.sweep_probabilities(&set).unwrap();
    assert_eq!(prob_sweep.stats.memo_misses, 0);
    assert_eq!(prob_sweep.stats.memo_hits as usize, set.len());
    for (b, p) in bool_sweep.outcomes.iter().zip(&prob_sweep.outcomes) {
        assert_eq!(b.probability, p.probability);
        assert_eq!(Some(b.holds), p.holds);
    }
    // And the reverse direction: a fresh plan warmed by the probability
    // path hands its results to the Boolean evaluator.
    let prepared2 = session
        .prepare(&parse_query("P(IWoS) <= 0.5").unwrap())
        .unwrap();
    let warm = prepared2.sweep_probabilities(&set).unwrap();
    assert_eq!(warm.stats.memo_misses as usize, set.len());
    let bool2 = prepared2.sweep(&set).unwrap();
    for (b, p) in bool2.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(b.probability, p.probability);
        assert_eq!(Some(b.holds), p.holds);
    }
}

#[test]
fn undefined_importance_fails_consistently_across_evaluators() {
    // P(Top & !Top) = 0, so every relative importance measure is
    // undefined. The judgement form reports "does not hold" with an
    // empty table through *every* front-end — session, quant helper,
    // prepared plan — while the explicit table APIs keep erroring.
    let tree = bfl::ft::corpus::or2();
    let probs = vec![0.1, 0.2];
    let session = AnalysisSession::builder()
        .probabilities(probs.iter().map(|&p| Some(p)).collect())
        .build(tree.clone());
    let q = parse_query("importance(Top & !Top)").unwrap();

    let direct = session.check_query(&q).unwrap();
    assert!(!direct.holds);
    assert!(direct.importance.is_empty());

    let mut mc = ModelChecker::new(&tree);
    assert!(!quant::check_query(&mut mc, &q, &probs).unwrap());

    let prepared = session.prepare(&q).unwrap();
    let o = prepared.eval(&Scenario::new()).unwrap();
    assert!(!o.holds);
    assert!(o.importance.is_empty());

    // The table-returning APIs still surface the division explicitly.
    let phi = parse_formula("Top & !Top").unwrap();
    assert!(matches!(
        session.rank_events(&phi),
        Err(BflError::DivisionByZero { .. })
    ));
    assert!(matches!(
        quant::rank_events(&mut mc, &phi, &probs),
        Err(BflError::DivisionByZero { .. })
    ));
}
