//! Metamorphic properties of the scaled industrial corpus and the
//! parallel modular BDD construction pipeline.
//!
//! The `corpus::scaled` family is generated, not hand-written, so these
//! tests pin down relations that must hold for *any* correct generator
//! and compiler rather than expected outputs:
//!
//! * **monotone coherence** — failing more basic events never repairs
//!   the top event (generated trees use only AND/OR/VOT, all monotone);
//! * **module-local probability factorization** — replacing each
//!   top-level module by a fresh basic event carrying the module's
//!   exact BDD probability leaves `P(top)` unchanged;
//! * **parallel ≡ sequential** — `compile_parallel` produces the same
//!   diagram node-for-node as the sequential compiler, for every
//!   element and worker count;
//! * **idempotent maintenance** — after a parallel compile and stitch,
//!   a second GC collects nothing and a second sift changes nothing;
//! * **engine surface** — `SessionBuilder::parallelism(n)` threads the
//!   construction report through to `Plan::explain()`.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl_core::engine::AnalysisSession;
use bfl_core::{parser, Scenario};
use bfl_fault_tree::bdd::TreeBdd;
use bfl_fault_tree::rng::Prng;
use bfl_fault_tree::{corpus, modules, prob};
use bfl_fault_tree::{FaultTreeBuilder, GateType, StatusVector, VariableOrdering};

/// Pseudo-random status vector with each basic event failed with
/// probability ~`num/denom`.
fn random_vector(rng: &mut Prng, len: usize, num: usize, denom: usize) -> StatusVector {
    StatusVector::from_bits((0..len).map(|_| rng.gen_range(0..denom) < num))
}

#[test]
fn monotone_coherence_failing_more_never_unfails_top() {
    let tree = corpus::scaled(1_000);
    let n = tree.num_basic_events();
    let mut rng = Prng::seed_from_u64(0xC0_4E7E);
    for _ in 0..40 {
        let base = random_vector(&mut rng, n, 3, 10);
        let before = tree.evaluate(&base, tree.top());
        // Flip a handful of operational events to failed: a superset of
        // failures. Coherence: top can only go false -> true.
        let mut worse = base.clone();
        for _ in 0..8 {
            worse.set(rng.gen_range(0..n), true);
        }
        let after = tree.evaluate(&worse, tree.top());
        assert!(
            after || !before,
            "failing more events un-failed the top event"
        );
    }
}

#[test]
fn module_probabilities_factorize_through_a_quotient_tree() {
    let model = corpus::scaled_model(1_000);
    let tree = &model.tree;
    let probs: Vec<f64> = model.probabilities.iter().map(|p| p.unwrap()).collect();

    let mut tb = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
    let top = tb.element_bdd(tree, tree.top());
    let p_top = prob::bdd_probability(tree, &tb, top, &probs).expect("probs valid");

    // The generator's top gate is an OR over pairwise-independent module
    // roots; each must be a module of the whole tree.
    let all_modules = modules::modules(tree);
    let roots: Vec<_> = tree.children(tree.top()).to_vec();
    assert!(roots.len() > 1);
    let mut quotient_probs = Vec::new();
    let mut b = FaultTreeBuilder::new();
    for (i, &root) in roots.iter().enumerate() {
        assert!(
            all_modules.contains(&root),
            "top child {} is not a module",
            tree.name(root)
        );
        let f = tb.element_bdd(tree, root);
        quotient_probs.push(prob::bdd_probability(tree, &tb, f, &probs).unwrap());
        b.basic_event(&format!("q{i}")).unwrap();
    }
    // Quotient tree: each module collapsed to one basic event with the
    // module's exact failure probability.
    b.gate(
        "top",
        GateType::Or,
        (0..roots.len()).map(|i| format!("q{i}")),
    )
    .unwrap();
    let quotient = b.build("top").unwrap();
    let p_quotient = prob::top_event_probability(&quotient, &quotient_probs).unwrap();

    let rel = (p_top - p_quotient).abs() / p_top.max(f64::MIN_POSITIVE);
    assert!(
        rel < 1e-12,
        "factorization broke: P(top) = {p_top}, quotient = {p_quotient}"
    );
}

#[test]
fn parallel_compile_matches_sequential_node_for_node() {
    let tree = corpus::scaled(1_000);
    let mut seq = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
    let top_s = seq.element_bdd(&tree, tree.top());
    for workers in [2, 4] {
        let mut par = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let stats = par.compile_parallel(&tree, workers);
        assert!(stats.modules_detected >= 2, "scaled trees have modules");
        assert_eq!(stats.modules.len(), stats.modules_detected);
        // Canonicity with a shared variable order makes the compiled
        // diagrams identical per element, not merely equivalent.
        for e in tree.iter() {
            let fs = seq.element_bdd(&tree, e);
            let fp = par.element_bdd(&tree, e);
            assert_eq!(
                seq.manager().node_count(fs),
                par.manager().node_count(fp),
                "node count of {} with {workers} workers",
                tree.name(e)
            );
        }
        let top_p = par.element_bdd(&tree, tree.top());
        let mut rng = Prng::seed_from_u64(0xD1FF ^ workers as u64);
        for _ in 0..25 {
            let v = random_vector(&mut rng, tree.num_basic_events(), 1, 2);
            let expected = tree.evaluate(&v, tree.top());
            assert_eq!(seq.eval_vector(&tree, top_s, &v), expected);
            assert_eq!(par.eval_vector(&tree, top_p, &v), expected);
        }
        // The stitched arena is indistinguishable from a sequential
        // build under the full invariant audit.
        let report = par.manager().audit();
        assert!(report.is_ok(), "arena after {workers}-way import: {report}");
    }
    let report = seq.manager().audit();
    assert!(report.is_ok(), "sequential arena: {report}");
}

#[test]
fn gc_and_sift_are_idempotent_after_stitching() {
    // Module-rich but small enough that debug-mode sifting (quadratic in
    // the variable count) stays cheap: 4 cones of ~25 elements each,
    // above the parallel compiler's minimum-cone threshold.
    let tree =
        bfl_fault_tree::generator::industrial_tree(&bfl_fault_tree::generator::IndustrialConfig {
            num_basic: 100,
            num_modules: 4,
            ..Default::default()
        });
    let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
    let stats = tb.compile_parallel(&tree, 4);
    assert!(
        stats.modules_detected >= 2,
        "tree must exercise the import path"
    );
    let _ = tb.element_bdd(&tree, tree.top());

    // Imported arenas hold only reachable nodes plus whatever the final
    // spine compile created; one GC reaches the fixpoint.
    let _ = tb.collect_garbage();
    let gc2 = tb.collect_garbage();
    assert_eq!(gc2.collected, 0, "second GC found garbage after import");

    // Sifting is deterministic and converges: a repeated run must not
    // find a better order.
    let sift1 = tb.sift();
    let sift2 = tb.sift();
    assert_eq!(
        sift2.live_after, sift1.live_after,
        "second sift changed the diagram size"
    );
    let audit = tb.manager().audit();
    assert!(audit.is_ok(), "arena after gc+sift fixpoint: {audit}");

    // Maintenance preserved semantics.
    let top = tb.element_bdd(&tree, tree.top());
    let mut rng = Prng::seed_from_u64(0x51F7);
    for _ in 0..25 {
        let v = random_vector(&mut rng, tree.num_basic_events(), 1, 2);
        assert_eq!(
            tb.eval_vector(&tree, top, &v),
            tree.evaluate(&v, tree.top())
        );
    }
}

#[test]
fn session_parallelism_reports_construction_in_plans() {
    let model = corpus::scaled_model(1_000);
    let probs: Vec<Option<f64>> = model.probabilities.clone();
    let parallel = AnalysisSession::builder()
        .parallelism(4)
        .probabilities(probs.clone())
        .build(model.tree.clone());
    let report = parallel
        .construction_report()
        .expect("parallelism(4) records a construction report");
    assert!(report.workers >= 1);
    assert!(report.modules_detected >= 2);
    assert!(!report.modules.is_empty());

    let q = parser::parse_query("exists top").unwrap();
    let prepared = parallel.prepare(&q).unwrap();
    let plan = prepared.explain();
    let json = plan.to_json();
    assert!(
        json.contains("\"construction\":{"),
        "plan JSON must inline the construction report: {json}"
    );

    // The parallel session answers bit-identically to a default one —
    // compared through the probability channel, which walks the shared
    // diagram without enumerating witnesses (infeasible at 1000 events).
    let sequential = AnalysisSession::builder()
        .probabilities(probs)
        .build(model.tree);
    assert!(sequential.construction_report().is_none());
    let seq_prepared = sequential.prepare(&q).unwrap();
    let p_par = prepared.probability(&Scenario::new()).unwrap();
    let p_seq = seq_prepared.probability(&Scenario::new()).unwrap();
    assert_eq!(p_par.to_bits(), p_seq.to_bits());
    assert!(
        seq_prepared
            .explain()
            .to_json()
            .contains("\"construction\":null"),
        "sequential plans must say construction is absent"
    );

    // An explicit maintenance cycle on a parallel-built session runs
    // the arena audit and finds nothing to complain about. Exercised on
    // the 100-event corpus entry: maintain() sifts, and debug-mode
    // sifting is quadratic in the variable count, so the 1000-event
    // session above would dominate the whole suite's runtime.
    let small = corpus::scaled_model(100);
    let maintained = AnalysisSession::builder()
        .parallelism(4)
        .probabilities(small.probabilities)
        .build(small.tree);
    let _ = maintained.prepare(&q).unwrap();
    maintained.maintain();
    let stats = maintained.maintenance_stats();
    assert!(stats.audits_run >= 1);
    assert_eq!(stats.audit_violations, 0, "stitched arena must audit clean");
}
