//! Cross-checks for the compiled query-plan layer: `prepare`/`eval`/
//! `sweep` must agree **exactly** — verdicts, witnesses,
//! counterexamples, shared events — with the classic path that wraps the
//! query in evidence operators and recompiles it per scenario; and after
//! `prepare`, a sweep must never rebuild a BDD (no formula-translation
//! misses; repeated sweeps are pure memo hits with zero arena growth).

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bfl::prelude::*;
use bfl_fault_tree::generator::{random_tree, RandomTreeConfig};
use bfl_fault_tree::rng::Prng;

mod common;
use common::{random_formula, random_scenario};

/// All scenario/evidence cross-checks compare these two paths:
/// the prepared query evaluated under `scenario` (BDD restriction),
/// versus the session re-checking the evidence-specialised query
/// (AST rewriting + compile).
fn assert_paths_agree(session: &AnalysisSession, q: &Query, scenario: &Scenario) {
    let prepared = session.prepare(q).expect("prepare");
    let fast = prepared.eval(scenario).expect("eval");
    let top = session.tree().name(session.tree().top()).to_string();
    let slow = session
        .check_query(&scenario.specialise_query(q, &top))
        .expect("check_query");
    assert_eq!(fast.holds, slow.holds, "{q} under {scenario}");
    assert_eq!(fast.witnesses, slow.witnesses, "{q} under {scenario}");
    assert_eq!(
        fast.counterexamples, slow.counterexamples,
        "{q} under {scenario}"
    );
    assert_eq!(
        fast.shared_events, slow.shared_events,
        "{q} under {scenario}"
    );
}

#[test]
fn covid_case_study_scenarios_agree_with_evidence_path() {
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let queries = [
        "exists IWoS",
        "forall IS => MoT",
        "forall MoT => H1 | H2 | H3 | H4 | H5",
        "exists MCS(IWoS) & H4",
        "exists MPS(IWoS)",
        "forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS",
        "IDP(CIO, CIS)",
        "SUP(PP)",
    ];
    // The baseline, every single-event hypothesis (both polarities) and a
    // few compound what-ifs.
    let mut scenarios = vec![Scenario::new()];
    for name in session.tree().basic_event_names() {
        scenarios.push(Scenario::new().bind(name, true));
        scenarios.push(Scenario::new().bind(name, false));
    }
    scenarios.push(Scenario::from_pairs([("IW", true), ("H5", false)]));
    scenarios.push(Scenario::from_pairs([
        ("VW", false),
        ("H1", true),
        ("H2", true),
    ]));
    scenarios.push(Scenario::from_pairs([
        ("IT", false),
        ("UT", false),
        ("IW", false),
    ]));

    for src in queries {
        let q = parse_query(src).unwrap();
        for scenario in &scenarios {
            assert_paths_agree(&session, &q, scenario);
        }
    }
}

#[test]
fn randomized_trees_and_formulas_agree_with_evidence_path() {
    let mut rng = Prng::seed_from_u64(0xC0FFEE);
    for seed in 0..8u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 8,
            num_gates: 5,
            max_children: 3,
            vot_probability: 0.2,
            seed: 0x5EED + seed,
        });
        let names: Vec<String> = tree.iter().map(|e| tree.name(e).to_string()).collect();
        let basics: Vec<String> = tree
            .basic_event_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let session = AnalysisSession::new(tree);
        for _ in 0..4 {
            let phi = random_formula(&mut rng, &names, &basics, 3);
            let q = match rng.gen_range(0..3) {
                0 => Query::exists(phi),
                1 => Query::forall(phi),
                _ => Query::idp(phi, random_formula(&mut rng, &names, &basics, 2)),
            };
            for _ in 0..4 {
                let scenario = random_scenario(&mut rng, &basics);
                assert_paths_agree(&session, &q, &scenario);
            }
        }
    }
}

#[test]
fn covid_scenarios_agree_with_reordering_and_gc_enabled() {
    // Same cross-check as above, on a session that sifts at every
    // prepare and garbage-collects at maintenance points: verdicts,
    // witnesses and counterexamples must be identical to the static
    // path (handles are remapped, never stale).
    let session = AnalysisSession::builder()
        .ordering(VariableOrdering::Sifted)
        .reorder(ReorderPolicy::OnPrepare)
        .gc(true)
        .build(bfl::ft::corpus::covid());
    let queries = [
        "exists IWoS",
        "forall IS => MoT",
        "exists MCS(IWoS) & H4",
        "exists MPS(IWoS)",
        "IDP(CIO, CIS)",
        "SUP(PP)",
    ];
    let mut scenarios = vec![Scenario::new()];
    for name in ["IW", "H1", "H4", "VW", "UT", "PP"] {
        scenarios.push(Scenario::new().bind(name, true));
        scenarios.push(Scenario::new().bind(name, false));
    }
    scenarios.push(Scenario::from_pairs([("IW", true), ("H5", false)]));
    scenarios.push(Scenario::from_pairs([
        ("VW", false),
        ("H1", true),
        ("H2", true),
    ]));
    for src in queries {
        let q = parse_query(src).unwrap();
        for scenario in &scenarios {
            assert_paths_agree(&session, &q, scenario);
        }
    }
    assert!(session.maintenance_stats().sift_runs > 0);
    assert!(session.maintenance_stats().gc_runs > 0);
}

#[test]
fn sweep_survives_explicit_maintenance_between_runs() {
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let prepared = session
        .prepare(&parse_query("exists MCS(IWoS) & H4").unwrap())
        .unwrap();
    let names: Vec<&str> = session.tree().basic_event_names();
    let set = ScenarioSet::singletons(names, true);
    let first = prepared.sweep(&set).unwrap();
    // Reorder + compact the whole shared manager, then sweep again: the
    // prepared roots were remapped, the memo still answers, and the
    // verdicts are unchanged.
    let report = session.maintain();
    assert!(report.live_after <= report.live_before);
    let second = prepared.sweep(&set).unwrap();
    assert_eq!(second.stats.memo_misses, 0, "memo survives maintenance");
    let v1: Vec<bool> = first.outcomes.iter().map(|o| o.holds).collect();
    let v2: Vec<bool> = second.outcomes.iter().map(|o| o.holds).collect();
    assert_eq!(v1, v2);
    // A brand-new scenario after maintenance restricts the remapped root.
    let fresh = prepared.eval(&Scenario::new().bind("H4", false)).unwrap();
    assert!(!fresh.holds);
}

#[test]
fn sweep_rebuilds_zero_bdds_after_prepare() {
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let prepared = session
        .prepare(&parse_query("exists MCS(IWoS) & H4").unwrap())
        .unwrap();
    let misses_after_prepare = session.stats().cache_misses;

    // Sweep every single-event what-if, twice.
    let names: Vec<&str> = session.tree().basic_event_names();
    let set = ScenarioSet::singletons(names, true);
    let n = set.len() as u64;

    let first = prepared.sweep(&set).unwrap();
    // No formula was (re)compiled: evidence is restriction, not AST
    // rewriting. "Cache hits only" — every evaluation missed only the
    // scenario memo, never the translation cache.
    assert_eq!(first.stats.translation_misses, 0);
    assert_eq!(first.stats.memo_misses, n);
    assert_eq!(first.stats.memo_hits, 0);
    assert_eq!(session.stats().cache_misses, misses_after_prepare);

    let second = prepared.sweep(&set).unwrap();
    // The repeat sweep is pure cache lookups: zero restrictions, zero
    // node growth across scenarios.
    assert_eq!(second.stats.memo_misses, 0);
    assert_eq!(second.stats.memo_hits, n);
    assert_eq!(second.stats.translation_misses, 0);
    assert_eq!(second.stats.arena_growth(), 0);
    for o in &second.outcomes {
        assert_eq!(o.stats.cache_misses, 0);
        assert_eq!(o.stats.cache_hits, 1);
    }

    // Same verdicts, in scenario order, both times.
    let v1: Vec<bool> = first.outcomes.iter().map(|o| o.holds).collect();
    let v2: Vec<bool> = second.outcomes.iter().map(|o| o.holds).collect();
    assert_eq!(v1, v2);
}

#[test]
fn sweep_matches_one_by_one_eval_and_is_thread_consistent() {
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let prepared = std::sync::Arc::new(
        session
            .prepare(&parse_query("forall IS => MoT").unwrap())
            .unwrap(),
    );
    let set = ScenarioSet::parse("baseline:\nh1: H1 = 1\nh5-off: H5 = 0\npair: IW = 1, H3 = 0\n")
        .unwrap();
    let report = prepared.sweep(&set).unwrap();
    assert_eq!(report.outcomes.len(), set.len());
    for (scenario, outcome) in set.iter().zip(&report.outcomes) {
        let direct = prepared.eval(scenario).unwrap();
        assert_eq!(direct.holds, outcome.holds, "{scenario}");
        assert_eq!(direct.counterexamples, outcome.counterexamples);
    }

    // The prepared handle is Send + Sync: hammer it from threads and
    // check everyone sees the same verdicts.
    let expected: Vec<bool> = report.outcomes.iter().map(|o| o.holds).collect();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let p = std::sync::Arc::clone(&prepared);
            let set = set.clone();
            std::thread::spawn(move || {
                set.iter()
                    .map(|s| p.eval(s).unwrap().holds)
                    .collect::<Vec<bool>>()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), expected);
    }
}

#[test]
fn prepared_queries_share_the_session_translation_cache() {
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let _first = session
        .prepare(&parse_query("exists MCS(IWoS)").unwrap())
        .unwrap();
    // A second prepare of the same query is answered from the shared
    // cache: zero new translations.
    let second = session
        .prepare(&parse_query("exists MCS(IWoS)").unwrap())
        .unwrap();
    assert_eq!(second.explain().prepare.cache_misses, 0);
    assert!(second.explain().prepare.cache_hits > 0);
}
