//! The `MPS` semantic subtlety documented in `DESIGN.md` §4.
//!
//! The paper defines `MPS(ϕ) ::= MCS(¬ϕ)` with `MCS` selecting *minimal*
//! satisfying vectors. On monotone structure functions this literal
//! reading collapses: the all-operational vector is the unique minimal
//! vector satisfying `¬ϕ`, contradicting the paper's own Table I and
//! case-study results, which use *maximal* vectors. These tests pin down
//! both readings.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::prelude::*;

/// The literal reading `MCS(¬e1)` has exactly one satisfying vector: all
/// zeros.
#[test]
fn literal_mcs_of_negation_collapses() {
    let tree = bfl::ft::corpus::table1_tree();
    let mut mc = ModelChecker::new(&tree);
    let literal = Formula::atom("e1").not().mcs();
    let sats = mc.satisfying_vectors(&literal).unwrap();
    assert_eq!(sats, vec![StatusVector::all_operational(3)]);
}

/// Our first-class `MPS` (maximal vectors satisfying `¬ϕ`) matches every
/// published example.
#[test]
fn maximal_mps_matches_paper_examples() {
    let tree = bfl::ft::corpus::table1_tree();
    let mut mc = ModelChecker::new(&tree);
    let mps = Formula::atom("e1").mps();
    let sats = mc.satisfying_vectors(&mps).unwrap();
    assert_eq!(
        sats,
        vec![
            // {e4, e5} operational: (1,0,0); {e2} operational: (0,1,1).
            StatusVector::from_bits([true, false, false]),
            StatusVector::from_bits([false, true, true]),
        ]
    );
}

/// On the COVID tree the two readings differ dramatically: the literal
/// one yields only the all-operational vector, while the maximal one
/// yields the paper's twelve MPSs.
#[test]
fn covid_mps_reading_comparison() {
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    let n = tree.num_basic_events();

    let literal = Formula::atom("IWoS").not().mcs();
    let lit_sats = mc.satisfying_vectors(&literal).unwrap();
    assert_eq!(lit_sats, vec![StatusVector::all_operational(n)]);

    let maximal = Formula::atom("IWoS").mps();
    assert_eq!(mc.count_satisfying(&maximal).unwrap(), 12);
}

/// Duality sanity: for any element, the maximal-MPS vectors are exactly
/// the complements of the minimal cut vectors of the dual function. We
/// check it through the independent `analysis` engines on the COVID tree.
#[test]
fn mps_engines_and_logic_agree() {
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    for name in ["IWoS", "MoT", "CT", "CP/R", "SH"] {
        let via_logic = mc.minimal_path_sets(name).unwrap();
        let e = tree.element(name).unwrap();
        let via_analysis = bfl::ft::analysis::minimal_path_sets_names(&tree, e);
        assert_eq!(via_logic, via_analysis, "{name}");
    }
}

/// `MPS(¬ϕ)` under the maximal reading is the MCS notion reflected:
/// maximal vectors satisfying `ϕ` itself. For the OR gate these are the
/// all-failed vector only.
#[test]
fn mps_of_negation_is_maximal_sat() {
    let tree = bfl::ft::corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    // MPS(¬Top): maximal vectors satisfying Top.
    let phi = Formula::atom("Top").not().mps();
    let sats = mc.satisfying_vectors(&phi).unwrap();
    assert_eq!(sats, vec![StatusVector::from_bits([true, true])]);
}
