//! Property coverage for counterexample enumeration under a witness
//! limit: a capped enumeration must be *reported* as truncated (with the
//! exact total), never silently passed off as complete, and every
//! returned witness must still be Definition-7-valid — satisfying, with
//! each changed bit individually necessary — on seeded random trees.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::prelude::*;
use bfl_core::semantics;
use bfl_fault_tree::generator::{random_tree, RandomTreeConfig};
use bfl_fault_tree::rng::Prng;

mod common;
use common::random_formula;

/// Checks Definition 7 with the reference recursion (no BDDs): the
/// witness satisfies `ϕ`, and reverting any single differing bit
/// falsifies it again.
fn assert_definition7(tree: &FaultTree, b: &StatusVector, witness: &StatusVector, phi: &Formula) {
    assert!(
        semantics::eval(tree, witness, phi).expect("eval"),
        "witness must satisfy {phi}"
    );
    for i in 0..b.len() {
        if witness.get(i) != b.get(i) {
            let reverted = witness.with(i, b.get(i));
            assert!(
                !semantics::eval(tree, &reverted, phi).expect("eval"),
                "bit {i} of the witness is not necessary for {phi}"
            );
        }
    }
}

#[test]
fn truncation_is_reported_and_witnesses_stay_valid_on_random_trees() {
    let mut rng = Prng::seed_from_u64(0xCE7);
    let mut truncated_seen = 0usize;
    let mut complete_seen = 0usize;
    let mut witnesses_checked = 0usize;
    for seed in 0..10u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 6,
            num_gates: 4,
            max_children: 3,
            vot_probability: 0.2,
            seed: seed + 1,
        });
        let names: Vec<String> = tree.iter().map(|e| tree.name(e).to_string()).collect();
        let basics: Vec<String> = tree
            .basic_event_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut mc = ModelChecker::new(&tree);
        // Round 0 is deterministic — the top atom from the all-operational
        // vector always admits counterexamples on a satisfiable tree —
        // the rest are random formulae.
        for round in 0..6 {
            let phi = if round == 0 {
                Formula::atom(tree.name(tree.top()))
            } else {
                random_formula(&mut rng, &names, &basics, 2)
            };
            // A vector that fails ϕ, if one exists.
            let Some(b) = StatusVector::enumerate_all(tree.num_basic_events())
                .find(|b| !mc.holds(b, &phi).expect("holds"))
            else {
                continue;
            };
            let all = bfl_core::counterexample::all_counterexamples(&mut mc, &b, &phi)
                .expect("full enumeration");
            for limit in [0usize, 1, 2, usize::MAX] {
                let set = some_counterexamples(&mut mc, &b, &phi, limit).expect("bounded");
                // The exact total is always reported, capped or not…
                assert_eq!(set.total, all.len(), "{phi}: total misreported");
                assert_eq!(set.witnesses.len(), all.len().min(limit));
                assert_eq!(set.witnesses[..], all[..all.len().min(limit)]);
                // …and a capped enumeration says so.
                assert_eq!(
                    set.truncated,
                    all.len() > limit,
                    "{phi}: truncation at limit {limit} not reported"
                );
                if set.truncated {
                    truncated_seen += 1;
                } else {
                    complete_seen += 1;
                }
                for w in &set.witnesses {
                    assert_definition7(&tree, &b, w, &phi);
                    witnesses_checked += 1;
                }
            }
        }
    }
    // The sweep must actually have exercised both regimes.
    assert!(
        truncated_seen >= 10,
        "too few truncated sets: {truncated_seen}"
    );
    assert!(
        complete_seen >= 10,
        "too few complete sets: {complete_seen}"
    );
    assert!(
        witnesses_checked >= 30,
        "too few witnesses validated: {witnesses_checked}"
    );
}

#[test]
fn session_all_counterexamples_honours_the_witness_limit() {
    // An OR of four basics: from the all-operational vector, the valid
    // counterexamples are exactly the four singletons (any second failed
    // bit is unnecessary).
    let mut b = FaultTreeBuilder::new();
    b.gate("Top", GateType::Or, ["A", "B", "C", "D"])
        .expect("gate");
    b.basic_events(["A", "B", "C", "D"]).expect("basics");
    let tree = b.build("Top").expect("tree");

    let phi = Formula::atom("Top");
    let operational = StatusVector::all_operational(4);

    let capped = AnalysisSession::builder()
        .witness_limit(2)
        .build(tree.clone());
    let set = capped.all_counterexamples(&operational, &phi).expect("set");
    assert_eq!((set.witnesses.len(), set.total), (2, 4));
    assert!(set.truncated, "a capped session must report truncation");

    let roomy = AnalysisSession::builder()
        .witness_limit(16)
        .build(tree.clone());
    let set = roomy.all_counterexamples(&operational, &phi).expect("set");
    assert_eq!((set.witnesses.len(), set.total), (4, 4));
    assert!(!set.truncated);
    for w in &set.witnesses {
        assert_eq!(w.count_failed(), 1, "valid counterexamples are singletons");
        assert_definition7(&tree, &operational, w, &phi);
    }
}
