//! Exhaustive semantic-equivalence tests for the rewriting pipeline:
//! `desugar`, `to_nnf` and `simplify` (and their composition, the
//! prepared-query pipeline) must preserve truth-table semantics over
//! **all** status vectors, for generated formulas over a tree with ≤ 4
//! atoms — including `Vot` and `Evidence` nodes, which have the
//! trickiest rewritings (subset expansion, comparison flipping,
//! commuting with negation).

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::prelude::*;
use bfl_core::rewrite::{desugar, simplify, to_nnf};
use bfl_core::semantics;
use bfl_fault_tree::rng::Prng;

mod common;
use common::random_formula;

/// A 4-basic-event tree with both gate types, shared subtrees included.
fn small_tree() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    b.basic_events(["a", "b", "c", "d"]).unwrap();
    b.gate("g1", GateType::Or, ["a", "b"]).unwrap();
    b.gate("g2", GateType::And, ["c", "d"]).unwrap();
    b.gate("top", GateType::Or, ["g1", "g2"]).unwrap();
    b.build("top").unwrap()
}

/// Asserts `phi ≡ psi` by the reference semantics on **every** status
/// vector of the tree (2⁴ = 16 vectors).
fn assert_equivalent(tree: &FaultTree, phi: &Formula, psi: &Formula, what: &str) {
    for b in StatusVector::enumerate_all(tree.num_basic_events()) {
        let lhs = semantics::eval(tree, &b, phi).unwrap();
        let rhs = semantics::eval(tree, &b, psi).unwrap();
        assert_eq!(lhs, rhs, "{what} broke `{phi}` at {b}: rewrote to `{psi}`");
    }
}

fn assert_pipeline_preserves(tree: &FaultTree, phi: &Formula) {
    let d = desugar(phi);
    assert_equivalent(tree, phi, &d, "desugar");
    let n = to_nnf(phi);
    assert_equivalent(tree, phi, &n, "to_nnf");
    let s = simplify(phi);
    assert_equivalent(tree, phi, &s, "simplify");
    // The prepared-query pipeline composes all three.
    let p = simplify(&to_nnf(&desugar(phi)));
    assert_equivalent(tree, phi, &p, "pipeline");
}

/// Systematic formulas exercising every connective, evidence on both
/// polarities, minimality operators and voting with every comparison.
#[test]
fn pipeline_preserves_semantics_on_systematic_formulas() {
    let tree = small_tree();
    let sources = [
        "true",
        "false",
        "a",
        "top",
        "!a",
        "!!g1",
        "a & b",
        "a | b & c",
        "a => b => c",
        "a <=> b",
        "a != b",
        "!(a & !(b | c))",
        "(a <=> b) != (c <=> d)",
        "g1 & !g2",
        "a[b := 1]",
        "(a & b)[a := 0]",
        "!(a | c)[c := 1][a := 0]",
        "MCS(top)",
        "MPS(top)",
        "!MCS(g1)",
        "MCS(a | b) & !c",
        "MPS(g2)[d := 1]",
        "VOT(>=2; a, b, c)",
        "VOT(<2; a, b, c)",
        "VOT(<=1; a, b, c, d)",
        "VOT(=2; a, b, c, d)",
        "VOT(>0; a, b)",
        "!VOT(>=2; a, b, c)",
        "VOT(>=1; a & b, c | d)",
        "VOT(=0; a, b)",
        "a & true",
    ];
    for src in sources {
        let phi = parse_formula(src).unwrap();
        assert_pipeline_preserves(&tree, &phi);
    }
}

/// Seeded random formulas over all ten constructors, depth ≤ 3, checked
/// on all 16 status vectors each.
#[test]
fn pipeline_preserves_semantics_on_generated_formulas() {
    let tree = small_tree();
    let names: Vec<String> = tree.iter().map(|e| tree.name(e).to_string()).collect();
    let basics: Vec<String> = tree
        .basic_event_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rng = Prng::seed_from_u64(0xBF1_2024);
    for _ in 0..300 {
        let phi = random_formula(&mut rng, &names, &basics, 3);
        assert_pipeline_preserves(&tree, &phi);
    }
}
