//! Differential testing of the industrial fault-tree generator.
//!
//! The generator is trusted with the scale corpus, so here it is pinned
//! against every independent oracle the workspace has, on trees small
//! enough (≤ 14 basic events) to check exhaustively:
//!
//! * the structure function `Φ_T` by direct recursion vs the compiled
//!   BDD, over **all** `2^n` status vectors;
//! * layer-2 quantifiers via `semantics::eval_query` vs the
//!   `AnalysisSession` model checker;
//! * exact BDD probabilities vs the `2^n`-sum naive reference;
//! * the Galileo emitter/parser fixpoint: `emit → parse → emit` must be
//!   byte-identical, for annotated and bare trees alike.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl_core::ast::{Formula, Query};
use bfl_core::engine::AnalysisSession;
use bfl_core::{quant, semantics};
use bfl_fault_tree::bdd::TreeBdd;
use bfl_fault_tree::generator::{industrial_model, industrial_tree, IndustrialConfig};
use bfl_fault_tree::{galileo, prob};
use bfl_fault_tree::{StatusVector, VariableOrdering};

/// Small shapes exercising every generator axis: module count, depth,
/// fan-in, gate mix, VOT density and DAG sharing.
fn shapes() -> Vec<IndustrialConfig> {
    vec![
        IndustrialConfig {
            num_basic: 8,
            num_modules: 2,
            depth: 3,
            fan_in: (2, 3),
            and_bias: 0.5,
            vot_density: 0.0,
            sharing: 0.0,
            ..Default::default()
        },
        IndustrialConfig {
            num_basic: 12,
            num_modules: 3,
            depth: 2,
            fan_in: (2, 4),
            and_bias: 0.2,
            vot_density: 0.5,
            sharing: 0.3,
            ..Default::default()
        },
        IndustrialConfig {
            num_basic: 14,
            num_modules: 1,
            depth: 6,
            fan_in: (2, 2),
            and_bias: 0.8,
            vot_density: 0.2,
            sharing: 0.5,
            ..Default::default()
        },
        IndustrialConfig {
            num_basic: 13,
            num_modules: 4,
            depth: 4,
            fan_in: (3, 4),
            and_bias: 0.4,
            vot_density: 1.0,
            sharing: 0.15,
            ..Default::default()
        },
    ]
}

fn seeded(mut cfg: IndustrialConfig, seed: u64) -> IndustrialConfig {
    cfg.seed = seed;
    cfg
}

#[test]
fn structure_function_matches_bdd_exhaustively() {
    for shape in shapes() {
        for seed in 0..5u64 {
            let cfg = seeded(shape.clone(), 0xD1FF + seed);
            let tree = industrial_tree(&cfg);
            let n = tree.num_basic_events();
            assert!(n <= 14, "differential shapes must stay exhaustive");
            let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
            let top = tb.element_bdd(&tree, tree.top());
            for v in StatusVector::enumerate_all(n) {
                assert_eq!(
                    tree.evaluate(&v, tree.top()),
                    tb.eval_vector(&tree, top, &v),
                    "Φ_T disagrees with the BDD (shape n={n}, seed {seed})"
                );
            }
        }
    }
}

#[test]
fn quantifiers_agree_with_reference_semantics() {
    for shape in shapes() {
        for seed in 0..3u64 {
            let cfg = seeded(shape.clone(), 0xBEE + seed);
            let tree = industrial_tree(&cfg);
            let top_name = tree.name(tree.top()).to_string();
            let session = AnalysisSession::new(tree.clone());
            for q in [
                Query::exists(Formula::atom(&top_name)),
                Query::forall(Formula::atom(&top_name)),
                Query::exists(Formula::atom(&top_name).not()),
                Query::forall(Formula::atom(&top_name).mcs()),
            ] {
                let reference = semantics::eval_query(&tree, &q).unwrap();
                let checked = session.check_query(&q).unwrap().holds;
                assert_eq!(reference, checked, "{q} (seed {seed})");
            }
        }
    }
}

#[test]
fn bdd_probability_matches_naive_sum() {
    for shape in shapes() {
        for seed in 0..3u64 {
            let cfg = seeded(shape.clone(), 0x9B + seed);
            let model = industrial_model(&cfg);
            let probs: Vec<f64> = model.probabilities.iter().map(|p| p.unwrap()).collect();
            let tree = &model.tree;
            let exact = prob::top_event_probability(tree, &probs).unwrap();
            let top_name = tree.name(tree.top()).to_string();
            let naive = quant::probability_naive(tree, &Formula::atom(&top_name), &probs).unwrap();
            assert!(
                (exact - naive).abs() < 1e-9,
                "P(top) {exact} vs naive {naive} (seed {seed})"
            );
        }
    }
}

#[test]
fn generation_is_deterministic_per_seed() {
    for shape in shapes() {
        let a = galileo::to_galileo(&industrial_tree(&shape), None);
        let b = galileo::to_galileo(&industrial_tree(&shape), None);
        assert_eq!(a, b, "same config must regenerate the same tree");
        let other = industrial_tree(&seeded(shape, 0xFEED));
        assert_ne!(
            a,
            galileo::to_galileo(&other, None),
            "a different seed should perturb the tree"
        );
    }
}

#[test]
fn galileo_emit_parse_emit_is_a_byte_identical_fixpoint() {
    for shape in shapes() {
        for seed in 0..3u64 {
            let cfg = seeded(shape.clone(), 0x6A11 + seed);
            // Annotated: probabilities survive the round trip verbatim.
            let model = industrial_model(&cfg);
            let text1 = galileo::to_galileo(&model.tree, Some(&model.probabilities));
            let reparsed = galileo::parse(&text1).expect("emitter output must parse");
            assert_eq!(reparsed.probabilities, model.probabilities);
            let text2 = galileo::to_galileo(&reparsed.tree, Some(&reparsed.probabilities));
            assert_eq!(text1, text2, "annotated emit→parse→emit moved bytes");

            // Bare: same fixpoint without the probability channel.
            let bare1 = galileo::to_galileo(&model.tree, None);
            let bare_reparsed = galileo::parse(&bare1).expect("bare output must parse");
            let bare2 = galileo::to_galileo(&bare_reparsed.tree, None);
            assert_eq!(bare1, bare2, "bare emit→parse→emit moved bytes");

            // And the round trip preserved semantics, not just syntax.
            let tree = &model.tree;
            let mut tb1 = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
            let mut tb2 = TreeBdd::new(&reparsed.tree, VariableOrdering::DfsPreorder);
            let f1 = tb1.element_bdd(tree, tree.top());
            let f2 = tb2.element_bdd(&reparsed.tree, reparsed.tree.top());
            for v in StatusVector::enumerate_all(tree.num_basic_events()) {
                assert_eq!(
                    tb1.eval_vector(tree, f1, &v),
                    tb2.eval_vector(&reparsed.tree, f2, &v)
                );
            }
        }
    }
}
