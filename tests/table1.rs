//! Table I of the paper: the four counterexample patterns on the
//! Section VI tree, with the published example vectors and
//! counterexamples.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::logic::patterns::{table1_rows, table1_tree};
use bfl::prelude::*;

/// Every row: the example vector does not satisfy the instantiated
/// pattern, the paper's counterexample is valid per Definition 7, and our
/// Algorithm 4 produces a valid counterexample.
#[test]
fn table1_rows_reproduce() {
    let tree = table1_tree();
    for (i, row) in table1_rows().iter().enumerate() {
        let mut mc = ModelChecker::new(&tree);
        if row.needs_support_scope {
            mc.set_minimality_scope(MinimalityScope::FormulaSupport);
        }
        assert!(
            !mc.holds(&row.example, &row.formula).unwrap(),
            "row {i}: example unexpectedly satisfies {}",
            row.formula
        );
        assert!(
            mc.holds(&row.paper_counterexample, &row.formula).unwrap(),
            "row {i}: paper counterexample does not satisfy {}",
            row.formula
        );
        assert!(
            is_valid_counterexample(
                &mut mc,
                &row.example,
                &row.paper_counterexample,
                &row.formula
            )
            .unwrap(),
            "row {i}: paper counterexample not Def.7-minimal"
        );
        let ours = counterexample(&mut mc, &row.example, &row.formula).unwrap();
        let v = ours.vector().expect("found").clone();
        assert!(
            is_valid_counterexample(&mut mc, &row.example, &v, &row.formula).unwrap(),
            "row {i}: our counterexample not Def.7-minimal"
        );
    }
}

/// The rows our walk reproduces *bit-for-bit* (see `EXPERIMENTS.md` for
/// the two rows where Algorithm 4 legitimately returns a different but
/// equally valid counterexample).
#[test]
fn table1_exact_vectors() {
    let tree = table1_tree();
    let rows = table1_rows();
    let exact = [0usize, 2, 3, 5];
    for &i in &exact {
        let row = &rows[i];
        let mut mc = ModelChecker::new(&tree);
        if row.needs_support_scope {
            mc.set_minimality_scope(MinimalityScope::FormulaSupport);
        }
        let ours = counterexample(&mut mc, &row.example, &row.formula).unwrap();
        assert_eq!(
            ours.vector().expect("found"),
            &row.paper_counterexample,
            "row {i}"
        );
    }
}

/// Pattern 1, row 2 (b = (1,1,1)): the counterexample is one of the two
/// MCS vectors; the paper prints (1,0,1), our variable order yields the
/// equally valid (1,1,0).
#[test]
fn table1_row2_alternative() {
    let tree = table1_tree();
    let rows = table1_rows();
    let row = &rows[1];
    let mut mc = ModelChecker::new(&tree);
    let ours = counterexample(&mut mc, &row.example, &row.formula).unwrap();
    let v = ours.vector().expect("found").clone();
    let mcs_vectors = [
        StatusVector::from_bits([true, true, false]),
        StatusVector::from_bits([true, false, true]),
    ];
    assert!(mcs_vectors.contains(&v));
}

/// Pattern 3 (MCS(e1) ∧ MCS(e3)) distinguishes the two minimality scopes:
/// unsatisfiable under the formal global semantics, satisfiable (with the
/// paper's counterexample) under the support-relative reading.
#[test]
fn pattern3_scope_dependence() {
    let tree = table1_tree();
    let rows = table1_rows();
    let row = &rows[4];

    let mut strict = ModelChecker::new(&tree);
    assert_eq!(
        counterexample(&mut strict, &row.example, &row.formula).unwrap(),
        Counterexample::Unsatisfiable
    );

    let mut relaxed = ModelChecker::new(&tree);
    relaxed.set_minimality_scope(MinimalityScope::FormulaSupport);
    let ours = counterexample(&mut relaxed, &row.example, &row.formula).unwrap();
    assert_eq!(ours.vector().expect("found"), &row.paper_counterexample);
}

/// The rendered failure-propagation report of a Table I row mentions the
/// flipped event, mirroring the figures in the table.
#[test]
fn table1_rendering() {
    let tree = table1_tree();
    let rows = table1_rows();
    let row = &rows[0];
    let report =
        bfl::logic::render::counterexample_report(&tree, &row.example, &row.paper_counterexample);
    assert!(report.contains("changed: {e2}"));
    assert!(report.contains("e1"));
}
