//! The small worked examples of the paper: Fig. 1 (Section II), Fig. 3 and
//! Examples 2–3 (Section V).

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::prelude::*;

/// Section II: the MCSs and MPSs of the Fig. 1 subtree.
#[test]
fn fig1_cut_and_path_sets() {
    let tree = bfl::ft::corpus::fig1();
    let mut mc = ModelChecker::new(&tree);
    let mcs = mc.minimal_cut_sets("CP/R").unwrap();
    assert_eq!(
        mcs,
        vec![
            vec!["H2".to_string(), "IT".to_string()],
            vec!["H3".to_string(), "IW".to_string()],
        ]
    );
    let mps = mc.minimal_path_sets("CP/R").unwrap();
    assert_eq!(
        mps,
        vec![
            vec!["H2".to_string(), "H3".to_string()],
            vec!["H2".to_string(), "IW".to_string()],
            vec!["H3".to_string(), "IT".to_string()],
            vec!["IT".to_string(), "IW".to_string()],
        ]
    );
}

/// Fig. 3: the OR-gate fault tree translates to the two-node BDD drawn in
/// the paper (plus the two terminals).
#[test]
fn fig3_or_gate_bdd_shape() {
    let tree = bfl::ft::corpus::or2();
    let mut tb = bfl::ft::bdd::TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
    let top = tb.element_bdd(&tree, tree.top());
    assert_eq!(tb.manager().node_count(top), 4);
    let dot = tb
        .manager()
        .to_dot(top, |v| format!("e{}", v.index() / 2 + 1));
    assert!(dot.contains("e1"));
    assert!(dot.contains("e2"));
}

/// Example 2: walking the BDD of MCS(e_top) for the OR gate with
/// b = (0, 1) ends in the 1 terminal.
#[test]
fn example_2_vector_check() {
    let tree = bfl::ft::corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    let phi = parse_formula("MCS(Top)").unwrap();
    let b = StatusVector::from_bits([false, true]);
    assert!(mc.holds(&b, &phi).unwrap());
}

/// Example 3: AllSat of MCS(e_top) yields exactly (0,1) and (1,0).
#[test]
fn example_3_all_satisfying_vectors() {
    let tree = bfl::ft::corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    let phi = parse_formula("MCS(Top)").unwrap();
    let vectors = mc.satisfying_vectors(&phi).unwrap();
    assert_eq!(
        vectors,
        vec![
            StatusVector::from_bits([true, false]),
            StatusVector::from_bits([false, true]),
        ]
    );
}

/// Section VI warm-up: {IW, H3, IT} is a cut set of CP/R but not minimal;
/// the counterexample {IW, H3} is contained in it.
#[test]
fn section_6_warmup_counterexample() {
    let tree = bfl::ft::corpus::fig1();
    let mut mc = ModelChecker::new(&tree);
    let b = StatusVector::from_failed_names(&tree, &["IW", "H3", "IT"]);
    assert!(tree.is_cut_set(&b, tree.top()));
    assert!(!tree.is_minimal_cut_set(&b, tree.top()));
    let phi = parse_formula("MCS(\"CP/R\")").unwrap();
    let cex = counterexample(&mut mc, &b, &phi).unwrap();
    let v = cex.vector().expect("counterexample").clone();
    let mut names = v.failed_names(&tree);
    names.sort();
    assert_eq!(names, vec!["H3", "IW"]);
    assert!(is_valid_counterexample(&mut mc, &b, &v, &phi).unwrap());
}

/// The `(¬e)[e↦0]` vs `(¬e)∧¬e` distinction of Section III-A.
#[test]
fn evidence_is_not_conjunction() {
    let tree = bfl::ft::corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    let b = StatusVector::from_bits([true, false]);
    let with_evidence = parse_formula("(!e1)[e1 := 0]").unwrap();
    assert!(mc.holds(&b, &with_evidence).unwrap());
    let with_conjunction = parse_formula("!e1 & !e1").unwrap();
    assert!(!mc.holds(&b, &with_conjunction).unwrap());
}
