//! The uncertainty engine: interval probability propagation for
//! `prob = lo..hi` range annotations and the deterministic parallel
//! Monte Carlo estimator, selected per query via `Method`.
//!
//! Run with: `cargo run --example uncertainty`

// An example, not a library: panicking on the impossible is fine.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // e1's failure probability is only known to a range.
    let session = AnalysisSession::builder()
        .intervals(vec![
            Some(ProbInterval::new(0.1, 0.3)?), // e1 ∈ [0.1, 0.3]
            Some(ProbInterval::point(0.2)?),    // e2 known exactly
        ])
        .method(Method::Interval)
        .build(bfl::ft::corpus::or2()); // Top = OR(e1, e2)

    // Interval propagation: a guaranteed envelope for P(Top).
    let phi = parse_formula("Top")?;
    match session.probability_value(&phi, None, None)?.unwrap() {
        ProbValue::Interval(iv) => {
            println!("P(Top) ∈ [{}, {}] for any p(e1) ∈ [0.1, 0.3]", iv.lo, iv.hi);
            assert!(iv.lo <= 0.28 && 0.28 <= iv.hi);
        }
        other => unreachable!("interval method returned {other:?}"),
    }

    // Ranged models refuse point-distribution methods (exact, mc) with
    // a structured error instead of guessing a midpoint.
    match session.probability_value(&phi, None, Some(Method::Exact)) {
        Err(BflError::IntervalProbabilities { events }) => {
            println!("exact path refused: ranged events {events:?}");
        }
        other => unreachable!("exact on a ranged model returned {other:?}"),
    }

    // Monte Carlo on a point-annotated model: samples status vectors
    // directly on the tree — no BDD — with a Wilson CI. Deterministic:
    // equal (seed, samples) are byte-identical at any thread count.
    let mc = AnalysisSession::builder()
        .probabilities(vec![Some(0.1), Some(0.2)])
        .build(bfl::ft::corpus::or2());
    let method = Method::Mc {
        samples: 100_000,
        seed: 7,
        confidence: 0.99,
    };
    match mc.probability_value(&phi, None, Some(method))?.unwrap() {
        ProbValue::Estimate(e) => {
            println!(
                "P(Top) ≈ {} ({:.0}% CI [{}, {}], {} samples)",
                e.point,
                100.0 * e.confidence,
                e.ci_lo,
                e.ci_hi,
                e.samples
            );
            assert!(e.ci_lo <= 0.28 && 0.28 <= e.ci_hi); // true P(Top) = 0.28
        }
        other => unreachable!("mc method returned {other:?}"),
    }
    Ok(())
}
