//! End-to-end textual workflow: parse a fault tree from Galileo text,
//! parse a batch of BFL properties from the spec DSL, and evaluate them
//! in one `AnalysisSession::run` pass — the tool-chain the paper's
//! future work sketches for practitioners.
//!
//! Run with: `cargo run --example dsl_and_galileo`

use bfl::ft::galileo;
use bfl::prelude::*;

/// A small industrial-style model: a redundant pump system with a shared
/// power supply and a 2-out-of-3 sensor voter.
const MODEL: &str = r#"
toplevel "System";
"System"  or  "PumpsDown" "Sensors" ;
"PumpsDown" and "PumpA" "PumpB";
"PumpA"   or  "MechA" "Power";
"PumpB"   or  "MechB" "Power";
"Sensors" 2of3 "S1" "S2" "S3";
"MechA"   prob=0.01;
"MechB"   prob=0.01;
"Power"   prob=0.001;   // shared dependency
"S1"      prob=0.05;
"S2"      prob=0.05;
"S3"      prob=0.05;
"#;

/// The whole property batch in the line-oriented spec format: labels,
/// comments, layer-1 and layer-2 questions side by side.
const PROPERTIES: &str = "\
# pump-system properties
power-kills-pumps:   forall Power => PumpsDown
sensor-harmless:     forall S1 => System
pumps-sensors-idp:   IDP(PumpsDown, Sensors)
power-needed:        SUP(Power)
two-sensors-fatal:   forall VOT(>=2; S1, S2, S3) => System
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = galileo::parse(MODEL)?;
    println!(
        "parsed `System`: {} basic events, {} gates",
        model.tree.num_basic_events(),
        model.tree.num_gates()
    );

    // One owned session: tree, probabilities and configuration in one
    // place, no lifetimes to thread around.
    let session = AnalysisSession::builder()
        .probabilities(model.probabilities.clone())
        .build(model.tree);

    // The batch evaluates in a single pass over shared BDD caches, and
    // every outcome carries its witnesses/counterexamples and stats.
    let spec = Spec::parse(PROPERTIES)?;
    let report = session.run(&spec)?;
    print!("\n{report}");

    println!("\nminimal cut sets:");
    for s in session.minimal_cut_sets("System")? {
        println!("  {{{}}}", s.join(", "));
    }

    // The probability layer uses the prob= annotations from the model.
    println!(
        "\ntop event probability: {:.6}",
        session.top_event_probability()?
    );
    let tree = session.tree();
    let probs: Vec<f64> = model
        .probabilities
        .iter()
        .map(|p| p.unwrap_or(0.0))
        .collect();
    let power = tree.require("Power")?;
    println!(
        "Birnbaum importance of Power: {:.6}",
        bfl::ft::prob::birnbaum_importance(tree, tree.top(), power, &probs)?
    );

    // Round-trip: print the tree back as Galileo.
    println!(
        "\nround-tripped model:\n{}",
        galileo::to_galileo(tree, Some(&model.probabilities))
    );
    Ok(())
}
