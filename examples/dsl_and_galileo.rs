//! End-to-end textual workflow: parse a fault tree from Galileo text,
//! parse BFL properties from the DSL, model-check them — the tool-chain
//! the paper's future work sketches for practitioners.
//!
//! Run with: `cargo run --example dsl_and_galileo`

use bfl::ft::galileo;
use bfl::prelude::*;

/// A small industrial-style model: a redundant pump system with a shared
/// power supply and a 2-out-of-3 sensor voter.
const MODEL: &str = r#"
toplevel "System";
"System"  or  "PumpsDown" "Sensors" ;
"PumpsDown" and "PumpA" "PumpB";
"PumpA"   or  "MechA" "Power";
"PumpB"   or  "MechB" "Power";
"Sensors" 2of3 "S1" "S2" "S3";
"MechA"   prob=0.01;
"MechB"   prob=0.01;
"Power"   prob=0.001;   // shared dependency
"S1"      prob=0.05;
"S2"      prob=0.05;
"S3"      prob=0.05;
"#;

const PROPERTIES: &[(&str, &str)] = &[
    ("power alone kills both pumps", "forall Power => PumpsDown"),
    ("a single sensor is harmless", "forall S1 => System"),
    ("pumps and sensors independent", "IDP(PumpsDown, Sensors)"),
    ("power is not superfluous", "SUP(Power)"),
    ("two sensors fail the system", "forall VOT(>=2; S1, S2, S3) => System"),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = galileo::parse(MODEL)?;
    let tree = &model.tree;
    println!(
        "parsed `System`: {} basic events, {} gates",
        tree.num_basic_events(),
        tree.num_gates()
    );

    let mut mc = ModelChecker::new(tree);
    println!("\nproperties:");
    for (label, src) in PROPERTIES {
        match parse_spec(src)? {
            Spec::Query(q) => {
                println!("  {label:34} {src:45} = {}", mc.check_query(&q)?);
            }
            Spec::Formula(f) => {
                let n = mc.count_satisfying(&f)?;
                println!("  {label:34} {src:45} = {n} vectors");
            }
        }
    }

    println!("\nminimal cut sets:");
    for s in mc.minimal_cut_sets("System")? {
        println!("  {{{}}}", s.join(", "));
    }

    // The probability layer uses the prob= annotations from the model.
    let probs: Vec<f64> = model
        .probabilities
        .iter()
        .map(|p| p.unwrap_or(0.0))
        .collect();
    let top_p = bfl::ft::prob::top_event_probability(tree, &probs);
    println!("\ntop event probability: {top_p:.6}");
    let power = tree.require("Power")?;
    println!(
        "Birnbaum importance of Power: {:.6}",
        bfl::ft::prob::birnbaum_importance(tree, tree.top(), power, &probs)
    );

    // Round-trip: print the tree back as Galileo.
    println!("\nround-tripped model:\n{}", galileo::to_galileo(tree, Some(&model.probabilities)));
    Ok(())
}
