//! The probabilistic layer (the paper's first future-work item, realised
//! PFL-style): exact formula probabilities, layer-2 probability
//! judgements, the batched importance suite, and memoised probability
//! sweeps on compiled plans — all on the COVID-19 case study.
//!
//! Run with: `cargo run --example reliability`

use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = bfl::ft::corpus::covid();
    let n = tree.num_basic_events();

    // A plausible probability profile: hazards are rarer than human errors.
    let p_of = |name: &str| -> f64 {
        match name {
            "IW" => 0.05, // infected worker joins
            "IT" => 0.03, // infected object
            "IS" => 0.04, // infected surface
            "PP" => 0.60, // physical proximity is common
            "VW" => 0.20, // vulnerable worker present
            "AB" => 0.30, // no barriers
            "MV" => 0.25, // mechanical ventilation
            "UT" => 0.01, // unknown transmission
            _ => 0.10,    // human errors H1..H5
        }
    };
    let probs: Vec<Option<f64>> = tree
        .basic_events()
        .iter()
        .map(|&e| Some(p_of(tree.name(e))))
        .collect();
    let session = AnalysisSession::builder().probabilities(probs).build(tree);

    let top = session.top_event_probability()?;
    println!("P(IWoS) = {top:.6}  ({n} basic events)\n");

    // Probability of *any* formula — here: that the realised failure set
    // is exactly a minimal cut set, and a conditional.
    let mcs = parse_formula("MCS(IWoS)")?;
    println!(
        "P(MCS(IWoS))       = {:.6}",
        session.formula_probability(&mcs)?
    );
    let phi = parse_formula("IWoS")?;
    let given = parse_formula("H1 & H4")?;
    if let Some(p) = session.conditional_probability(&phi, &given)? {
        println!("P(IWoS | H1 ∧ H4)  = {p:.6}");
    }

    // Layer-2 probability judgements run like any other query — also in
    // spec files and on the CLI (`bfl check --ft … 'P(IWoS) <= 0.01'`).
    for src in ["P(IWoS) <= 0.01", "P(IWoS | H1 & H4) >= 0.001"] {
        let outcome = session.check_query(&parse_query(src)?)?;
        println!(
            "{src:<28} -> {} (p = {:.6})",
            outcome.holds,
            outcome.probability.unwrap_or(f64::NAN)
        );
    }

    // The batched importance suite: Birnbaum, criticality,
    // Fussell-Vesely, RAW, RRW — one call, one shared Shannon memo.
    println!("\nimportance ranking for IWoS:");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "event", "Birnbaum", "criticality", "Fussell-V.", "RAW", "RRW"
    );
    for r in session.rank_events(&phi)? {
        println!(
            "{:<6} {:>10.6} {:>12.6} {:>12.6} {:>10.4} {:>10}",
            r.event,
            r.birnbaum,
            r.criticality,
            r.fussell_vesely,
            r.raw,
            r.rrw
                .map(|x| format!("{x:.4}"))
                .unwrap_or_else(|| "∞".into()),
        );
    }

    // Probability sweeps on a compiled plan: the query is prepared once;
    // each scenario is BDD restriction + a memoised Shannon walk — never
    // a recompile. Here: fail and fix each human error in turn.
    let prepared = session.prepare(&parse_query("P(IWoS) <= 0.01")?)?;
    let mut set = ScenarioSet::new();
    for h in ["H1", "H2", "H3", "H4", "H5"] {
        set.push(Scenario::named(format!("{h} failed")).bind(h, true));
        set.push(Scenario::named(format!("{h} fixed")).bind(h, false));
    }
    let report = prepared.sweep_probabilities(&set)?;
    println!("\n{report}");
    let warm = prepared.sweep_probabilities(&set)?;
    println!(
        "warm sweep: {} memo hits, {} fresh nodes (pure cache lookups)",
        warm.stats.memo_hits, warm.stats.fresh_nodes
    );
    Ok(())
}
