//! The probability layer (the paper's first future-work item): exact
//! top-event probability, importance measures, and a probability sweep on
//! the COVID-19 case study.
//!
//! Run with: `cargo run --example reliability`

use bfl::ft::prob;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = bfl::ft::corpus::covid();
    let n = tree.num_basic_events();

    // A plausible probability profile: hazards are rarer than human errors.
    let p_of = |name: &str| -> f64 {
        match name {
            "IW" => 0.05, // infected worker joins
            "IT" => 0.03, // infected object
            "IS" => 0.04, // infected surface
            "PP" => 0.60, // physical proximity is common
            "VW" => 0.20, // vulnerable worker present
            "AB" => 0.30, // no barriers
            "MV" => 0.25, // mechanical ventilation
            "UT" => 0.01, // unknown transmission
            _ => 0.10,    // human errors H1..H5
        }
    };
    let probs: Vec<f64> = tree
        .basic_events()
        .iter()
        .map(|&e| p_of(tree.name(e)))
        .collect();

    let top = prob::top_event_probability(&tree, &probs);
    println!("P(IWoS) = {top:.6}  ({n} basic events)\n");

    println!("{:<6} {:>12} {:>14}", "event", "Birnbaum", "improvement");
    let mut rows: Vec<(String, f64, f64)> = tree
        .basic_events()
        .iter()
        .map(|&e| {
            (
                tree.name(e).to_string(),
                prob::birnbaum_importance(&tree, tree.top(), e, &probs),
                prob::improvement_potential(&tree, tree.top(), e, &probs),
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (name, bir, ip) in &rows {
        println!("{name:<6} {bir:>12.6} {ip:>14.6}");
    }

    // Sweep: how does the top-event probability react to the rate of
    // procedure violations (H1, the most critical event)?
    println!("\nP(IWoS) as a function of P(H1):");
    let h1 = tree.require("H1")?;
    let bi = tree.basic_index(h1).expect("basic");
    for step in 0..=10 {
        let p = step as f64 / 10.0;
        let mut ps = probs.clone();
        ps[bi] = p;
        println!(
            "  P(H1) = {p:.1}  ->  P(IWoS) = {:.6}",
            prob::top_event_probability(&tree, &ps)
        );
    }
    Ok(())
}
