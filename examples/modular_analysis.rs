//! Module detection and compositional reasoning: where the `IDP` operator
//! of the logic meets the classical notion of fault-tree modules.
//!
//! Run with: `cargo run --example modular_analysis`

use bfl::ft::modules;
use bfl::prelude::*;

fn report(tree: &FaultTree, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("── {label} ──");
    let mods = modules::modules(tree);
    let names: Vec<&str> = mods.iter().map(|&g| tree.name(g)).collect();
    println!("modules: {names:?}");

    // Cross-check with the logic: two disjoint modules are IDP.
    let mut mc = ModelChecker::new(tree);
    for (i, &a) in mods.iter().enumerate() {
        for &b in mods.iter().skip(i + 1) {
            let cone_a = tree.basic_events_under(a);
            let cone_b = tree.basic_events_under(b);
            let disjoint = cone_a.iter().all(|e| !cone_b.contains(e));
            let nested = cone_a.iter().all(|e| cone_b.contains(e))
                || cone_b.iter().all(|e| cone_a.contains(e));
            if disjoint {
                let q = Query::idp(Formula::atom(tree.name(a)), Formula::atom(tree.name(b)));
                let idp = mc.check_query(&q)?;
                println!(
                    "IDP({}, {}) = {idp}   (disjoint modules are independent)",
                    tree.name(a),
                    tree.name(b)
                );
                assert!(idp);
            } else if !nested {
                println!(
                    "modules {} and {} overlap without nesting (impossible)",
                    tree.name(a),
                    tree.name(b)
                );
            }
        }
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The pressure-tank tree has no shared events: every gate is a module
    // and can be analysed in isolation.
    report(&bfl::ft::corpus::pressure_tank(), "pressure tank")?;

    // The COVID tree shares IW, IT, PP and H1 across branches: almost
    // nothing is a module, which is exactly why the paper's IDP queries
    // are interesting there.
    report(&bfl::ft::corpus::covid(), "COVID-19 (Fig. 2)")?;

    // Module-local analysis: compute the MCSs of a module independently
    // and observe they embed into the global analysis unchanged.
    let tree = bfl::ft::corpus::pressure_tank();
    let mut mc = ModelChecker::new(&tree);
    println!("MCS(Overpressure) analysed as its own module:");
    for s in mc.minimal_cut_sets("Overpressure")? {
        println!("  {{{}}}", s.join(", "));
    }
    println!("MCS(Rupture) — the module's cut sets appear verbatim:");
    for s in mc.minimal_cut_sets("Rupture")? {
        println!("  {{{}}}", s.join(", "));
    }
    Ok(())
}
