//! What-if analysis with the evidence operator — the scenario-style
//! queries the paper motivates in Section I ("what are the MCSs, given
//! that basic event A or subsystem B has failed?"), on the compiled
//! query-plan API: `prepare` once, then `eval`/`sweep` arbitrary
//! evidence scenarios by BDD restriction instead of recompiling the
//! pipeline per hypothesis.
//!
//! Run with: `cargo run --example whatif_scenarios`

use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One owned session for the whole analysis: every query below reuses
    // the same compiled BDDs.
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let tree = session.tree_arc();

    println!("What-if scenarios on the COVID-19 fault tree\n");

    // ---------------------------------------------------------------
    // 1. Compile once, sweep many: is a transmission still possible
    //    under each hypothesis? The old way wrapped the formula in
    //    `with_evidence` and recompiled per scenario; `prepare` runs the
    //    pass pipeline once and each scenario is a BDD restriction.
    // ---------------------------------------------------------------
    let prepared = session.prepare(&parse_query("exists IWoS")?)?;
    let scenarios = ScenarioSet::parse(
        "baseline:\n\
         infected worker:    IW = 1\n\
         protected worker:   VW = 0\n\
         surface route only: IW = 0, IT = 0, UT = 0\n\
         all hygiene fails:  H1 = 1, H2 = 1, H3 = 1, H4 = 1, H5 = 1\n",
    )?;
    let report = prepared.sweep(&scenarios)?;
    print!("{report}");

    // The sweep never recompiled a formula: evidence was applied by
    // restriction on the prepared diagram.
    assert_eq!(report.stats.translation_misses, 0);

    // ---------------------------------------------------------------
    // 2. The compiled plan: what `prepare` actually did.
    // ---------------------------------------------------------------
    let boundary = session.prepare(&parse_query(
        "forall VOT(>=4; H1, H2, H3, H4, H5) & IW & IT & VW & PP & IS & AB & MV & UT => IWoS",
    )?)?;
    println!("\n{}", boundary.explain());
    println!(
        "2. four human errors + all hazards guarantee the TLE: {}",
        boundary.eval(&Scenario::new())?.holds
    );

    // ---------------------------------------------------------------
    // 3. Individual what-ifs on another prepared property: can the
    //    surface route still cause a transmission once disinfection is
    //    guaranteed?
    // ---------------------------------------------------------------
    let surface = session.prepare(&parse_query("exists MoT & IS & !IW & !IT & !UT")?)?;
    let s = Scenario::named("disinfected").bind("H5", false);
    println!(
        "\n3. transmission via a surface without H5, IW, IT, UT possible: {}",
        surface.eval(&s)?.holds
    );

    // Scenario evaluations are memoised: asking again is a cache lookup.
    let again = surface.eval(&s)?;
    assert_eq!(again.stats.cache_hits, 1);

    // ---------------------------------------------------------------
    // 4. Evidence projections still compose with the rest of the logic:
    //    which minimal cut scenarios remain once IW is known failed?
    // ---------------------------------------------------------------
    let phi = parse_formula("MCS(IWoS)[IW := 1]")?;
    let vectors = session.satisfying_vectors(&phi)?;
    println!(
        "\n4. vectors satisfying MCS(IWoS)[IW := 1]: {}",
        vectors.len()
    );
    for v in &vectors {
        println!("   {{{}}}", v.failed_names(&tree).join(", "));
    }

    // ---------------------------------------------------------------
    // 5–6. Independence and superfluousness sweeps (layer 2 as before).
    // ---------------------------------------------------------------
    for (a, b) in [("CP", "SH"), ("CP", "CR"), ("DT", "AT"), ("CIW", "CIS")] {
        let q = Query::idp(Formula::atom(a), Formula::atom(b));
        println!("5. IDP({a}, {b}) = {}", session.check_query(&q)?.holds);
    }

    println!("\n6. superfluous events:");
    let mut any = false;
    for name in tree.basic_event_names() {
        if session.check_query(&Query::sup(name))?.holds {
            println!("   {name}");
            any = true;
        }
    }
    if !any {
        println!("   (none — every leaf matters, as the paper finds for PP)");
    }

    Ok(())
}
