//! What-if analysis with the evidence operator, independence and
//! superfluousness — the scenario-style queries the paper motivates in
//! Section I ("what are the MCSs, given that basic event A or subsystem B
//! has failed?").
//!
//! Run with: `cargo run --example whatif_scenarios`

use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One owned session for the whole scenario sweep: every evidence
    // projection below reuses the same compiled BDDs.
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let tree = session.tree_arc();

    println!("What-if scenarios on the COVID-19 fault tree\n");

    // Scenario 1: an infected worker has certainly joined the team.
    // Which minimal cut scenarios remain (projected by evidence)?
    let phi = parse_formula("MCS(IWoS)[IW := 1]")?;
    let vectors = session.satisfying_vectors(&phi)?;
    println!(
        "1. vectors satisfying MCS(IWoS)[IW := 1]: {}",
        vectors.len()
    );
    for v in &vectors {
        println!("   {{{}}}", v.failed_names(&tree).join(", "));
    }

    // Scenario 2: suppose surface disinfection is guaranteed (H5 := 0) —
    // can the surface route still cause a transmission?
    let q = parse_query("exists MoT[H5 := 0] & IS & !IW & !IT & !UT")?;
    println!(
        "\n2. transmission via a surface without H5, IW, IT, UT possible: {}",
        session.check_query(&q)?.holds
    );

    // Scenario 3: if the vulnerable worker is protected, the top event is
    // impossible (VW is in every cut set).
    let q = parse_query("exists IWoS[VW := 0]")?;
    println!(
        "3. top event possible with VW protected: {}",
        session.check_query(&q)?.holds
    );

    // Scenario 4: independence — are the pathogen branch and the
    // susceptible-host branch independent? (They are not: IW is shared
    // between CP and the transmission modes, H1 between SH and others.)
    for (a, b) in [("CP", "SH"), ("CP", "CR"), ("DT", "AT"), ("CIW", "CIS")] {
        let q = Query::idp(Formula::atom(a), Formula::atom(b));
        println!("4. IDP({a}, {b}) = {}", session.check_query(&q)?.holds);
    }

    // Scenario 5: superfluousness sweep — no basic event is superfluous.
    println!("\n5. superfluous events:");
    let mut any = false;
    for name in tree.basic_event_names() {
        if session.check_query(&Query::sup(name))?.holds {
            println!("   {name}");
            any = true;
        }
    }
    if !any {
        println!("   (none — every leaf matters, as the paper finds for PP)");
    }

    // Scenario 6: boundaries — would the top event always occur if at
    // most one of the transmission-independent safeguards held?
    let q = parse_query(
        "forall VOT(>=4; H1, H2, H3, H4, H5) & IW & IT & VW & PP & IS & AB & MV & UT => IWoS",
    )?;
    println!(
        "\n6. four human errors + all hazards guarantee the TLE: {}",
        session.check_query(&q)?.holds
    );

    Ok(())
}
