//! Actual causality on the COVID running example: given the observation
//! that the ward was infected, *which event sets actually caused the top
//! event* — and what would repairing them have changed?
//!
//! A but-for cause is a set of failed events whose repair (setting them
//! operational, everything else unchanged) flips the verdict; an actual
//! cause is a subset-minimal one. The engine finds them by BDD
//! cofactoring, so the same query runs as a one-off judgement, through
//! the concrete `cause(ϕ, …)` syntax, or as a prepared plan swept over
//! what-if scenarios.
//!
//! Run with: `cargo run --example causality`

// An example, not a library: panicking on the impossible is fine.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = bfl::ft::corpus::covid();
    let session = AnalysisSession::builder()
        .witness_limit(32)
        .build(tree.clone());

    // The observation: an infected worker joined the team (IW) past a
    // detection error (H3), in physical proximity (PP) to a vulnerable
    // worker (VW), with outbreak procedures not respected (H1) — under
    // it the top event IWoS holds.
    let phi = Formula::atom("IWoS");
    let evidence: Vec<(String, bool)> = ["IW", "H3", "PP", "H1", "VW"]
        .iter()
        .map(|n| (n.to_string(), true))
        .collect();

    let outcome = session.cause(&phi, &evidence)?;
    let report = outcome.causes.as_ref().expect("cause judgement");
    println!(
        "observation: {{{}}}",
        report.observation.failed_names(&tree).join(", ")
    );
    println!("ϕ = {phi} holds under it: {}", report.failing);
    println!(
        "actual causes ({} total{}):",
        report.total,
        if report.truncated { ", truncated" } else { "" }
    );
    for cause in &report.causes {
        println!(
            "  {{{}}}  — repaired ward: {{{}}}",
            cause.events.join(", "),
            cause.witness.failed_names(&tree).join(", ")
        );
    }

    // The same question in concrete syntax, as a spec file would ask it.
    let query = parse_query("cause(IWoS, IW := 1, H3 := 1, PP := 1, H1 := 1, VW := 1)")?;
    let same = session.check_query(&query)?;
    assert_eq!(same.causes, outcome.causes);
    println!("\nconcrete syntax: {query}");

    // What-if sweep on a prepared plan: do aerosol spread through the
    // ventilation (MV) or an unknown transmission mode (UT) change what
    // counts as a cause?
    let prepared = session.prepare(&Query::cause(phi, evidence))?;
    let mut scenarios = ScenarioSet::new();
    scenarios.push(Scenario::named("baseline"));
    scenarios.push(Scenario::named("aerosol spread").bind("MV", true));
    scenarios.push(Scenario::named("unknown mode").bind("UT", true));
    let sweep = prepared.sweep_causes(&scenarios)?;
    println!();
    for (scenario, o) in scenarios.iter().zip(&sweep.outcomes) {
        let r = o.causes.as_ref().expect("cause judgement");
        let sets: Vec<String> = r
            .causes
            .iter()
            .map(|c| format!("{{{}}}", c.events.join(", ")))
            .collect();
        println!(
            "{:<18} {} causes: {}",
            scenario.name().unwrap_or("unlabelled"),
            r.total,
            sets.join(" ")
        );
    }
    Ok(())
}
