//! Quickstart: build a fault tree, open an `AnalysisSession`, ask BFL
//! questions about it.
//!
//! Run with: `cargo run --example quickstart`

use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the fault tree of the paper's Fig. 1: existence of COVID-19
    // pathogens (CP) or a COVID-19 reservoir (CR) on the workplace.
    let mut builder = FaultTreeBuilder::new();
    builder.basic_events(["IW", "H3", "IT", "H2"])?;
    builder.gate("CP", GateType::And, ["IW", "H3"])?;
    builder.gate("CR", GateType::And, ["IT", "H2"])?;
    builder.gate("CP/R", GateType::Or, ["CP", "CR"])?;
    let tree = builder.build("CP/R")?;

    // The session owns the tree — no lifetimes — and shares one BDD
    // cache across every question below.
    let session = AnalysisSession::new(tree);

    // Layer-2 query: does the failure of CP always lead to the top event?
    let q = parse_query("forall CP => \"CP/R\"")?;
    println!(
        "forall CP => CP/R          : {}",
        session.check_query(&q)?.holds
    );

    // Layer-1 formula checked against a concrete status vector: is
    // {IW, H3} a minimal cut set?
    let phi = parse_formula("MCS(\"CP/R\")")?;
    let b = StatusVector::from_failed_names(session.tree(), &["IW", "H3"]);
    println!(
        "(IW, H3) is an MCS         : {}",
        session.check_vector(&b, &phi)?.holds
    );

    // Enumerate all minimal cut sets and path sets (the configured
    // backend computes these; see `SessionBuilder::backend`).
    println!(
        "minimal cut sets           : {:?}",
        session.minimal_cut_sets("CP/R")?
    );
    println!(
        "minimal path sets          : {:?}",
        session.minimal_path_sets("CP/R")?
    );

    // What-if scenario via evidence: the MCSs given that H2 cannot occur.
    let phi = parse_formula("MCS(\"CP/R\")[H2 := 0]")?;
    let vectors = session.satisfying_vectors(&phi)?;
    println!(
        "MCS given H2 impossible    : {:?}",
        session.vectors_to_failed_sets(&vectors)
    );

    // Batches evaluate in one pass and return a structured report.
    let spec = Spec::parse(
        "cp-fatal:  forall CP => \"CP/R\"\n\
         cr-fatal:  forall CR => \"CP/R\"\n\
         idp:       IDP(CP, CR)\n",
    )?;
    print!("\n{}", session.run(&spec)?);

    Ok(())
}
