//! Quickstart: build a fault tree, ask BFL questions about it.
//!
//! Run with: `cargo run --example quickstart`

use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the fault tree of the paper's Fig. 1: existence of COVID-19
    // pathogens (CP) or a COVID-19 reservoir (CR) on the workplace.
    let mut builder = FaultTreeBuilder::new();
    builder.basic_events(["IW", "H3", "IT", "H2"])?;
    builder.gate("CP", GateType::And, ["IW", "H3"])?;
    builder.gate("CR", GateType::And, ["IT", "H2"])?;
    builder.gate("CP/R", GateType::Or, ["CP", "CR"])?;
    let tree = builder.build("CP/R")?;

    let mut mc = ModelChecker::new(&tree);

    // Layer-2 query: does the failure of CP always lead to the top event?
    let q = parse_query("forall CP => \"CP/R\"")?;
    println!("forall CP => CP/R          : {}", mc.check_query(&q)?);

    // Layer-1 formula checked against a concrete status vector: is
    // {IW, H3} a minimal cut set?
    let phi = parse_formula("MCS(\"CP/R\")")?;
    let b = StatusVector::from_failed_names(&tree, &["IW", "H3"]);
    println!("(IW, H3) is an MCS         : {}", mc.holds(&b, &phi)?);

    // Enumerate all minimal cut sets and path sets.
    println!("minimal cut sets           : {:?}", mc.minimal_cut_sets("CP/R")?);
    println!("minimal path sets          : {:?}", mc.minimal_path_sets("CP/R")?);

    // What-if scenario via evidence: the MCSs given that H2 cannot occur.
    let phi = parse_formula("MCS(\"CP/R\")[H2 := 0]")?;
    let vectors = mc.satisfying_vectors(&phi)?;
    println!("MCS given H2 impossible    : {:?}", mc.vectors_to_failed_sets(&vectors));

    Ok(())
}
