//! Counterexample generation (Section VI): Table I reproduced with
//! failure-propagation renderings.
//!
//! Run with: `cargo run --example counterexamples`

use bfl::logic::patterns::{table1_rows, table1_tree};
use bfl::logic::render;
use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = table1_tree();
    println!("Tree of Section VI: e1 = AND(e2, e3), e3 = OR(e4, e5)");
    println!("status vectors are ordered (e2, e4, e5)\n");

    for (i, row) in table1_rows().iter().enumerate() {
        let mut mc = ModelChecker::new(&tree);
        if row.needs_support_scope {
            mc.set_minimality_scope(MinimalityScope::FormulaSupport);
        }
        println!("── Table I, row {} ── {} ──", i + 1, row.pattern.name());
        println!("χ = {}", row.formula);
        println!(
            "example vector b = {} (b ⊨ χ: {})",
            row.example,
            mc.holds(&row.example, &row.formula)?
        );
        match counterexample(&mut mc, &row.example, &row.formula)? {
            Counterexample::Found(v) => {
                println!("Algorithm 4 counterexample b' = {v}");
                println!(
                    "paper's counterexample        = {} (both valid per Def. 7: {} / {})",
                    row.paper_counterexample,
                    is_valid_counterexample(&mut mc, &row.example, &v, &row.formula)?,
                    is_valid_counterexample(
                        &mut mc,
                        &row.example,
                        &row.paper_counterexample,
                        &row.formula
                    )?
                );
                println!("{}", render::counterexample_report(&tree, &row.example, &v));
            }
            other => println!("no counterexample: {other:?}"),
        }
    }

    // The Section VI warm-up on Fig. 1: {IW, H3, IT} is a cut set but not
    // an MCS; the counterexample is the MCS {IW, H3} contained in it.
    let fig1 = bfl::ft::corpus::fig1();
    let mut mc = ModelChecker::new(&fig1);
    let b = StatusVector::from_failed_names(&fig1, &["IW", "H3", "IT"]);
    let phi = parse_formula("MCS(\"CP/R\")")?;
    println!("── Section VI warm-up on Fig. 1 ──");
    println!("χ = {phi}, b fails {{IW, H3, IT}}");
    if let Counterexample::Found(v) = counterexample(&mut mc, &b, &phi)? {
        println!(
            "counterexample fails {{{}}}",
            v.failed_names(&fig1).join(", ")
        );
        println!("{}", render::counterexample_report(&fig1, &b, &v));
    }
    Ok(())
}
