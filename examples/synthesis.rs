//! Fault-tree synthesis (Section V-E): find a tree `T` such that
//! `b, T ⊨ χ` for a given vector and formula.
//!
//! Run with: `cargo run --example synthesis`

use bfl::ft::galileo;
use bfl::logic::synthesis::{synthesize, SynthesisConfig};
use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Specification: over basic events {sensor, valve, operator}, the
    // vector "sensor and valve failed, operator fine" must be a *minimal*
    // cut set of the top gate, and the operator alone must not be one.
    let bes = ["sensor", "valve", "operator"];
    let b = StatusVector::from_bits([true, true, false]);
    let phi = parse_formula("MCS(top) & !MCS(operator)")?;

    println!("searching for T with b = {b} (over {bes:?}) such that b, T ⊨ {phi}");
    match synthesize(&bes, &b, &phi, &SynthesisConfig::default())? {
        Some(tree) => {
            println!(
                "\nfound a witness tree:\n{}",
                galileo::to_galileo(&tree, None)
            );
            let mut mc = ModelChecker::new(&tree);
            println!("verification: b ⊨ χ = {}", mc.holds(&b, &phi)?);
            println!(
                "MCS(top) of the synthesized tree: {:?}",
                mc.minimal_cut_sets("top")?
            );
        }
        None => println!("no witness found within the search budget"),
    }

    // A second specification exercising a layer-1 implication plus
    // evidence: the failure of the sensor must imply the top even when
    // the valve is repaired.
    let phi2 = parse_formula("(sensor => top)[valve := 0] & sensor & top")?;
    let b2 = StatusVector::from_bits([true, false, false]);
    println!("\nsecond spec: b = {b2}, χ = {phi2}");
    match synthesize(&bes, &b2, &phi2, &SynthesisConfig::default())? {
        Some(tree) => {
            println!("found:\n{}", galileo::to_galileo(&tree, None));
        }
        None => println!("no witness found within the search budget"),
    }
    Ok(())
}
