//! The full COVID-19 case study of Sections IV and VII: all nine
//! properties through one `AnalysisSession`, with the same analysis
//! narrative as the paper.
//!
//! The layer-2 verdicts run as one batch (`session.run`), sharing BDD
//! translations across properties exactly as Algorithm 1 intends; the
//! enumeration-shaped properties (P5–P7) use the session's satisfaction
//! and path-set methods.
//!
//! Run with: `cargo run --example covid_case_study`

use bfl::prelude::*;

fn show_sets(label: &str, sets: &[Vec<String>]) {
    println!("{label} ({} sets):", sets.len());
    for s in sets {
        println!("    {{{}}}", s.join(", "));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = AnalysisSession::new(bfl::ft::corpus::covid());
    let tree = session.tree_arc();
    println!(
        "COVID-19 fault tree (Fig. 2): {} basic events, {} gates, top = {}\n",
        tree.num_basic_events(),
        tree.num_gates(),
        tree.name(tree.top())
    );

    // The layer-2 verdicts as one batch: labels, verdicts, witnesses and
    // per-query statistics in one structured report.
    let spec = Spec::parse(
        "P1: forall IS => MoT\n\
         P2: forall MoT => H1 | H2 | H3 | H4 | H5\n\
         P3: forall H4 => IWoS\n\
         P4: forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS\n\
         P8: IDP(CIO, CIS)\n\
         P9: SUP(PP)\n",
    )?;
    print!("{}", session.run(&spec)?);

    // Property 1, the narrative detail: which MCSs involve the surface?
    let phi = parse_formula("MCS(MoT) & IS")?;
    let vectors = session.satisfying_vectors(&phi)?;
    show_sets(
        "\nP1  MCS(MoT) & IS",
        &session.vectors_to_failed_sets(&vectors),
    );

    // Property 2: droplet/airborne transmission needs no human error.
    println!("P2  (droplet/airborne transmission needs no human error)");

    // Property 4: how many MCSs do require a human error?
    let phi4 = parse_formula(
        "MCS(IWoS) & H1 | MCS(IWoS) & H2 | MCS(IWoS) & H3 | MCS(IWoS) & H4 | MCS(IWoS) & H5",
    )?;
    println!(
        "P4  MCSs requiring a human error: {}",
        session.count_satisfying(&phi4)?
    );

    // Property 5 ---------------------------------------------------------
    let phi5 = parse_formula("MCS(IWoS) & H4")?;
    let vectors = session.satisfying_vectors(&phi5)?;
    show_sets(
        "P5  MCS(IWoS) & H4",
        &session.vectors_to_failed_sets(&vectors),
    );

    // Property 6 ---------------------------------------------------------
    // The evidence list covers every basic event — a what-if scenario on
    // a prepared query, applied by BDD restriction rather than by
    // wrapping 13 evidence operators around the formula and recompiling.
    let humans = ["H1", "H2", "H3", "H4", "H5"];
    let prepared6 = session.prepare(&parse_query("exists MPS(IWoS)")?)?;
    let mut scenario6 = Scenario::named("no human error, everything else failed");
    for h in humans {
        scenario6 = scenario6.bind(h, false);
    }
    for &be in tree.basic_events() {
        let name = tree.name(be);
        if !humans.contains(&name) {
            scenario6 = scenario6.bind(name, true);
        }
    }
    println!(
        "P6  exists MPS(IWoS)[H1..H5 := 0, rest := 1]: {}",
        prepared6.eval(&scenario6)?.holds
    );
    println!("    (avoiding all five human errors prevents the TLE, but not minimally;");
    println!("     the minimal ways within the human errors are {{H1}} and {{H2, H3}})");

    // Property 7 ---------------------------------------------------------
    let mps = session.minimal_path_sets("IWoS")?;
    show_sets("P7  MPS(IWoS)", &mps);

    // Property 8, the narrative detail: the shared dependency.
    println!(
        "P8  IBE(CIO) = {:?}, IBE(CIS) = {:?}",
        session.influencing_basic_events(&parse_formula("CIO")?)?,
        session.influencing_basic_events(&parse_formula("CIS")?)?
    );

    // Property 9 ---------------------------------------------------------
    println!("P9  (PP is not superfluous: it must not be removed from the tree)");

    // The batch-level statistics show the cache sharing at work.
    let stats = session.stats();
    println!(
        "\nsession stats: {} BDD arena nodes, {} cache hits / {} misses",
        stats.arena_nodes, stats.cache_hits, stats.cache_misses
    );
    Ok(())
}
