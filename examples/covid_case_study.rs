//! The full COVID-19 case study of Sections IV and VII: all nine
//! properties, with the same analysis narrative as the paper.
//!
//! Run with: `cargo run --example covid_case_study`

use bfl::prelude::*;

fn show_sets(label: &str, sets: &[Vec<String>]) {
    println!("{label} ({} sets):", sets.len());
    for s in sets {
        println!("    {{{}}}", s.join(", "));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = bfl::ft::corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    println!(
        "COVID-19 fault tree (Fig. 2): {} basic events, {} gates, top = {}\n",
        tree.num_basic_events(),
        tree.num_gates(),
        tree.name(tree.top())
    );

    // Property 1 ---------------------------------------------------------
    let q1 = parse_query("forall IS => MoT")?;
    println!("P1  forall IS => MoT: {}", mc.check_query(&q1)?);
    let phi = parse_formula("MCS(MoT) & IS")?;
    let vectors = mc.satisfying_vectors(&phi)?;
    show_sets("    MCS(MoT) & IS", &mc.vectors_to_failed_sets(&vectors));

    // Property 2 ---------------------------------------------------------
    let q2 = parse_query("forall MoT => H1 | H2 | H3 | H4 | H5")?;
    println!("P2  forall MoT => any human error: {}", mc.check_query(&q2)?);
    println!("    (droplet/airborne transmission needs no human error)");

    // Property 3 ---------------------------------------------------------
    let q3 = parse_query("forall H4 => IWoS")?;
    println!("P3  forall H4 => IWoS: {}", mc.check_query(&q3)?);

    // Property 4 ---------------------------------------------------------
    let q4 = parse_query("forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS")?;
    println!("P4  forall VOT(>=2; H1..H5) => IWoS: {}", mc.check_query(&q4)?);
    let phi4 = parse_formula(
        "MCS(IWoS) & H1 | MCS(IWoS) & H2 | MCS(IWoS) & H3 | MCS(IWoS) & H4 | MCS(IWoS) & H5",
    )?;
    println!(
        "    MCSs requiring a human error: {}",
        mc.count_satisfying(&phi4)?
    );

    // Property 5 ---------------------------------------------------------
    let phi5 = parse_formula("MCS(IWoS) & H4")?;
    let vectors = mc.satisfying_vectors(&phi5)?;
    show_sets("P5  MCS(IWoS) & H4", &mc.vectors_to_failed_sets(&vectors));

    // Property 6 ---------------------------------------------------------
    let humans = ["H1", "H2", "H3", "H4", "H5"];
    let mut phi6 = parse_formula("MPS(IWoS)")?;
    for h in humans {
        phi6 = phi6.with_evidence(h, false);
    }
    for &be in tree.basic_events() {
        let name = tree.name(be);
        if !humans.contains(&name) {
            phi6 = phi6.with_evidence(name, true);
        }
    }
    println!(
        "P6  exists MPS(IWoS)[H1..H5 := 0, rest := 1]: {}",
        mc.check_query(&Query::Exists(phi6))?
    );
    println!("    (avoiding all five human errors prevents the TLE, but not minimally;");
    println!("     the minimal ways within the human errors are {{H1}} and {{H2, H3}})");

    // Property 7 ---------------------------------------------------------
    let mps = mc.minimal_path_sets("IWoS")?;
    show_sets("P7  MPS(IWoS)", &mps);

    // Property 8 ---------------------------------------------------------
    let q8 = parse_query("IDP(CIO, CIS)")?;
    println!("P8  IDP(CIO, CIS): {}", mc.check_query(&q8)?);
    println!(
        "    IBE(CIO) = {:?}, IBE(CIS) = {:?}",
        mc.influencing_basic_events(&parse_formula("CIO")?)?,
        mc.influencing_basic_events(&parse_formula("CIS")?)?
    );

    // Property 9 ---------------------------------------------------------
    let q9 = parse_query("SUP(PP)")?;
    println!("P9  SUP(PP): {}", mc.check_query(&q9)?);
    println!("    (PP is not superfluous: it must not be removed from the tree)");

    Ok(())
}
