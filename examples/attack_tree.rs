//! BFL on an *attack tree*: the same formalism read through a security
//! lens (Section V-A of the paper notes BDD-based analysis carries over
//! to attack trees). Minimal cut sets become *attack vectors*, minimal
//! path sets become *defence sets*, and the evidence operator models
//! hardening measures.
//!
//! Run with: `cargo run --example attack_tree`

use bfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = bfl::ft::corpus::attack_tree();
    let mut mc = ModelChecker::new(&tree);
    println!(
        "attack tree `{}`: {} attacker actions, {} goals\n",
        tree.name(tree.top()),
        tree.num_basic_events(),
        tree.num_gates()
    );

    // Attack vectors (minimal cut sets).
    println!("attack vectors (MCS):");
    for s in mc.minimal_cut_sets("Compromise")? {
        println!("  {{{}}}", s.join(", "));
    }

    // Defence sets (minimal path sets): keeping these actions blocked
    // provably prevents the compromise.
    println!("\ndefence sets (MPS):");
    for s in mc.minimal_path_sets("Compromise")? {
        println!("  {{{}}}", s.join(", "));
    }

    // Hardening what-if: if user-awareness training makes `UserClicks`
    // impossible, which attack vectors survive?
    let phi = parse_formula("MCS(Compromise)[UserClicks := 0]")?;
    let vectors = mc.satisfying_vectors(&phi)?;
    println!("\nattack vectors after blocking UserClicks:");
    for v in &vectors {
        println!("  {{{}}}", v.failed_names(&tree).join(", "));
    }

    // Does every external attack require getting entry first?
    let q = parse_query("forall External => GainEntry")?;
    println!("\nforall External => GainEntry : {}", mc.check_query(&q)?);

    // Are the insider and external campaigns independent? (No: both can
    // hinge on the same social-engineering click.)
    let q = parse_query("IDP(Insider, External)")?;
    println!("IDP(Insider, External)        : {}", mc.check_query(&q)?);
    let shared: Vec<String> = {
        let a = mc.influencing_basic_events(&parse_formula("Insider")?)?;
        let b = mc.influencing_basic_events(&parse_formula("External")?)?;
        a.into_iter().filter(|e| b.contains(e)).collect()
    };
    println!("shared influencing actions    : {shared:?}");

    // A failed assumption and its counterexample: the analyst believes
    // {CraftMail, UserClicks} alone compromises the vault.
    let b = StatusVector::from_failed_names(&tree, &["CraftMail", "UserClicks"]);
    let phi = parse_formula("Compromise")?;
    if !mc.holds(&b, &phi)? {
        println!("\n{{CraftMail, UserClicks}} alone does NOT compromise;");
        if let Counterexample::Found(v) = counterexample(&mut mc, &b, &phi)? {
            println!(
                "Algorithm 4 completes it to: {{{}}}",
                v.failed_names(&tree).join(", ")
            );
        }
    }
    Ok(())
}
