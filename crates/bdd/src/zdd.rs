//! Zero-suppressed decision diagrams (ZDDs) for families of sets —
//! the classical representation of cut-set collections (Minato 1993;
//! Coudert–Madre; Rauzy's fault-tree algorithms, reference \[5\] of the
//! paper).
//!
//! A [`Zdd`] node `(v, lo, hi)` represents the family
//! `lo ∪ {s ∪ {v} | s ∈ hi}`; the terminal `∅` is the empty family and
//! `{∅}` the family containing only the empty set. The *zero-suppression*
//! rule (`hi = ∅` ⇒ node ≡ `lo`) makes sparse families compact, which is
//! exactly the shape of minimal-cut-set collections.
//!
//! The operations provided are the ones needed by the bottom-up MCS
//! engine in `bfl-fault-tree` (Rauzy 1993): [`union`](ZddManager::union),
//! [`product`](ZddManager::product) (pairwise unions of member sets),
//! [`minimal`](ZddManager::minimal) (drop supersets) and its workhorse
//! [`no_supersets`](ZddManager::no_supersets), plus counting and
//! enumeration.
//!
//! # Example
//!
//! ```
//! use bfl_bdd::{Var, ZddManager};
//!
//! let mut z = ZddManager::new(3);
//! // {{x0}, {x1, x2}}
//! let a = z.singleton(Var(0));
//! let b = z.singleton(Var(1));
//! let c = z.singleton(Var(2));
//! let bc = z.product(b, c);
//! let fam = z.union(a, bc);
//! assert_eq!(z.count(fam), 2);
//! // Adding the superset {x0, x1} and minimising removes it again.
//! let ab = z.product(a, b);
//! let bigger = z.union(fam, ab);
//! let min = z.minimal(bigger);
//! assert_eq!(min, fam);
//! ```

use std::collections::HashMap;

use crate::manager::{Var, TERMINAL_LEVEL};

/// Handle to a ZDD node owned by a [`ZddManager`]. Equal handles of the
/// same manager represent equal families (canonicity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Zdd(u32);

impl Zdd {
    /// The raw node index.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Is this the empty family `∅`?
    pub fn is_empty_family(self) -> bool {
        self.0 == 0
    }

    /// Is this the unit family `{∅}`?
    pub fn is_unit_family(self) -> bool {
        self.0 == 1
    }

    fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy)]
struct ZNode {
    var: Var,
    /// Sub-family in which `var` is absent.
    lo: Zdd,
    /// Sub-family to whose members `var` is added.
    hi: Zdd,
}

/// Operation tags for the binary cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ZOp {
    Union,
    Intersection,
    Difference,
    Product,
    NoSupersets,
}

/// A manager for zero-suppressed decision diagrams over the variable
/// order `Var(0) < Var(1) < …` (same level discipline as [`crate::Manager`]).
#[derive(Debug, Clone)]
pub struct ZddManager {
    nodes: Vec<ZNode>,
    unique: HashMap<(u32, u32, u32), u32>,
    cache: HashMap<(ZOp, u32, u32), u32>,
    minimal_cache: HashMap<u32, u32>,
    num_vars: u32,
}

impl ZddManager {
    /// Creates a manager over `num_vars` variables.
    pub fn new(num_vars: u32) -> Self {
        let terminal = |b: u32| ZNode {
            var: Var(TERMINAL_LEVEL),
            lo: Zdd(b),
            hi: Zdd(b),
        };
        ZddManager {
            nodes: vec![terminal(0), terminal(1)],
            unique: HashMap::new(),
            cache: HashMap::new(),
            minimal_cache: HashMap::new(),
            num_vars,
        }
    }

    /// The empty family `∅`.
    pub fn empty(&self) -> Zdd {
        Zdd(0)
    }

    /// The unit family `{∅}`.
    pub fn unit(&self) -> Zdd {
        Zdd(1)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The family `{{v}}`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is undeclared.
    pub fn singleton(&mut self, v: Var) -> Zdd {
        assert!(v.0 < self.num_vars, "undeclared variable {v}");
        let unit = self.unit();
        let empty = self.empty();
        self.mk(v, empty, unit)
    }

    fn level(&self, f: Zdd) -> u32 {
        self.nodes[f.0 as usize].var.0
    }

    fn node(&self, f: Zdd) -> ZNode {
        self.nodes[f.0 as usize]
    }

    fn mk(&mut self, var: Var, lo: Zdd, hi: Zdd) -> Zdd {
        // Zero-suppression: a node whose hi-branch is the empty family
        // contributes nothing and collapses to `lo`.
        if hi.is_empty_family() {
            return lo;
        }
        debug_assert!(
            var.0 < self.level(lo) && var.0 < self.level(hi),
            "variable order violated at {var}"
        );
        let key = (var.0, lo.0, hi.0);
        if let Some(&id) = self.unique.get(&key) {
            return Zdd(id);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(ZNode { var, lo, hi });
        self.unique.insert(key, id);
        Zdd(id)
    }

    fn cached(&self, op: ZOp, a: Zdd, b: Zdd) -> Option<Zdd> {
        self.cache.get(&(op, a.0, b.0)).map(|&id| Zdd(id))
    }

    fn put(&mut self, op: ZOp, a: Zdd, b: Zdd, r: Zdd) {
        self.cache.insert((op, a.0, b.0), r.0);
    }

    /// Family union `a ∪ b`.
    pub fn union(&mut self, a: Zdd, b: Zdd) -> Zdd {
        if a == b || b.is_empty_family() {
            return a;
        }
        if a.is_empty_family() {
            return b;
        }
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(r) = self.cached(ZOp::Union, a, b) {
            return r;
        }
        let (top, (a0, a1), (b0, b1)) = self.align(a, b);
        let lo = self.union(a0, b0);
        let hi = self.union(a1, b1);
        let r = self.mk(top, lo, hi);
        self.put(ZOp::Union, a, b, r);
        r
    }

    /// Family intersection `a ∩ b`.
    pub fn intersection(&mut self, a: Zdd, b: Zdd) -> Zdd {
        if a == b {
            return a;
        }
        if a.is_empty_family() || b.is_empty_family() {
            return self.empty();
        }
        if a.is_unit_family() {
            return if self.contains_empty(b) {
                a
            } else {
                self.empty()
            };
        }
        if b.is_unit_family() {
            return if self.contains_empty(a) {
                b
            } else {
                self.empty()
            };
        }
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(r) = self.cached(ZOp::Intersection, a, b) {
            return r;
        }
        let (top, (a0, a1), (b0, b1)) = self.align(a, b);
        let lo = self.intersection(a0, b0);
        let hi = self.intersection(a1, b1);
        let r = self.mk(top, lo, hi);
        self.put(ZOp::Intersection, a, b, r);
        r
    }

    /// Family difference `a \ b`.
    pub fn difference(&mut self, a: Zdd, b: Zdd) -> Zdd {
        if a.is_empty_family() || a == b {
            return self.empty();
        }
        if b.is_empty_family() {
            return a;
        }
        if let Some(r) = self.cached(ZOp::Difference, a, b) {
            return r;
        }
        let (top, (a0, a1), (b0, b1)) = self.align(a, b);
        let r = if a1.is_empty_family() && self.level(a) > top.0 {
            // `a` does not mention `top`: only b0 can intersect it.
            self.difference(a0, b0)
        } else {
            let lo = self.difference(a0, b0);
            let hi = self.difference(a1, b1);
            self.mk(top, lo, hi)
        };
        self.put(ZOp::Difference, a, b, r);
        r
    }

    /// Family product `{ s ∪ t | s ∈ a, t ∈ b }` (Minato's multiply) —
    /// the AND-gate composition of cut-set families.
    pub fn product(&mut self, a: Zdd, b: Zdd) -> Zdd {
        if a.is_empty_family() || b.is_empty_family() {
            return self.empty();
        }
        if a.is_unit_family() {
            return b;
        }
        if b.is_unit_family() {
            return a;
        }
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(r) = self.cached(ZOp::Product, a, b) {
            return r;
        }
        let (top, (a0, a1), (b0, b1)) = self.align(a, b);
        // (a0 ∪ v·a1) × (b0 ∪ v·b1)
        //   = a0×b0 ∪ v·(a1×b1 ∪ a1×b0 ∪ a0×b1)   (v·v = v)
        let lo = self.product(a0, b0);
        let p11 = self.product(a1, b1);
        let p10 = self.product(a1, b0);
        let p01 = self.product(a0, b1);
        let hi01 = self.union(p10, p01);
        let hi = self.union(p11, hi01);
        let r = self.mk(top, lo, hi);
        self.put(ZOp::Product, a, b, r);
        r
    }

    /// Removes from `a` every set that is a (non-strict) superset of some
    /// set in `b` — Rauzy's *subsuming* difference.
    pub fn no_supersets(&mut self, a: Zdd, b: Zdd) -> Zdd {
        // Empty `a`, subsuming-everything `b` (∅ ∈ b ⇒ every set ⊇ ∅ once
        // b = {∅}), or `a = b` (each set subsumes itself) all yield ∅.
        if a.is_empty_family() || b.is_unit_family() || a == b {
            return self.empty();
        }
        if b.is_empty_family() {
            return a;
        }
        if a.is_unit_family() {
            // ∅ ⊇ t only for t = ∅.
            return if self.contains_empty(b) {
                self.empty()
            } else {
                a
            };
        }
        if let Some(r) = self.cached(ZOp::NoSupersets, a, b) {
            return r;
        }
        let la = self.level(a);
        let lb = self.level(b);
        let r = if la < lb {
            // Sets of `a` may contain the top var, sets of `b` do not
            // mention it: s (⊇ t) iff s∖{v} ⊇ t.
            let an = self.node(a);
            let lo = self.no_supersets(an.lo, b);
            let hi = self.no_supersets(an.hi, b);
            self.mk(an.var, lo, hi)
        } else if la > lb {
            // `b`'s sets containing the top var can never be subsumed by
            // `a`'s sets (which lack it); only b.lo matters.
            let bn = self.node(b);
            self.no_supersets(a, bn.lo)
        } else {
            let an = self.node(a);
            let bn = self.node(b);
            // Without v: compare against b.lo only.
            let lo = self.no_supersets(an.lo, bn.lo);
            // With v: s∪{v} ⊇ t∪{v} iff s ⊇ t; s∪{v} ⊇ t (t ∈ b.lo) iff s ⊇ t.
            let h1 = self.no_supersets(an.hi, bn.hi);
            let hi = self.no_supersets(h1, bn.lo);
            self.mk(an.var, lo, hi)
        };
        self.put(ZOp::NoSupersets, a, b, r);
        r
    }

    /// The minimal sets of `a`: members with no proper subset in `a`
    /// (Rauzy's `minsol` on families).
    pub fn minimal(&mut self, a: Zdd) -> Zdd {
        if a.is_terminal() {
            return a;
        }
        if let Some(&id) = self.minimal_cache.get(&a.0) {
            return Zdd(id);
        }
        let n = self.node(a);
        let m0 = self.minimal(n.lo);
        let m1 = self.minimal(n.hi);
        // A set s∪{v} survives iff s is minimal in hi and not a superset
        // of anything in lo's minimal sets.
        let h = self.no_supersets(m1, m0);
        let r = self.mk(n.var, m0, h);
        self.minimal_cache.insert(a.0, r.0);
        r
    }

    /// Whether `∅ ∈ a`.
    pub fn contains_empty(&self, a: Zdd) -> bool {
        let mut cur = a;
        while !cur.is_terminal() {
            cur = self.node(cur).lo;
        }
        cur.is_unit_family()
    }

    /// Number of member sets.
    ///
    /// # Panics
    ///
    /// Panics on `u128` overflow.
    pub fn count(&self, a: Zdd) -> u128 {
        let mut memo = HashMap::new();
        self.count_rec(a, &mut memo)
    }

    fn count_rec(&self, a: Zdd, memo: &mut HashMap<u32, u128>) -> u128 {
        if a.is_empty_family() {
            return 0;
        }
        if a.is_unit_family() {
            return 1;
        }
        if let Some(&c) = memo.get(&a.0) {
            return c;
        }
        let n = self.node(a);
        let c = self
            .count_rec(n.lo, memo)
            .checked_add(self.count_rec(n.hi, memo))
            .unwrap_or_else(|| panic!("family count overflow: more than u128::MAX minimal sets"));
        memo.insert(a.0, c);
        c
    }

    /// Enumerates all member sets, each as ascending variables.
    pub fn sets(&self, a: Zdd) -> Vec<Vec<Var>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.sets_rec(a, &mut prefix, &mut out);
        out
    }

    fn sets_rec(&self, a: Zdd, prefix: &mut Vec<Var>, out: &mut Vec<Vec<Var>>) {
        if a.is_empty_family() {
            return;
        }
        if a.is_unit_family() {
            out.push(prefix.clone());
            return;
        }
        let n = self.node(a);
        self.sets_rec(n.lo, prefix, out);
        prefix.push(n.var);
        self.sets_rec(n.hi, prefix, out);
        prefix.pop();
    }

    /// Total nodes allocated (diagnostics).
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Decomposes `a` and `b` at their top-most variable.
    fn align(&self, a: Zdd, b: Zdd) -> (Var, (Zdd, Zdd), (Zdd, Zdd)) {
        let la = self.level(a);
        let lb = self.level(b);
        let top = Var(la.min(lb));
        let split = |f: Zdd, lf: u32, this: &Self| {
            if lf == top.0 {
                let n = this.node(f);
                (n.lo, n.hi)
            } else {
                (f, this.empty())
            }
        };
        (top, split(a, la, self), split(b, lb, self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Brute-force family representation for oracle testing.
    type Family = BTreeSet<Vec<u32>>;

    fn to_family(z: &ZddManager, f: Zdd) -> Family {
        z.sets(f)
            .into_iter()
            .map(|s| s.into_iter().map(|v| v.0).collect())
            .collect()
    }

    /// Builds a ZDD from an explicit family.
    fn from_family(z: &mut ZddManager, fam: &[&[u32]]) -> Zdd {
        let mut acc = z.empty();
        for s in fam {
            let mut set = z.unit();
            let mut vars: Vec<u32> = s.to_vec();
            vars.sort_unstable();
            for &v in &vars {
                let single = z.singleton(Var(v));
                set = z.product(set, single);
            }
            acc = z.union(acc, set);
        }
        acc
    }

    #[test]
    fn terminals() {
        let z = ZddManager::new(2);
        assert_eq!(z.count(z.empty()), 0);
        assert_eq!(z.count(z.unit()), 1);
        assert!(z.contains_empty(z.unit()));
        assert!(!z.contains_empty(z.empty()));
    }

    #[test]
    fn union_intersection_difference() {
        let mut z = ZddManager::new(4);
        let a = from_family(&mut z, &[&[0], &[1, 2], &[3]]);
        let b = from_family(&mut z, &[&[1, 2], &[0, 3]]);
        let u = z.union(a, b);
        assert_eq!(
            to_family(&z, u),
            Family::from([vec![0], vec![1, 2], vec![3], vec![0, 3]])
        );
        let i = z.intersection(a, b);
        assert_eq!(to_family(&z, i), Family::from([vec![1, 2]]));
        let d = z.difference(a, b);
        assert_eq!(to_family(&z, d), Family::from([vec![0], vec![3]]));
    }

    #[test]
    fn product_is_pairwise_union() {
        let mut z = ZddManager::new(4);
        let a = from_family(&mut z, &[&[0], &[1]]);
        let b = from_family(&mut z, &[&[2], &[3]]);
        let p = z.product(a, b);
        assert_eq!(
            to_family(&z, p),
            Family::from([vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]])
        );
        // Overlapping elements merge (v·v = v).
        let c = from_family(&mut z, &[&[0, 2]]);
        let q = z.product(a, c);
        assert_eq!(to_family(&z, q), Family::from([vec![0, 2], vec![0, 1, 2]]));
    }

    #[test]
    fn minimal_removes_supersets() {
        let mut z = ZddManager::new(4);
        let fam = from_family(&mut z, &[&[0], &[0, 1], &[2, 3], &[1, 2, 3], &[1]]);
        let min = z.minimal(fam);
        assert_eq!(
            to_family(&z, min),
            Family::from([vec![0], vec![1], vec![2, 3]])
        );
    }

    #[test]
    fn no_supersets_semantics() {
        let mut z = ZddManager::new(4);
        let a = from_family(&mut z, &[&[0, 1], &[2], &[1, 3]]);
        let b = from_family(&mut z, &[&[1]]);
        // {0,1} ⊇ {1} and {1,3} ⊇ {1}: both removed.
        let r = z.no_supersets(a, b);
        assert_eq!(to_family(&z, r), Family::from([vec![2]]));
        // Self-subsumption empties the family.
        let s = z.no_supersets(a, a);
        assert!(s.is_empty_family());
    }

    #[test]
    fn brute_force_cross_check() {
        // Randomised-ish exhaustive check over tiny universes.
        let universe = 4u32;
        let all_sets: Vec<Vec<u32>> = (0..(1u32 << universe))
            .map(|m| (0..universe).filter(|&v| (m >> v) & 1 == 1).collect())
            .collect();
        for seed in 0..40u64 {
            // Build two pseudo-random families.
            let pick = |salt: u64| -> Vec<&[u32]> {
                all_sets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| {
                        (seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt) >> (i % 13)) & 1 == 1
                    })
                    .map(|(_, s)| s.as_slice())
                    .collect()
            };
            let fa = pick(1);
            let fb = pick(2);
            let mut z = ZddManager::new(universe);
            let a = from_family(&mut z, &fa);
            let b = from_family(&mut z, &fb);
            let sa: Family = fa.iter().map(|s| s.to_vec()).collect();
            let sb: Family = fb.iter().map(|s| s.to_vec()).collect();

            let u = z.union(a, b);
            assert_eq!(to_family(&z, u), sa.union(&sb).cloned().collect::<Family>());
            let i = z.intersection(a, b);
            assert_eq!(
                to_family(&z, i),
                sa.intersection(&sb).cloned().collect::<Family>()
            );
            let d = z.difference(a, b);
            assert_eq!(
                to_family(&z, d),
                sa.difference(&sb).cloned().collect::<Family>()
            );

            let p = z.product(a, b);
            let mut expect_p = Family::new();
            for s in &sa {
                for t in &sb {
                    let mut st: Vec<u32> = s
                        .iter()
                        .chain(t.iter())
                        .copied()
                        .collect::<BTreeSet<_>>()
                        .into_iter()
                        .collect();
                    st.sort_unstable();
                    expect_p.insert(st);
                }
            }
            assert_eq!(to_family(&z, p), expect_p);

            let ns = z.no_supersets(a, b);
            let expect_ns: Family = sa
                .iter()
                .filter(|s| !sb.iter().any(|t| t.iter().all(|v| s.contains(v))))
                .cloned()
                .collect();
            assert_eq!(to_family(&z, ns), expect_ns, "seed {seed}");

            let m = z.minimal(a);
            let expect_m: Family = sa
                .iter()
                .filter(|s| {
                    !sa.iter()
                        .any(|t| t.len() < s.len() && t.iter().all(|v| s.contains(v)))
                })
                .cloned()
                .collect();
            assert_eq!(to_family(&z, m), expect_m, "seed {seed}");

            assert_eq!(z.count(a), sa.len() as u128);
        }
    }

    #[test]
    fn canonicity() {
        let mut z = ZddManager::new(3);
        let a = from_family(&mut z, &[&[0, 1], &[2]]);
        let b = from_family(&mut z, &[&[2], &[1, 0]]);
        assert_eq!(a, b);
    }
}
