//! Boolean operations: `ite`, the binary `apply` family, negation,
//! cofactoring, quantification, renaming and composition.

use std::collections::HashMap;

use crate::manager::{Bdd, Manager, Op, Var, TERMINAL_LEVEL};

impl Manager {
    /// If-then-else: computes `(f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// This is the workhorse of the `apply` family (Brace–Rudell–Bryant).
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if let Some(r) = self.ite_cache_get(f, g, h) {
            return r;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        debug_assert_ne!(top, TERMINAL_LEVEL);
        let v = self.var_at_level(top);
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(v, low, high);
        self.ite_cache_put(f, g, h, r);
        r
    }

    /// The two cofactors of `f` with respect to the variable `v`, where `v`
    /// is at or above the root level of `f`.
    #[inline]
    pub(crate) fn cofactors(&self, f: Bdd, v: Var) -> (Bdd, Bdd) {
        let node = self.node(f);
        if node.var == v {
            (node.low, node.high)
        } else {
            (f, f)
        }
    }

    /// Logical negation `¬f`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        if f.is_true() {
            return self.bot();
        }
        if f.is_false() {
            return self.top();
        }
        if let Some(r) = self.not_cache_get(f) {
            return r;
        }
        let node = self.node(f);
        let low = self.not(node.low);
        let high = self.not(node.high);
        let r = self.mk(node.var, low, high);
        self.not_cache_put(f, r);
        // Negation is an involution; prime the cache in both directions.
        self.not_cache_put(r, f);
        r
    }

    fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Bdd {
        if let Some(r) = self.apply_terminal(op, f, g) {
            return r;
        }
        // All three cached ops are commutative; normalise the key.
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        if let Some(r) = self.op_cache_get(op, f, g) {
            return r;
        }
        let top = self.level(f).min(self.level(g));
        let v = self.var_at_level(top);
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let low = self.apply(op, f0, g0);
        let high = self.apply(op, f1, g1);
        let r = self.mk(v, low, high);
        self.op_cache_put(op, f, g, r);
        r
    }

    fn apply_terminal(&self, op: Op, f: Bdd, g: Bdd) -> Option<Bdd> {
        match op {
            Op::And => {
                if f.is_false() || g.is_false() {
                    Some(self.bot())
                } else if f.is_true() {
                    Some(g)
                } else if g.is_true() || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Or => {
                if f.is_true() || g.is_true() {
                    Some(self.top())
                } else if f.is_false() {
                    Some(g)
                } else if g.is_false() || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Xor => {
                if f == g {
                    Some(self.bot())
                } else if f.is_false() {
                    Some(g)
                } else if g.is_false() {
                    Some(f)
                } else {
                    None
                }
            }
        }
    }

    /// Conjunction `f ∧ g`.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(2);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let ab = m.and(a, b);
    /// assert_eq!(m.sat_count(ab, 2), 1);
    /// assert_eq!(m.and(ab, a), ab); // absorption, for free via canonicity
    /// ```
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::And, f, g)
    }

    /// Disjunction `f ∨ g`.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(2);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let f = m.or(a, b);
    /// assert_eq!(m.sat_count(f, 2), 3); // 01, 10, 11
    /// ```
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Xor, f, g)
    }

    /// Implication `f ⇒ g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Biconditional `f ≡ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Conjunction of all operands (`⊤` for an empty iterator).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = self.top();
        for f in fs {
            acc = self.and(acc, f);
        }
        acc
    }

    /// Disjunction of all operands (`⊥` for an empty iterator).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = self.bot();
        for f in fs {
            acc = self.or(acc, f);
        }
        acc
    }

    /// Restriction (cofactor) `f[v ↦ value]`: Algorithm 5.20 of Ben-Ari.
    ///
    /// This implements the semantics of the BFL evidence operators
    /// `ϕ[e↦0]` and `ϕ[e↦1]`.
    pub fn restrict(&mut self, f: Bdd, v: Var, value: bool) -> Bdd {
        let mut memo = HashMap::new();
        self.restrict_rec(f, v, value, &mut memo)
    }

    fn restrict_rec(&mut self, f: Bdd, v: Var, value: bool, memo: &mut HashMap<u32, Bdd>) -> Bdd {
        let level = self.level(f);
        if level > self.level_of(v) {
            // Terminal, or the whole sub-BDD is below v: v cannot occur.
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return r;
        }
        let node = self.node(f);
        let r = if node.var == v {
            if value {
                node.high
            } else {
                node.low
            }
        } else {
            let low = self.restrict_rec(node.low, v, value, memo);
            let high = self.restrict_rec(node.high, v, value, memo);
            self.mk(node.var, low, high)
        };
        memo.insert(f.0, r);
        r
    }

    /// Restriction by several assignments at once, applied sequentially.
    ///
    /// Equivalent to (and implemented as) [`Manager::restrict_many`]: for
    /// distinct variables simultaneous and sequential restriction agree,
    /// and for a repeated variable the *first* assignment wins in both —
    /// once restricted, the variable no longer occurs, so later
    /// assignments to it are identities. This matches the semantics of
    /// chained BFL evidence `ϕ[e↦v][e↦v′]`.
    pub fn restrict_all(&mut self, f: Bdd, assignments: &[(Var, bool)]) -> Bdd {
        self.restrict_many(f, assignments)
    }

    /// Simultaneous restriction `f[v1 ↦ b1, …, vk ↦ bk]` in a **single
    /// traversal** of the diagram, instead of one pass per variable.
    ///
    /// This is the cofactoring workhorse of scenario evaluation
    /// (evidence-as-restriction): a compiled query BDD is specialised to a
    /// whole scenario of evidence bindings at once. For a repeated
    /// variable the first assignment wins (see [`Manager::restrict_all`]);
    /// a variable outside the declared range is an identity, exactly as
    /// in single-variable [`Manager::restrict`] (which walks by level and
    /// can never meet it).
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(3);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let c = m.var(Var(2));
    /// let ab = m.and(a, b);
    /// let f = m.or(ab, c);
    /// // f[x0 ↦ 1, x2 ↦ 0] = x1, in one traversal.
    /// let r = m.restrict_many(f, &[(Var(0), true), (Var(2), false)]);
    /// assert_eq!(r, b);
    /// ```
    pub fn restrict_many(&mut self, f: Bdd, assignments: &[(Var, bool)]) -> Bdd {
        if assignments.is_empty() {
            return f;
        }
        let mut value: Vec<Option<bool>> = vec![None; self.num_vars() as usize];
        // Reverse order + overwrite ⇒ the first occurrence wins.
        for &(v, b) in assignments.iter().rev() {
            if let Some(slot) = value.get_mut(v.0 as usize) {
                *slot = Some(b);
            }
        }
        let mut memo = HashMap::new();
        self.restrict_many_rec(f, &value, &mut memo)
    }

    fn restrict_many_rec(
        &mut self,
        f: Bdd,
        value: &[Option<bool>],
        memo: &mut HashMap<u32, Bdd>,
    ) -> Bdd {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return r;
        }
        let node = self.node(f);
        let r = match value[node.var.0 as usize] {
            Some(true) => self.restrict_many_rec(node.high, value, memo),
            Some(false) => self.restrict_many_rec(node.low, value, memo),
            None => {
                let low = self.restrict_many_rec(node.low, value, memo);
                let high = self.restrict_many_rec(node.high, value, memo);
                self.mk(node.var, low, high)
            }
        };
        memo.insert(f.0, r);
        r
    }

    /// Existential quantification `∃ vars. f`.
    ///
    /// Per Theorem 5.23 of Ben-Ari:
    /// `∃v.B = Restrict(B,v,0) ∨ Restrict(B,v,1)`, lifted to sets.
    pub fn exists(&mut self, f: Bdd, vars: &[Var]) -> Bdd {
        let mask = self.var_mask(vars);
        let mut memo = HashMap::new();
        self.exists_rec(f, &mask, &mut memo)
    }

    fn exists_rec(&mut self, f: Bdd, mask: &[bool], memo: &mut HashMap<u32, Bdd>) -> Bdd {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return r;
        }
        let node = self.node(f);
        let low = self.exists_rec(node.low, mask, memo);
        let high = self.exists_rec(node.high, mask, memo);
        let r = if mask[node.var.0 as usize] {
            self.or(low, high)
        } else {
            self.mk(node.var, low, high)
        };
        memo.insert(f.0, r);
        r
    }

    /// Universal quantification `∀ vars. f`, i.e. `¬∃ vars. ¬f`.
    pub fn forall(&mut self, f: Bdd, vars: &[Var]) -> Bdd {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// Relational product `∃ vars. (f ∧ g)` computed without materialising
    /// the full conjunction — the classical `AndExists` optimisation.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: &[Var]) -> Bdd {
        let mask = self.var_mask(vars);
        let mut memo = HashMap::new();
        self.and_exists_rec(f, g, &mask, &mut memo)
    }

    fn and_exists_rec(
        &mut self,
        f: Bdd,
        g: Bdd,
        mask: &[bool],
        memo: &mut HashMap<(u32, u32), Bdd>,
    ) -> Bdd {
        if f.is_false() || g.is_false() {
            return self.bot();
        }
        if f.is_true() && g.is_true() {
            return self.top();
        }
        if f.is_true() || g.is_true() || f == g {
            let h = if f.is_true() || f == g { g } else { f };
            let mut ememo = HashMap::new();
            return self.exists_rec(h, mask, &mut ememo);
        }
        let key = if f.0 <= g.0 { (f.0, g.0) } else { (g.0, f.0) };
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let top = self.level(f).min(self.level(g));
        let v = self.var_at_level(top);
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let r = if mask[v.0 as usize] {
            let low = self.and_exists_rec(f0, g0, mask, memo);
            if low.is_true() {
                // Short-circuit: ∨ with ⊤ is ⊤.
                self.top()
            } else {
                let high = self.and_exists_rec(f1, g1, mask, memo);
                self.or(low, high)
            }
        } else {
            let low = self.and_exists_rec(f0, g0, mask, memo);
            let high = self.and_exists_rec(f1, g1, mask, memo);
            self.mk(v, low, high)
        };
        memo.insert(key, r);
        r
    }

    /// Renames variables of `f` according to `map` (the `B[V ↷ V′]` step of
    /// the paper's `MCS` translation).
    ///
    /// `map(v)` must be *strictly monotone* on the support of `f` with
    /// respect to the variable order, otherwise the rebuilt diagram would
    /// not be ordered.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the mapping is not order-preserving, and
    /// panics if a mapped variable is undeclared.
    pub fn rename(&mut self, f: Bdd, map: &dyn Fn(Var) -> Var) -> Bdd {
        let mut memo = HashMap::new();
        self.rename_rec(f, map, &mut memo)
    }

    fn rename_rec(
        &mut self,
        f: Bdd,
        map: &dyn Fn(Var) -> Var,
        memo: &mut HashMap<u32, Bdd>,
    ) -> Bdd {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return r;
        }
        let node = self.node(f);
        let low = self.rename_rec(node.low, map, memo);
        let high = self.rename_rec(node.high, map, memo);
        let v = map(node.var);
        assert!(v.0 < self.num_vars(), "rename target {v} undeclared");
        let r = self.mk(v, low, high);
        memo.insert(f.0, r);
        r
    }

    /// Functional composition: replaces variable `v` in `f` by the function
    /// `g`, i.e. computes `f[v := g] = ite(g, f[v↦1], f[v↦0])`.
    pub fn compose(&mut self, f: Bdd, v: Var, g: Bdd) -> Bdd {
        let f1 = self.restrict(f, v, true);
        let f0 = self.restrict(f, v, false);
        self.ite(g, f1, f0)
    }

    fn var_mask(&self, vars: &[Var]) -> Vec<bool> {
        let mut mask = vec![false; self.num_vars() as usize];
        for v in vars {
            assert!(v.0 < self.num_vars(), "undeclared variable {v}");
            mask[v.0 as usize] = true;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Manager, Bdd, Bdd, Bdd) {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        (m, a, b, c)
    }

    #[test]
    fn de_morgan() {
        let (mut m, a, b, _) = setup();
        let lhs = {
            let ab = m.and(a, b);
            m.not(ab)
        };
        let rhs = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_matches_definition() {
        let (mut m, a, b, c) = setup();
        let via_ite = m.ite(a, b, c);
        let direct = {
            let ab = m.and(a, b);
            let na = m.not(a);
            let nac = m.and(na, c);
            m.or(ab, nac)
        };
        assert_eq!(via_ite, direct);
    }

    #[test]
    fn xor_and_iff_are_complements() {
        let (mut m, a, b, _) = setup();
        let x = m.xor(a, b);
        let e = m.iff(a, b);
        let nx = m.not(x);
        assert_eq!(e, nx);
    }

    #[test]
    fn implication_truth_table() {
        let (mut m, a, b, _) = setup();
        let imp = m.implies(a, b);
        assert!(m.eval(imp, |_| false));
        assert!(m.eval(imp, |v| v == Var(1)));
        assert!(!m.eval(imp, |v| v == Var(0)));
        assert!(m.eval(imp, |_| true));
    }

    #[test]
    fn restrict_is_cofactor() {
        let (mut m, a, b, _) = setup();
        let f = m.and(a, b);
        let f1 = m.restrict(f, Var(0), true);
        assert_eq!(f1, b);
        let f0 = m.restrict(f, Var(0), false);
        assert!(f0.is_false());
    }

    #[test]
    fn restrict_many_matches_sequential() {
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let cases: &[&[(Var, bool)]] = &[
            &[],
            &[(Var(0), true)],
            &[(Var(0), true), (Var(2), false)],
            &[(Var(2), false), (Var(0), true)],
            &[(Var(0), false), (Var(1), true), (Var(2), false)],
        ];
        for assignments in cases {
            let mut seq = f;
            for &(v, value) in *assignments {
                seq = m.restrict(seq, v, value);
            }
            assert_eq!(m.restrict_many(f, assignments), seq, "{assignments:?}");
        }
    }

    #[test]
    fn restrict_many_out_of_range_var_is_identity() {
        // Matches single-variable `restrict`, which walks by level and
        // never meets an undeclared variable.
        let (mut m, a, b, _) = setup();
        let f = m.or(a, b);
        let r = m.restrict_many(f, &[(Var(7), true)]);
        assert_eq!(r, f);
        let mixed = m.restrict_many(f, &[(Var(7), true), (Var(0), false)]);
        assert_eq!(mixed, b);
    }

    #[test]
    fn restrict_many_first_assignment_wins() {
        let (mut m, a, b, _) = setup();
        let f = m.and(a, b);
        // Sequentially, [x0↦1][x0↦0] leaves b: the second restriction is
        // an identity because x0 is already gone.
        let r = m.restrict_many(f, &[(Var(0), true), (Var(0), false)]);
        assert_eq!(r, b);
    }

    #[test]
    fn restrict_missing_var_is_identity() {
        let (mut m, a, b, _) = setup();
        let f = m.or(a, b);
        let r = m.restrict(f, Var(2), true);
        assert_eq!(r, f);
    }

    #[test]
    fn exists_or_of_cofactors() {
        let (mut m, a, b, _) = setup();
        let f = m.and(a, b);
        let e = m.exists(f, &[Var(0)]);
        assert_eq!(e, b);
        let e2 = m.exists(f, &[Var(0), Var(1)]);
        assert!(e2.is_true());
    }

    #[test]
    fn forall_dual_of_exists() {
        let (mut m, a, b, _) = setup();
        let f = m.or(a, b);
        let g = m.forall(f, &[Var(0)]);
        assert_eq!(g, b);
        let h = m.forall(f, &[Var(0), Var(1)]);
        assert!(h.is_false());
    }

    #[test]
    fn and_exists_equals_naive() {
        let (mut m, a, b, c) = setup();
        let f = m.or(a, b);
        let g = m.or(b, c);
        let naive = {
            let fg = m.and(f, g);
            m.exists(fg, &[Var(1)])
        };
        let fused = m.and_exists(f, g, &[Var(1)]);
        assert_eq!(naive, fused);
    }

    #[test]
    fn rename_shifts_variables() {
        let mut m = Manager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(2));
        let f = m.and(a, b);
        // Shift each var one level down (0->1, 2->3): order-preserving.
        let g = m.rename(f, &|v| Var(v.0 + 1));
        let expect = {
            let x = m.var(Var(1));
            let y = m.var(Var(3));
            m.and(x, y)
        };
        assert_eq!(g, expect);
    }

    #[test]
    fn compose_substitutes_function() {
        let (mut m, a, b, c) = setup();
        // f = a ∧ b, substitute b := c ∨ a
        let f = m.and(a, b);
        let g = m.or(c, a);
        let h = m.compose(f, Var(1), g);
        let expect = m.and(a, g);
        assert_eq!(h, expect);
    }

    #[test]
    fn and_or_all_fold() {
        let (mut m, a, b, c) = setup();
        let all = m.and_all([a, b, c]);
        let pair = m.and(a, b);
        let expect = m.and(pair, c);
        assert_eq!(all, expect);
        let none = m.or_all(std::iter::empty());
        assert!(none.is_false());
        let one = m.and_all(std::iter::empty());
        assert!(one.is_true());
    }
}
