//! The BDD manager: node arena, unique table and operation caches.

use std::collections::HashMap;
use std::fmt;

/// A BDD variable, identified by a stable numeric id.
///
/// A fresh [`Manager`] places `Var(k)` at *level* `k` of the variable
/// order (`Var(0)` top-most, closest to the root). Dynamic reordering
/// ([`Manager::sift`]) moves variables between levels, but a `Var` keeps
/// its identity: handles, caches and client-side maps from domain objects
/// to variables stay valid across reorders. Use [`Manager::level_of`] and
/// [`Manager::var_at_level`] to inspect the current order.
///
/// # Example
///
/// ```
/// use bfl_bdd::Var;
/// let v = Var(3);
/// assert_eq!(v.index(), 3);
/// assert!(Var(0) < Var(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Returns the level index of this variable.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A handle to a BDD node owned by a [`Manager`].
///
/// Handles are small `Copy` values; all operations on them are methods of
/// the owning manager. Two handles obtained from the *same* manager are
/// equal if and only if they represent the same Boolean function (canonicity
/// of reduced ordered BDDs). Handles must not be mixed across managers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The raw node index inside the manager's arena.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Returns `true` if this handle is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` if this handle is the constant-false terminal.
    pub fn is_false(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this handle is the constant-true terminal.
    pub fn is_true(self) -> bool {
        self.0 == 1
    }
}

/// An interior BDD node: a variable (level) plus low/high children.
///
/// Exposed read-only through [`Manager::node`], mainly for traversals,
/// rendering and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    /// The decision variable labelling this node.
    pub var: Var,
    /// Child followed when `var` is assigned `0`.
    pub low: Bdd,
    /// Child followed when `var` is assigned `1`.
    pub high: Bdd,
}

/// Sentinel level assigned to the two terminal nodes: compares greater than
/// every real variable so terminals sort below all interior nodes.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// Binary operation identifiers for the operation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
}

/// A manager owning a forest of reduced ordered BDDs over a fixed variable
/// order.
///
/// The manager hash-conses all nodes: structurally identical nodes are
/// created at most once, which makes equality of [`Bdd`] handles equivalent
/// to semantic equality of the represented functions.
///
/// Two dynamic-maintenance services keep long-lived managers small:
///
/// * [`Manager::collect_garbage`] — mark-and-sweep over caller-supplied
///   roots with arena compaction (handles are remapped through the
///   returned [`Gc`](crate::Gc));
/// * [`Manager::sift`] — Rudell-style dynamic variable reordering built
///   on the adjacent-level [`swap`](Manager::swap_adjacent_levels)
///   primitive (which never invalidates handles; the sift remaps its
///   root list in place when it compacts swap debris).
///
/// [`Manager::clear_caches`] can be used to drop memoisation tables (but
/// not nodes) between phases.
///
/// # Panics
///
/// All operations panic if the arena would exceed the configured node limit
/// (default: 64 million nodes ≈ 1 GiB); see [`Manager::set_node_limit`].
///
/// # Example
///
/// ```
/// use bfl_bdd::{Manager, Var};
/// let mut m = Manager::new(3);
/// let a = m.var(Var(0));
/// let b = m.var(Var(1));
/// let ab = m.and(a, b);
/// let n = m.not(ab);
/// let back = m.not(n);
/// assert_eq!(ab, back); // canonicity
/// ```
#[derive(Debug, Clone)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: HashMap<(u32, u32, u32), u32>,
    pub(crate) op_cache: HashMap<(Op, u32, u32), u32>,
    pub(crate) ite_cache: HashMap<(u32, u32, u32), u32>,
    pub(crate) not_cache: HashMap<u32, u32>,
    num_vars: u32,
    node_limit: usize,
    /// variable id -> current level (index by `Var::index`).
    pub(crate) var2level: Vec<u32>,
    /// current level -> variable id (inverse of `var2level`).
    pub(crate) level2var: Vec<u32>,
}

impl Manager {
    /// Default maximum number of nodes before operations panic.
    pub const DEFAULT_NODE_LIMIT: usize = 64 << 20;

    /// Creates a manager over `num_vars` variables `Var(0) .. Var(num_vars)`.
    ///
    /// Initially `Var(k)` sits at level `k` of the variable order; more
    /// variables can be added later with [`Manager::add_vars`], and the
    /// order can be changed dynamically with [`Manager::sift`].
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(2);
    /// assert_eq!(m.num_vars(), 2);
    /// let x = m.var(Var(0));
    /// let y = m.var(Var(1));
    /// let f = m.and(x, y);
    /// assert!(m.eval(f, |_| true));
    /// ```
    pub fn new(num_vars: u32) -> Self {
        let terminal = |b: u32| Node {
            var: Var(TERMINAL_LEVEL),
            low: Bdd(b),
            high: Bdd(b),
        };
        Manager {
            nodes: vec![terminal(0), terminal(1)],
            unique: HashMap::new(),
            op_cache: HashMap::new(),
            ite_cache: HashMap::new(),
            not_cache: HashMap::new(),
            num_vars,
            node_limit: Self::DEFAULT_NODE_LIMIT,
            var2level: (0..num_vars).collect(),
            level2var: (0..num_vars).collect(),
        }
    }

    /// The constant-false function.
    pub fn bot(&self) -> Bdd {
        Bdd(0)
    }

    /// The constant-true function.
    pub fn top(&self) -> Bdd {
        Bdd(1)
    }

    /// Returns the constant function for `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            self.top()
        } else {
            self.bot()
        }
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Declares `extra` additional variables at the bottom of the order and
    /// returns the first newly created variable.
    pub fn add_vars(&mut self, extra: u32) -> Var {
        let first = self.num_vars;
        self.num_vars += extra;
        for id in first..self.num_vars {
            self.var2level.push(self.level2var.len() as u32);
            self.level2var.push(id);
        }
        Var(first)
    }

    /// The current level of variable `v` (`0` = top of the order).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a declared variable of this manager.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let m = Manager::new(3);
    /// assert_eq!(m.level_of(Var(2)), 2); // fresh managers use the identity order
    /// ```
    pub fn level_of(&self, v: Var) -> u32 {
        self.var2level[v.0 as usize]
    }

    /// The variable currently sitting at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars`.
    pub fn var_at_level(&self, level: u32) -> Var {
        Var(self.level2var[level as usize])
    }

    /// The current variable order, top level first.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let m = Manager::new(3);
    /// assert_eq!(m.current_order(), vec![Var(0), Var(1), Var(2)]);
    /// ```
    pub fn current_order(&self) -> Vec<Var> {
        self.level2var.iter().map(|&id| Var(id)).collect()
    }

    /// Total number of nodes allocated in the arena (including terminals).
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Sets the maximum number of nodes the arena may hold.
    ///
    /// # Panics
    ///
    /// Subsequent operations panic when the limit would be exceeded.
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Drops all memoisation caches (unique table and nodes are kept).
    pub fn clear_caches(&mut self) {
        self.op_cache.clear();
        self.ite_cache.clear();
        self.not_cache.clear();
    }

    /// Read access to a node. Terminals report a sentinel variable level.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a handle of this manager.
    pub fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }

    /// The decision level of the root of `f` (`u32::MAX` for terminals).
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        let id = self.nodes[f.0 as usize].var.0;
        if id == TERMINAL_LEVEL {
            TERMINAL_LEVEL
        } else {
            self.var2level[id as usize]
        }
    }

    /// Returns the single-node BDD for the positive literal `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a declared variable of this manager.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(1);
    /// let x = m.var(Var(0));
    /// assert!(m.eval(x, |_| true));
    /// assert!(!m.eval(x, |_| false));
    /// assert_eq!(m.var(Var(0)), x); // hash-consed: same node every time
    /// ```
    pub fn var(&mut self, v: Var) -> Bdd {
        assert!(v.0 < self.num_vars, "undeclared variable {v}");
        let bot = self.bot();
        let top = self.top();
        self.mk(v, bot, top)
    }

    /// Returns the single-node BDD for the negative literal `¬v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a declared variable of this manager.
    pub fn nvar(&mut self, v: Var) -> Bdd {
        assert!(v.0 < self.num_vars, "undeclared variable {v}");
        let bot = self.bot();
        let top = self.top();
        self.mk(v, top, bot)
    }

    /// Finds or creates the node `(var, low, high)`, applying the ROBDD
    /// reduction rules (redundant-test elimination and sharing).
    pub(crate) fn mk(&mut self, var: Var, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        debug_assert!(
            self.level_of(var) < self.level(low) && self.level_of(var) < self.level(high),
            "variable order violated: {} above children",
            var
        );
        let key = (var.0, low.0, high.0);
        if let Some(&id) = self.unique.get(&key) {
            return Bdd(id);
        }
        assert!(
            self.nodes.len() < self.node_limit,
            "BDD node limit exceeded ({} nodes)",
            self.node_limit
        );
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, low, high });
        self.unique.insert(key, id);
        Bdd(id)
    }

    pub(crate) fn op_cache_get(&self, op: Op, f: Bdd, g: Bdd) -> Option<Bdd> {
        self.op_cache.get(&(op, f.0, g.0)).map(|&id| Bdd(id))
    }

    pub(crate) fn op_cache_put(&mut self, op: Op, f: Bdd, g: Bdd, r: Bdd) {
        self.op_cache.insert((op, f.0, g.0), r.0);
    }

    pub(crate) fn ite_cache_get(&self, f: Bdd, g: Bdd, h: Bdd) -> Option<Bdd> {
        self.ite_cache.get(&(f.0, g.0, h.0)).map(|&id| Bdd(id))
    }

    pub(crate) fn ite_cache_put(&mut self, f: Bdd, g: Bdd, h: Bdd, r: Bdd) {
        self.ite_cache.insert((f.0, g.0, h.0), r.0);
    }

    pub(crate) fn not_cache_get(&self, f: Bdd) -> Option<Bdd> {
        self.not_cache.get(&f.0).map(|&id| Bdd(id))
    }

    pub(crate) fn not_cache_put(&mut self, f: Bdd, r: Bdd) {
        self.not_cache.insert(f.0, r.0);
    }

    /// Number of nodes reachable from `f` (including the terminals reached).
    ///
    /// This is the conventional "BDD size" reported in the literature,
    /// and the quantity [`Manager::sift`] minimises.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(2);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let f = m.or(a, b);
    /// assert_eq!(m.node_count(f), 4); // two decision nodes + two terminals
    /// assert_eq!(m.node_count(m.top()), 1);
    /// ```
    pub fn node_count(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.0) {
                continue;
            }
            if !n.is_terminal() {
                let node = self.node(n);
                stack.push(node.low);
                stack.push(node.high);
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let m = Manager::new(0);
        assert!(m.bot().is_false());
        assert!(m.top().is_true());
        assert!(m.bot().is_terminal());
        assert_ne!(m.bot(), m.top());
    }

    #[test]
    fn var_nodes_are_shared() {
        let mut m = Manager::new(2);
        let a1 = m.var(Var(0));
        let a2 = m.var(Var(0));
        assert_eq!(a1, a2);
        assert_eq!(m.arena_size(), 3);
    }

    #[test]
    fn mk_eliminates_redundant_tests() {
        let mut m = Manager::new(2);
        let t = m.top();
        let r = m.mk(Var(0), t, t);
        assert_eq!(r, t);
    }

    #[test]
    fn var_and_nvar_differ() {
        let mut m = Manager::new(1);
        let p = m.var(Var(0));
        let n = m.nvar(Var(0));
        assert_ne!(p, n);
        let node = m.node(p);
        assert_eq!(node.low, m.bot());
        assert_eq!(node.high, m.top());
    }

    #[test]
    #[should_panic(expected = "undeclared variable")]
    fn undeclared_variable_panics() {
        let mut m = Manager::new(1);
        let _ = m.var(Var(5));
    }

    #[test]
    fn node_count_counts_reachable() {
        let mut m = Manager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.or(a, b);
        // root (x0), node for x1, two terminals
        assert_eq!(m.node_count(f), 4);
    }

    #[test]
    fn add_vars_extends_order() {
        let mut m = Manager::new(1);
        let first = m.add_vars(2);
        assert_eq!(first, Var(1));
        assert_eq!(m.num_vars(), 3);
        let _ = m.var(Var(2));
    }
}
