//! The strict subset/superset relations between status vectors used by the
//! `MCS`/`MPS` translations of Algorithm 1:
//!
//! `V′ ⊂ V  ≡  (⋀_k v′_k ⇒ v_k) ∧ (⋁_k v′_k ≠ v_k)`.

use crate::manager::{Bdd, Manager, Var};

impl Manager {
    /// Builds the relation *"the primed vector is a strict subset of the
    /// unprimed vector"* over the given `(unprimed, primed)` variable pairs.
    ///
    /// Reading each vector as the set of variables assigned `1`, the result
    /// is satisfied exactly when `{k | v′_k = 1} ⊊ {k | v_k = 1}`.
    ///
    /// For linear-size results the pairs should be interleaved in the
    /// variable order (`v_k` immediately above `v′_k`), which is how the
    /// `bfl-core` model checker allocates them.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(4);
    /// // pairs (x0, x1) and (x2, x3): primed = odd levels
    /// let rel = m.strict_subset(&[(Var(0), Var(1)), (Var(2), Var(3))]);
    /// // {x2} ⊊ {x0, x2}: v = (1,1), v' = (0,1)
    /// assert!(m.eval(rel, |v| v == Var(0) || v == Var(2) || v == Var(3)));
    /// // equal sets are not strict subsets
    /// assert!(!m.eval(rel, |v| v == Var(0) || v == Var(1)));
    /// ```
    pub fn strict_subset(&mut self, pairs: &[(Var, Var)]) -> Bdd {
        self.strict_inclusion(pairs, true)
    }

    /// Builds the relation *"the primed vector is a strict superset of the
    /// unprimed vector"*, i.e. `{k | v_k = 1} ⊊ {k | v′_k = 1}`.
    ///
    /// This is the dual relation used for the `MPS` operator (maximal
    /// vectors; see `DESIGN.md` §4).
    pub fn strict_superset(&mut self, pairs: &[(Var, Var)]) -> Bdd {
        self.strict_inclusion(pairs, false)
    }

    /// `primed_smaller = true`: primed ⊊ unprimed; otherwise primed ⊋
    /// unprimed.
    fn strict_inclusion(&mut self, pairs: &[(Var, Var)], primed_smaller: bool) -> Bdd {
        // Build bottom-up (reverse *current* level order, so the
        // construction stays linear after dynamic reordering) when pairs
        // are interleaved.
        let mut sorted: Vec<(Var, Var)> = pairs.to_vec();
        sorted.sort_by_key(|&(v, _)| std::cmp::Reverse(self.level_of(v)));
        let mut all_leq = self.top();
        let mut strict = self.bot();
        for &(unprimed, primed) in &sorted {
            let u = self.var(unprimed);
            let p = self.var(primed);
            let (small, big) = if primed_smaller { (p, u) } else { (u, p) };
            let leq = self.implies(small, big);
            // Strictly-less at position k: big holds, small does not.
            let nsmall = self.not(small);
            let lt = self.and(nsmall, big);
            // strict' = (leq_k ∧ strict) ∨ (lt_k ∧ all_leq)
            let keep = self.and(leq, strict);
            let new = self.and(lt, all_leq);
            strict = self.or(keep, new);
            all_leq = self.and(leq, all_leq);
        }
        strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check of the subset relation over n pairs.
    fn check_relation(n: u32, superset: bool) {
        let mut m = Manager::new(2 * n);
        let pairs: Vec<(Var, Var)> = (0..n).map(|k| (Var(2 * k), Var(2 * k + 1))).collect();
        let rel = if superset {
            m.strict_superset(&pairs)
        } else {
            m.strict_subset(&pairs)
        };
        for v_bits in 0..(1u32 << n) {
            for p_bits in 0..(1u32 << n) {
                let expected = {
                    let subset_ok = if superset {
                        v_bits & p_bits == v_bits
                    } else {
                        v_bits & p_bits == p_bits
                    };
                    subset_ok && v_bits != p_bits
                };
                let got = m.eval(rel, |var| {
                    let k = var.0 / 2;
                    if var.0 % 2 == 0 {
                        (v_bits >> k) & 1 == 1
                    } else {
                        (p_bits >> k) & 1 == 1
                    }
                });
                assert_eq!(
                    got, expected,
                    "n={n} superset={superset} v={v_bits:b} p={p_bits:b}"
                );
            }
        }
    }

    #[test]
    fn subset_relation_matches_brute_force() {
        for n in 1..=4 {
            check_relation(n, false);
        }
    }

    #[test]
    fn superset_relation_matches_brute_force() {
        for n in 1..=4 {
            check_relation(n, true);
        }
    }

    #[test]
    fn empty_relation_is_false() {
        let mut m = Manager::new(0);
        let r = m.strict_subset(&[]);
        assert!(r.is_false());
    }

    #[test]
    fn subset_relation_is_linear_sized() {
        let n = 32;
        let mut m = Manager::new(2 * n);
        let pairs: Vec<(Var, Var)> = (0..n).map(|k| (Var(2 * k), Var(2 * k + 1))).collect();
        let rel = m.strict_subset(&pairs);
        // 2 internal states per pair plus slack — far below exponential.
        assert!(m.node_count(rel) < 8 * n as usize);
    }
}
