//! Weighted model counting: the node-keyed Shannon probability walk.
//!
//! Given a weight `w(v) ∈ [0, 1]` per variable (the probability that `v`
//! is true, independently of the others), the probability of a BDD is
//! defined bottom-up by the Shannon expansion
//! `P(f) = (1 − w(v)) · P(f|v=0) + w(v) · P(f|v=1)`, memoised **per
//! node** so shared subgraphs are walked once. The walk lives here, in
//! the BDD crate, because everything above (fault-tree unreliability,
//! formula probabilities, prepared-plan probability sweeps) is the same
//! recursion with a different variable-weight map — and because the memo
//! key is the arena node id, whose lifecycle (garbage collection,
//! sifting) is owned by this crate.
//!
//! Memo lifetime: entries are keyed on [`Bdd::id`], which is stable
//! under pure construction but **invalidated** by
//! [`Manager::collect_garbage`](crate::Manager::collect_garbage) (ids
//! are compacted) and by sifting (nodes are rewritten in place). Callers
//! that cache a memo across operations must clear it whenever either
//! runs — the session layer does this through its plan registry.

use std::collections::HashMap;

use crate::manager::{Bdd, Manager, Var};

impl Manager {
    /// The probability of `f` under independent per-variable weights
    /// (`weight(v)` = probability that `v` is true).
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(2);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let or = m.or(a, b);
    /// // P(a ∨ b) = 1 − (1 − 0.1)(1 − 0.2) = 0.28
    /// let p = m.probability(or, |v| if v.index() == 0 { 0.1 } else { 0.2 });
    /// assert!((p - 0.28).abs() < 1e-12);
    /// ```
    ///
    /// (See [`Manager::probability_with_memo`] for the memoised form the
    /// engine uses across many roots.)
    pub fn probability<W: Fn(Var) -> f64>(&self, f: Bdd, weight: W) -> f64 {
        let mut memo = HashMap::new();
        self.probability_with_memo(f, &weight, &mut memo)
    }

    /// [`Manager::probability`] with a caller-owned node-keyed memo, so
    /// repeated walks over diagrams sharing subgraphs (e.g. one
    /// restriction per scenario of a sweep) pay only for the nodes they
    /// see first.
    ///
    /// The caller owns the memo's lifetime: it must be cleared after any
    /// garbage collection or sifting pass, and must only ever be used
    /// with one fixed `weight` map.
    pub fn probability_with_memo<W: Fn(Var) -> f64>(
        &self,
        f: Bdd,
        weight: &W,
        memo: &mut HashMap<u32, f64>,
    ) -> f64 {
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        if let Some(&p) = memo.get(&f.id()) {
            return p;
        }
        let node = self.node(f);
        let w = weight(node.var);
        let lo = self.probability_with_memo(node.low, weight, memo);
        let hi = self.probability_with_memo(node.high, weight, memo);
        let p = (1.0 - w) * lo + w * hi;
        memo.insert(f.id(), p);
        p
    }

    /// Interval twin of [`Manager::probability`]: propagates conservative
    /// `[lo, hi]` probability bounds through the Shannon walk when each
    /// variable's weight is only known to lie in an interval
    /// (`weight(v) = (wl, wh)` with `0 ≤ wl ≤ wh ≤ 1`).
    ///
    /// At each node both endpoints of the child intervals are combined
    /// with both endpoints of the variable weight and the extremes are
    /// kept, so the result brackets every point probability obtainable by
    /// picking a weight inside each variable's interval. Degenerate
    /// intervals `(p, p)` reproduce [`Manager::probability`] **bit for
    /// bit**: the candidate expressions collapse to the exact walk's
    /// `(1 − w)·lo + w·hi`.
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(2);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let or = m.or(a, b);
    /// let (lo, hi) = m.probability_interval(or, |v| {
    ///     if v.index() == 0 { (0.1, 0.3) } else { (0.2, 0.2) }
    /// });
    /// // P(a ∨ b) with P(a) ∈ [0.1, 0.3]: [0.28, 0.44]
    /// assert!((lo - 0.28).abs() < 1e-12 && (hi - 0.44).abs() < 1e-12);
    /// ```
    pub fn probability_interval<W: Fn(Var) -> (f64, f64)>(&self, f: Bdd, weight: W) -> (f64, f64) {
        let mut memo = HashMap::new();
        self.probability_interval_with_memo(f, &weight, &mut memo)
    }

    /// [`Manager::probability_interval`] with a caller-owned node-keyed
    /// memo (same lifetime rules as [`Manager::probability_with_memo`]:
    /// clear after garbage collection or sifting, one fixed weight map
    /// per memo).
    pub fn probability_interval_with_memo<W: Fn(Var) -> (f64, f64)>(
        &self,
        f: Bdd,
        weight: &W,
        memo: &mut HashMap<u32, (f64, f64)>,
    ) -> (f64, f64) {
        if f.is_false() {
            return (0.0, 0.0);
        }
        if f.is_true() {
            return (1.0, 1.0);
        }
        if let Some(&p) = memo.get(&f.id()) {
            return p;
        }
        let node = self.node(f);
        let (wl, wh) = weight(node.var);
        let (lo_l, lo_h) = self.probability_interval_with_memo(node.low, weight, memo);
        let (hi_l, hi_h) = self.probability_interval_with_memo(node.high, weight, memo);
        // Both child bounds lie in [0, 1], so for each endpoint it
        // suffices to scan the two weight extremes; the expression shape
        // matches the exact walk so degenerate intervals stay
        // bit-identical to `probability_with_memo`.
        let cand_lo_wl = (1.0 - wl) * lo_l + wl * hi_l;
        let cand_lo_wh = (1.0 - wh) * lo_l + wh * hi_l;
        let cand_hi_wl = (1.0 - wl) * lo_h + wl * hi_h;
        let cand_hi_wh = (1.0 - wh) * lo_h + wh * hi_h;
        let p = (cand_lo_wl.min(cand_lo_wh), cand_hi_wl.max(cand_hi_wh));
        memo.insert(f.id(), p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_single_var() {
        let mut m = Manager::new(1);
        let bot = m.bot();
        let top = m.top();
        let x = m.var(Var(0));
        let w = |_: Var| 0.3;
        let mut memo = HashMap::new();
        assert_eq!(m.probability_with_memo(bot, &w, &mut memo), 0.0);
        assert_eq!(m.probability_with_memo(top, &w, &mut memo), 1.0);
        assert!((m.probability_with_memo(x, &w, &mut memo) - 0.3).abs() < 1e-15);
    }

    #[test]
    fn or_and_shannon() {
        let mut m = Manager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let or = m.or(a, b);
        let and = m.and(a, b);
        let w = |v: Var| if v.index() == 0 { 0.1 } else { 0.2 };
        let mut memo = HashMap::new();
        assert!((m.probability_with_memo(or, &w, &mut memo) - 0.28).abs() < 1e-15);
        assert!((m.probability_with_memo(and, &w, &mut memo) - 0.02).abs() < 1e-15);
    }

    #[test]
    fn memo_is_reused_across_roots() {
        let mut m = Manager::new(4);
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(Var(i))).collect();
        let ab = m.and(vars[0], vars[1]);
        let abc = m.or(ab, vars[2]);
        let w = |_: Var| 0.5;
        let mut memo = HashMap::new();
        let _ = m.probability_with_memo(abc, &w, &mut memo);
        let filled = memo.len();
        // Re-walking the diagram, or walking one of its cofactors (a
        // shared subgraph), adds no entries.
        let _ = m.probability_with_memo(abc, &w, &mut memo);
        let cofactor = m.restrict(abc, Var(0), true);
        let _ = m.probability_with_memo(cofactor, &w, &mut memo);
        assert_eq!(memo.len(), filled);
    }

    #[test]
    fn interval_walk_brackets_point_walk() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let lo_w = [0.05, 0.1, 0.2];
        let hi_w = [0.15, 0.3, 0.4];
        let (lo, hi) =
            m.probability_interval(f, |v| (lo_w[v.index() as usize], hi_w[v.index() as usize]));
        assert!(lo <= hi);
        // Any point weight inside the per-variable intervals must land
        // inside the propagated interval.
        for t in 0..=4 {
            let frac = t as f64 / 4.0;
            let p = m.probability(f, |v| {
                let i = v.index() as usize;
                lo_w[i] + frac * (hi_w[i] - lo_w[i])
            });
            assert!(lo <= p && p <= hi, "t={t}: {p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn degenerate_intervals_are_bit_identical_to_exact() {
        let mut m = Manager::new(4);
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(Var(i))).collect();
        let ab = m.and(vars[0], vars[1]);
        let cd = m.or(vars[2], vars[3]);
        let f = m.xor(ab, cd);
        let w = [0.123, 0.456, 0.789, 0.0321];
        let exact = m.probability(f, |v| w[v.index() as usize]);
        let (lo, hi) = m.probability_interval(f, |v| {
            let p = w[v.index() as usize];
            (p, p)
        });
        assert_eq!(lo.to_bits(), exact.to_bits());
        assert_eq!(hi.to_bits(), exact.to_bits());
    }

    #[test]
    fn interval_memo_is_reused_across_roots() {
        let mut m = Manager::new(4);
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(Var(i))).collect();
        let ab = m.and(vars[0], vars[1]);
        let abc = m.or(ab, vars[2]);
        let w = |_: Var| (0.4, 0.6);
        let mut memo = HashMap::new();
        let _ = m.probability_interval_with_memo(abc, &w, &mut memo);
        let filled = memo.len();
        let _ = m.probability_interval_with_memo(abc, &w, &mut memo);
        let cofactor = m.restrict(abc, Var(0), true);
        let _ = m.probability_interval_with_memo(cofactor, &w, &mut memo);
        assert_eq!(memo.len(), filled);
    }

    #[test]
    fn complement_sums_to_one() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let ab = m.and(a, b);
        let f = m.xor(ab, c);
        let g = m.not(f);
        let w = |v: Var| [0.12, 0.34, 0.56][v.index() as usize];
        let mut memo = HashMap::new();
        let p = m.probability_with_memo(f, &w, &mut memo);
        let q = m.probability_with_memo(g, &w, &mut memo);
        assert!((p + q - 1.0).abs() < 1e-12);
    }
}
