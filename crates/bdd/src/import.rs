//! Cross-arena import: copying diagrams between managers.
//!
//! Parallel construction compiles independent fault-tree modules into
//! per-worker [`Manager`] arenas and then *stitches* the results into the
//! parent manager. The import walks the source diagram bottom-up and
//! rebuilds it through [`Manager::mk`], so the copy is hash-consed into
//! the destination's unique table: importing a function twice (or a
//! function the destination already built itself) yields the same handle,
//! and by canonicity the imported diagram is node-for-node isomorphic to
//! what the destination would have built sequentially.
//!
//! Both managers must agree on the *relative order* of every variable in
//! the imported diagram's support (checked, with a panic on violation).
//! [`Manager::import_substitute`] relaxes this for selected variables by
//! composing them with destination-side functions during the copy.

use std::collections::HashMap;

use crate::manager::{Bdd, Manager, Var};

impl Manager {
    /// Imports `root` — a handle of the *source* manager `src` — into this
    /// manager, returning the handle of the same Boolean function here.
    ///
    /// The copy is memoised per call: shared subgraphs are visited once.
    /// Use [`Manager::import_many`] to share the memo across several
    /// roots of the same source arena.
    ///
    /// # Panics
    ///
    /// Panics if the diagram mentions a variable not declared here, or if
    /// the two managers disagree on the relative order of any pair of
    /// variables in the diagram's support.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut worker = Manager::new(4);
    /// let a = worker.var(Var(0));
    /// let b = worker.var(Var(2));
    /// let f = worker.and(a, b);
    ///
    /// let mut parent = Manager::new(4);
    /// let g = parent.import(&worker, f);
    /// // The parent built the same function, hash-consed into its arena:
    /// let a2 = parent.var(Var(0));
    /// let b2 = parent.var(Var(2));
    /// let expect = parent.and(a2, b2);
    /// assert_eq!(g, expect);
    /// assert_eq!(parent.node_count(g), worker.node_count(f));
    /// ```
    pub fn import(&mut self, src: &Manager, root: Bdd) -> Bdd {
        self.import_many(src, &[root])[0]
    }

    /// Imports several roots of the same source manager, sharing one
    /// memo table (subgraphs shared between roots are copied once).
    ///
    /// # Panics
    ///
    /// As for [`Manager::import`].
    pub fn import_many(&mut self, src: &Manager, roots: &[Bdd]) -> Vec<Bdd> {
        let mut memo: HashMap<u32, Bdd> = HashMap::new();
        memo.insert(0, self.bot());
        memo.insert(1, self.top());
        for &root in roots {
            self.import_rec(src, root, &mut memo, &mut |_| None);
        }
        // An import is *closed* exactly when the destination still passes
        // the arena audit afterwards: every copied node resolved to an
        // in-bounds, canonically interned destination node.
        self.debug_audit();
        roots.iter().map(|r| memo[&r.0]).collect()
    }

    /// Imports `root` while *substituting* selected variables: every
    /// source node labelled with a variable in `subst` is replaced by
    /// `ite(subst[v], high, low)` over the destination arena, i.e. the
    /// variable is composed with a destination-side function during the
    /// copy. Variables not in `subst` are copied verbatim (and must obey
    /// the order rules of [`Manager::import`]).
    ///
    /// This is the module-substitution step of compositional analysis: a
    /// module compiled over a placeholder variable is instantiated into
    /// the parent by substituting the placeholder with the module's
    /// translated diagram.
    ///
    /// # Panics
    ///
    /// As for [`Manager::import`], for the non-substituted variables.
    ///
    /// # Example
    ///
    /// ```
    /// use std::collections::HashMap;
    /// use bfl_bdd::{Manager, Var};
    /// // Worker: f = x0 ∨ x1, where x1 stands for an unexpanded module.
    /// let mut worker = Manager::new(2);
    /// let x0 = worker.var(Var(0));
    /// let x1 = worker.var(Var(1));
    /// let f = worker.or(x0, x1);
    ///
    /// // Parent: the module expands to x2 ∧ x3.
    /// let mut parent = Manager::new(4);
    /// let x2 = parent.var(Var(2));
    /// let x3 = parent.var(Var(3));
    /// let module = parent.and(x2, x3);
    /// let mut subst = HashMap::new();
    /// subst.insert(Var(1), module);
    ///
    /// let g = parent.import_substitute(&worker, f, &subst);
    /// let x0p = parent.var(Var(0));
    /// let expect = parent.or(x0p, module);
    /// assert_eq!(g, expect);
    /// ```
    pub fn import_substitute(
        &mut self,
        src: &Manager,
        root: Bdd,
        subst: &HashMap<Var, Bdd>,
    ) -> Bdd {
        let mut memo: HashMap<u32, Bdd> = HashMap::new();
        memo.insert(0, self.bot());
        memo.insert(1, self.top());
        self.import_rec(src, root, &mut memo, &mut |v| subst.get(&v).copied());
        self.debug_audit();
        memo[&root.0]
    }

    /// Iterative bottom-up copy (explicit stack: deep diagrams over
    /// thousands of interleaved variables would overflow the call stack).
    fn import_rec(
        &mut self,
        src: &Manager,
        root: Bdd,
        memo: &mut HashMap<u32, Bdd>,
        subst: &mut dyn FnMut(Var) -> Option<Bdd>,
    ) {
        let mut stack: Vec<(Bdd, bool)> = vec![(root, false)];
        while let Some((f, expanded)) = stack.pop() {
            if memo.contains_key(&f.0) {
                continue;
            }
            let node = src.node(f);
            if !expanded {
                stack.push((f, true));
                stack.push((node.low, false));
                stack.push((node.high, false));
                continue;
            }
            let low = memo[&node.low.0];
            let high = memo[&node.high.0];
            let out = match subst(node.var) {
                Some(g) => self.ite(g, high, low),
                None => {
                    assert!(
                        node.var.0 < self.num_vars(),
                        "import: variable {} not declared in the destination manager",
                        node.var
                    );
                    let level = self.level_of(node.var);
                    assert!(
                        level < self.level(low) && level < self.level(high),
                        "import: managers disagree on the order of {}",
                        node.var
                    );
                    self.mk(node.var, low, high)
                }
            };
            memo.insert(f.0, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A worker-built diagram imports to the function the parent would
    /// have built itself, with identical reachable node count.
    #[test]
    fn import_is_isomorphic_and_hash_consed() {
        let mut worker = Manager::new(6);
        let vars: Vec<Bdd> = (0..6).map(|i| worker.var(Var(i))).collect();
        let ab = worker.and(vars[0], vars[1]);
        let cd = worker.and(vars[2], vars[3]);
        let ef = worker.xor(vars[4], vars[5]);
        let or1 = worker.or(ab, cd);
        let f = worker.or(or1, ef);

        let mut parent = Manager::new(6);
        let g = parent.import(&worker, f);

        let pv: Vec<Bdd> = (0..6).map(|i| parent.var(Var(i))).collect();
        let ab2 = parent.and(pv[0], pv[1]);
        let cd2 = parent.and(pv[2], pv[3]);
        let ef2 = parent.xor(pv[4], pv[5]);
        let or2 = parent.or(ab2, cd2);
        let expect = parent.or(or2, ef2);
        assert_eq!(g, expect);
        assert_eq!(parent.node_count(g), worker.node_count(f));
    }

    /// Importing twice (or via two entry points) yields the same handle.
    #[test]
    fn import_is_idempotent() {
        let mut worker = Manager::new(4);
        let a = worker.var(Var(0));
        let b = worker.var(Var(1));
        let f = worker.or(a, b);
        let mut parent = Manager::new(4);
        let g1 = parent.import(&worker, f);
        let size = parent.arena_size();
        let g2 = parent.import(&worker, f);
        assert_eq!(g1, g2);
        assert_eq!(parent.arena_size(), size, "second import allocated nodes");
    }

    /// `import_many` shares subgraphs between roots through one memo.
    #[test]
    fn import_many_shares_the_memo() {
        let mut worker = Manager::new(4);
        let a = worker.var(Var(0));
        let b = worker.var(Var(1));
        let c = worker.var(Var(2));
        let shared = worker.and(b, c);
        let f = worker.or(a, shared);
        let mut parent = Manager::new(4);
        let out = parent.import_many(&worker, &[shared, f]);
        // `shared` is the low child of `f` (Var(0) decides first); the
        // memo reuses the copy instead of importing it twice.
        assert_eq!(parent.node(out[1]).low, out[0]);
    }

    /// Terminal roots import to the destination terminals.
    #[test]
    fn terminals_import_to_terminals() {
        let worker = Manager::new(2);
        let mut parent = Manager::new(2);
        assert_eq!(parent.import(&worker, worker.bot()), parent.bot());
        assert_eq!(parent.import(&worker, worker.top()), parent.top());
    }

    /// Imports agree with evaluation on every assignment.
    #[test]
    fn import_preserves_semantics_exhaustively() {
        let mut worker = Manager::new(5);
        let v: Vec<Bdd> = (0..5).map(|i| worker.var(Var(i))).collect();
        let t1 = worker.and(v[0], v[2]);
        let t2 = worker.and(v[1], v[4]);
        let t3 = worker.or(t1, t2);
        let f = worker.xor(t3, v[3]);
        let mut parent = Manager::new(5);
        let g = parent.import(&worker, f);
        for bits in 0u32..32 {
            let assign = |var: Var| bits & (1 << var.0) != 0;
            assert_eq!(worker.eval(f, assign), parent.eval(g, assign), "{bits:05b}");
        }
    }

    /// Substitution composes a destination function for a source variable.
    #[test]
    fn import_substitute_composes() {
        let mut worker = Manager::new(3);
        let x0 = worker.var(Var(0));
        let x1 = worker.var(Var(1));
        let x2 = worker.var(Var(2));
        let t = worker.and(x1, x2);
        let f = worker.or(x0, t);

        let mut parent = Manager::new(6);
        let y = parent.var(Var(4));
        let z = parent.var(Var(5));
        let module = parent.or(y, z);
        let mut subst = HashMap::new();
        subst.insert(Var(1), module);
        let g = parent.import_substitute(&worker, f, &subst);
        for bits in 0u32..64 {
            let assign = |var: Var| bits & (1 << var.0) != 0;
            let expected = assign(Var(0)) || ((assign(Var(4)) || assign(Var(5))) && assign(Var(2)));
            assert_eq!(parent.eval(g, assign), expected, "{bits:06b}");
        }
    }

    /// A deep chain imports without recursion (stack-safety smoke).
    #[test]
    fn deep_chain_imports_iteratively() {
        let n = 20_000u32;
        let mut worker = Manager::new(n);
        let mut f = worker.top();
        for i in (0..n).rev() {
            let v = worker.var(Var(i));
            f = worker.and(v, f);
        }
        let mut parent = Manager::new(n);
        let g = parent.import(&worker, f);
        assert_eq!(parent.node_count(g), worker.node_count(f));
        assert_eq!(parent.node_count(g) as u32, n + 2);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_variable_panics() {
        let mut worker = Manager::new(8);
        let v = worker.var(Var(7));
        let mut parent = Manager::new(2);
        let _ = parent.import(&worker, v);
    }

    #[test]
    #[should_panic(expected = "disagree on the order")]
    fn incompatible_order_panics() {
        let mut worker = Manager::new(2);
        let a = worker.var(Var(0));
        let b = worker.var(Var(1));
        let f = worker.and(a, b);
        let mut parent = Manager::new(2);
        // Reverse the order in the parent: Var(1) above Var(0).
        parent.swap_adjacent_levels(0);
        assert!(parent.level_of(Var(1)) < parent.level_of(Var(0)));
        let _ = parent.import(&worker, f);
    }
}
