//! Deep self-audit of the manager's arena invariants.
//!
//! Every other module of this crate *relies* on the invariants checked
//! here — hash-consing canonicity, the variable order, the var↔level
//! indirection, cache soundness — but none of them can afford to verify
//! the whole arena on every operation. [`Manager::audit`] is the
//! offline verifier: one linear pass over the arena plus a sampled
//! semantic check of the operation caches, producing an [`AuditReport`]
//! that lists every violation found. Under `debug_assertions` the audit
//! runs automatically after every structural mutation batch
//! ([`Manager::sift`], [`Manager::collect_garbage`],
//! [`Manager::import_many`], [`Manager::import_substitute`]), so the
//! property suites exercise it on every maintenance cycle — a hard
//! oracle for upcoming concurrent unique-table work.
//!
//! The checks:
//!
//! 1. **terminal integrity** — the two terminals sit at indices 0/1 with
//!    the sentinel level;
//! 2. **unique-table canonicity** — every interior node is interned
//!    exactly once under exactly its `(var, low, high)` triple, the
//!    table holds no stray entries, and no two nodes share a triple;
//! 3. **reduction** — no node tests a variable with identical children
//!    (redundant-test elimination held);
//! 4. **order** — every node's variable sits strictly above both
//!    children in the *current* level order, which also proves the
//!    diagram acyclic and every child slot in bounds (no live edge into
//!    a freed/out-of-range slot);
//! 5. **var↔level bijectivity** — `var2level` and `level2var` are
//!    mutually inverse permutations covering every declared variable;
//! 6. **cache soundness** — sampled entries of the and/or/xor, ite and
//!    not caches are re-checked *semantically*: the cached result must
//!    agree with the operands under pseudo-random assignments.
//!
//! Cross-arena imports need no dedicated check: an import is closed
//! exactly when the destination passes checks 2–4 afterwards (every
//! copied child resolves to an in-bounds destination node respecting
//! the destination order), which is what the post-import debug hook
//! asserts.

use std::fmt;

use crate::manager::{Bdd, Manager, Op, Var, TERMINAL_LEVEL};

/// Violations reported before the audit stops collecting (the count
/// keeps incrementing; a corrupt arena can fail almost everywhere).
const MAX_REPORTED: usize = 16;

/// Default number of entries sampled per operation cache.
const DEFAULT_CACHE_SAMPLES: usize = 64;

/// Pseudo-random assignments evaluated per sampled cache entry.
const ASSIGNMENTS_PER_ENTRY: u64 = 4;

/// The outcome of one [`Manager::audit`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Arena size at audit time (terminals included).
    pub nodes: usize,
    /// Unique-table entries inspected.
    pub unique_entries: usize,
    /// Operation-cache entries semantically re-checked (sampled).
    pub cache_entries_checked: usize,
    /// Total violations found (may exceed `violations.len()`).
    pub violation_count: usize,
    /// The first violations found, human-readable (capped).
    pub violations: Vec<String>,
    /// Whether the arena is topologically sorted (every child index
    /// below its parent's). Always true right after a collection;
    /// in-place level swaps legitimately break it, so this is
    /// informational rather than a violation.
    pub topologically_sorted: bool,
}

impl AuditReport {
    /// Whether the audit found no invariant violations.
    pub fn is_ok(&self) -> bool {
        self.violation_count == 0
    }

    fn push(&mut self, violation: String) {
        if self.violations.len() < MAX_REPORTED {
            self.violations.push(violation);
        }
        self.violation_count += 1;
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit: {} nodes, {} unique entries, {} cache entries checked: ",
            self.nodes, self.unique_entries, self.cache_entries_checked
        )?;
        if self.is_ok() {
            return f.write_str("ok");
        }
        write!(f, "{} violations", self.violation_count)?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        if self.violation_count > self.violations.len() {
            write!(
                f,
                "\n  … and {} more",
                self.violation_count - self.violations.len()
            )?;
        }
        Ok(())
    }
}

/// Deterministic per-(entry, variable) assignment bit — a SplitMix64
/// finaliser over the sample index and variable id, so cache sampling
/// is reproducible without any global random state.
fn assignment_bit(sample: u64, v: Var) -> bool {
    let mut z = sample
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(v.0).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 1 == 1
}

impl Manager {
    /// Verifies the arena invariants (see the module docs above),
    /// sampling `DEFAULT_CACHE_SAMPLES` entries per operation cache.
    ///
    /// The audit never mutates the manager and never panics on a corrupt
    /// arena — every violation is collected into the report (use
    /// [`Manager::assert_audit`] for the panicking form).
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(3);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let _ = m.and(a, b);
    /// let report = m.audit();
    /// assert!(report.is_ok(), "{report}");
    /// ```
    pub fn audit(&self) -> AuditReport {
        self.audit_with(DEFAULT_CACHE_SAMPLES)
    }

    /// [`Manager::audit`] with an explicit per-cache sample budget
    /// (`usize::MAX` re-checks every cache entry).
    pub fn audit_with(&self, cache_samples: usize) -> AuditReport {
        let mut report = AuditReport {
            nodes: self.nodes.len(),
            topologically_sorted: true,
            ..AuditReport::default()
        };
        let n = self.nodes.len();
        let num_vars = self.num_vars() as usize;

        // 1. Terminal integrity.
        if n < 2 {
            report.push(format!("arena holds {n} nodes; terminals missing"));
            return report;
        }
        for t in 0..2u32 {
            let node = self.nodes[t as usize];
            if node.var.0 != TERMINAL_LEVEL || node.low.0 != t || node.high.0 != t {
                report.push(format!("terminal {t} corrupted: {node:?}"));
            }
        }

        // 5. var↔level bijectivity (checked before the per-node order
        // checks, which read through the maps).
        let maps_ok = self.var2level.len() == num_vars && self.level2var.len() == num_vars;
        if !maps_ok {
            report.push(format!(
                "order maps cover {}/{} entries for {num_vars} variables",
                self.var2level.len(),
                self.level2var.len()
            ));
        } else {
            for v in 0..num_vars {
                let level = self.var2level[v] as usize;
                if level >= num_vars {
                    report.push(format!("var {v} maps to out-of-range level {level}"));
                } else if self.level2var[level] as usize != v {
                    report.push(format!(
                        "var↔level maps disagree: var {v} -> level {level} -> var {}",
                        self.level2var[level]
                    ));
                }
            }
        }
        // Level of a node id, robust against a corrupt arena: out-of-
        // bounds children and undeclared variables sort as "deepest".
        let level_of_id = |id: u32| -> u32 {
            match self.nodes.get(id as usize) {
                Some(node) if (node.var.0 as usize) < self.var2level.len() => {
                    self.var2level[node.var.0 as usize]
                }
                _ => TERMINAL_LEVEL,
            }
        };

        // 2–4. Per-node structure, reduction and order.
        for (i, node) in self.nodes.iter().enumerate().skip(2) {
            let i32u = i as u32;
            if node.var.0 as usize >= num_vars {
                report.push(format!("node {i} tests undeclared variable {}", node.var));
                continue;
            }
            let (lo, hi) = (node.low.0, node.high.0);
            if lo as usize >= n || hi as usize >= n {
                report.push(format!(
                    "node {i} has out-of-bounds child ({lo}, {hi}) in an arena of {n}"
                ));
                continue;
            }
            if lo >= i32u || hi >= i32u {
                report.topologically_sorted = false;
            }
            if lo == hi {
                report.push(format!(
                    "node {i} is redundant: both children are {lo} (reduction violated)"
                ));
            }
            if maps_ok {
                let level = self.var2level[node.var.0 as usize];
                if level >= level_of_id(lo) || level >= level_of_id(hi) {
                    report.push(format!(
                        "node {i} ({} at level {level}) not strictly above its children \
                         (levels {}, {})",
                        node.var,
                        level_of_id(lo),
                        level_of_id(hi)
                    ));
                }
            }
            // Unique-table canonicity, node side: this exact triple must
            // resolve back to this index. A duplicate triple can only
            // resolve to one of its nodes, so duplicates are caught here
            // without a second hash pass.
            match self.unique.get(&(node.var.0, lo, hi)) {
                Some(&id) if id == i32u => {}
                Some(&id) => report.push(format!(
                    "nodes {i} and {id} share the triple ({}, {lo}, {hi}) — \
                     hash-consing violated",
                    node.var
                )),
                None => report.push(format!(
                    "node {i} ({}, {lo}, {hi}) missing from the unique table",
                    node.var
                )),
            }
        }

        // Unique-table canonicity, table side: no stray entries.
        report.unique_entries = self.unique.len();
        if self.unique.len() != n.saturating_sub(2) {
            report.push(format!(
                "unique table holds {} entries for {} interior nodes",
                self.unique.len(),
                n - 2
            ));
        }
        for (&(var, lo, hi), &id) in &self.unique {
            match self.nodes.get(id as usize) {
                Some(node) if id >= 2 && (node.var.0, node.low.0, node.high.0) == (var, lo, hi) => {
                }
                _ => report.push(format!(
                    "unique entry ({var}, {lo}, {hi}) -> {id} names no matching node"
                )),
            }
        }

        // 6. Sampled semantic cache soundness. A cached entry whose
        // operands or result fell out of bounds would already be a
        // use-after-free; in-bounds entries are re-checked by evaluation
        // under deterministic pseudo-random assignments.
        let in_bounds = |id: u32| (id as usize) < n;
        let mut checked = 0usize;
        let mut check = |report: &mut AuditReport,
                         label: String,
                         operands: &[u32],
                         result: u32,
                         semantics: &dyn Fn(&[bool]) -> bool| {
            checked += 1;
            if !operands.iter().copied().all(in_bounds) || !in_bounds(result) {
                report.push(format!(
                    "{label}: cache entry references out-of-bounds nodes"
                ));
                return;
            }
            for sample in 0..ASSIGNMENTS_PER_ENTRY {
                let assign = |v: Var| assignment_bit(sample, v);
                let inputs: Vec<bool> = operands
                    .iter()
                    .map(|&f| self.eval(Bdd(f), assign))
                    .collect();
                let expect = semantics(&inputs);
                if self.eval(Bdd(result), assign) != expect {
                    report.push(format!(
                        "{label}: cached result disagrees with its operands \
                         (assignment sample {sample})"
                    ));
                    return;
                }
            }
        };
        for (&(op, f, g), &r) in self.op_cache.iter().take(cache_samples) {
            let semantics: fn(&[bool]) -> bool = match op {
                Op::And => |x| x[0] && x[1],
                Op::Or => |x| x[0] || x[1],
                Op::Xor => |x| x[0] ^ x[1],
            };
            check(
                &mut report,
                format!("op cache {op:?}({f}, {g}) -> {r}"),
                &[f, g],
                r,
                &semantics,
            );
        }
        for (&(f, g, h), &r) in self.ite_cache.iter().take(cache_samples) {
            check(
                &mut report,
                format!("ite cache ({f}, {g}, {h}) -> {r}"),
                &[f, g, h],
                r,
                &|x| if x[0] { x[1] } else { x[2] },
            );
        }
        for (&f, &r) in self.not_cache.iter().take(cache_samples) {
            check(
                &mut report,
                format!("not cache {f} -> {r}"),
                &[f],
                r,
                &|x| !x[0],
            );
        }
        report.cache_entries_checked = checked;
        report
    }

    /// Runs [`Manager::audit`] and panics with the full report on any
    /// violation. The debug hooks after sift/GC/import call this.
    ///
    /// # Panics
    ///
    /// Panics if the audit finds a violation.
    pub fn assert_audit(&self) {
        let report = self.audit();
        assert!(report.is_ok(), "BDD arena audit failed: {report}");
    }

    /// Debug-build hook: audits after structural mutations, free in
    /// release builds.
    #[inline]
    pub(crate) fn debug_audit(&self) {
        #[cfg(debug_assertions)]
        self.assert_audit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Node;

    fn sample_manager() -> (Manager, Vec<Bdd>) {
        let mut m = Manager::new(6);
        let vars: Vec<Bdd> = (0..6).map(|i| m.var(Var(i))).collect();
        let ab = m.and(vars[0], vars[1]);
        let cd = m.or(vars[2], vars[3]);
        let ef = m.xor(vars[4], vars[5]);
        let t = m.ite(ab, cd, ef);
        let nt = m.not(t);
        (m, vec![ab, cd, ef, t, nt])
    }

    #[test]
    fn clean_manager_audits_ok() {
        let (m, _) = sample_manager();
        let report = m.audit_with(usize::MAX);
        assert!(report.is_ok(), "{report}");
        assert!(report.topologically_sorted);
        assert!(report.cache_entries_checked > 0);
        assert_eq!(report.unique_entries, m.arena_size() - 2);
    }

    #[test]
    fn audit_survives_sift_and_gc() {
        let (mut m, mut roots) = sample_manager();
        let _ = m.sift(&mut roots);
        assert!(m.audit_with(usize::MAX).is_ok());
        let gc = m.collect_garbage(&roots);
        for r in roots.iter_mut() {
            *r = gc.remap(*r).unwrap();
        }
        let report = m.audit_with(usize::MAX);
        assert!(report.is_ok(), "{report}");
        assert!(report.topologically_sorted, "GC must leave a sorted arena");
    }

    #[test]
    fn audit_detects_injected_duplicate_node() {
        let (mut m, _) = sample_manager();
        // Clone an interior node verbatim: two nodes now share a triple.
        let node = m.nodes[2];
        m.nodes.push(node);
        let report = m.audit();
        assert!(!report.is_ok());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("triple") || v.contains("unique table")),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_redundant_node() {
        let (mut m, _) = sample_manager();
        let bot = m.bot();
        m.nodes.push(Node {
            var: Var(0),
            low: bot,
            high: bot,
        });
        let report = m.audit();
        assert!(
            report.violations.iter().any(|v| v.contains("redundant")),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_order_violation() {
        let (mut m, _) = sample_manager();
        // A Var(5) node whose child tests Var(0): upside-down in the
        // identity order.
        let above = m.nodes.len() as u32;
        let child = Node {
            var: Var(0),
            low: Bdd(0),
            high: Bdd(1),
        };
        m.nodes.push(child);
        m.unique.insert((0, 0, 1), above);
        let parent = Node {
            var: Var(5),
            low: Bdd(above),
            high: Bdd(1),
        };
        m.nodes.push(parent);
        m.unique.insert((5, above, 1), above + 1);
        let report = m.audit();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("strictly above")),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_stale_op_cache_entry() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let _ = m.and(a, b);
        // Poison the cache: claim a ∧ b is ⊤.
        m.op_cache.insert((Op::And, a.0, b.0), 1);
        let report = m.audit_with(usize::MAX);
        assert!(
            report.violations.iter().any(|v| v.contains("op cache")),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_stale_ite_and_not_entries() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let _ = m.ite(a, b, c);
        let _ = m.not(a);
        m.ite_cache.insert((a.0, b.0, c.0), 0);
        m.not_cache.insert(a.0, a.0);
        let report = m.audit_with(usize::MAX);
        assert!(
            report.violations.iter().any(|v| v.contains("ite cache")),
            "{report}"
        );
        assert!(
            report.violations.iter().any(|v| v.contains("not cache")),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_broken_level_maps() {
        let (mut m, _) = sample_manager();
        // Make var2level non-invertible without touching level2var.
        m.var2level[0] = m.var2level[1];
        let report = m.audit();
        assert!(
            report.violations.iter().any(|v| v.contains("var↔level")),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_unique_table_strays_and_gaps() {
        let (mut m, _) = sample_manager();
        // A stray entry naming no node.
        m.unique.insert((0, 7, 8), 9999);
        let report = m.audit();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("no matching node")),
            "{report}"
        );
        // Remove a legitimate entry: node side now flags the gap.
        let (mut m, _) = sample_manager();
        let node = m.nodes[2];
        m.unique.remove(&(node.var.0, node.low.0, node.high.0));
        let report = m.audit();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("missing from the unique table")),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_out_of_bounds_children() {
        let (mut m, _) = sample_manager();
        let bogus = m.nodes.len() as u32 + 100;
        m.nodes.push(Node {
            var: Var(0),
            low: Bdd(bogus),
            high: Bdd(1),
        });
        let report = m.audit();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("out-of-bounds child")),
            "{report}"
        );
    }

    #[test]
    fn violation_count_keeps_counting_past_the_report_cap() {
        let (mut m, _) = sample_manager();
        let node = m.nodes[2];
        for _ in 0..(MAX_REPORTED * 3) {
            m.nodes.push(node);
        }
        let report = m.audit();
        assert!(report.violation_count > report.violations.len());
        assert_eq!(report.violations.len(), MAX_REPORTED);
        let rendered = report.to_string();
        assert!(rendered.contains("more"), "{rendered}");
    }

    #[test]
    fn import_leaves_both_arenas_auditable() {
        let (worker, roots) = sample_manager();
        let mut parent = Manager::new(6);
        let _ = parent.import_many(&worker, &roots);
        assert!(parent.audit_with(usize::MAX).is_ok());
        assert!(worker.audit_with(usize::MAX).is_ok());
    }

    #[test]
    #[should_panic(expected = "audit failed")]
    fn assert_audit_panics_on_corruption() {
        let (mut m, _) = sample_manager();
        let node = m.nodes[2];
        m.nodes.push(node);
        m.assert_audit();
    }
}
