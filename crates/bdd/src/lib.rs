//! # `bfl-bdd` — a reduced ordered binary decision diagram engine
//!
//! This crate implements the BDD substrate required by the BFL model-checking
//! algorithms of *"BFL: a Logic to Reason about Fault Trees"* (Nicoletti,
//! Hahn & Stoelinga, DSN 2022). It is a self-contained, from-scratch
//! implementation in the style of classical BDD packages
//! (Brace–Rudell–Bryant 1990, Andersen 1997, Ben-Ari 2012):
//!
//! * hash-consed node storage with a unique table, so every Boolean function
//!   has exactly one reduced representation per [`Manager`];
//! * memoised [`ite`](Manager::ite)-based `apply` operations
//!   (`∧ ∨ ⊕ ⇒ ≡ ¬`);
//! * [`restrict`](Manager::restrict) (cofactor), existential/universal
//!   quantification, the combined *relational product*
//!   [`and_exists`](Manager::and_exists), variable
//!   [`rename`](Manager::rename) (used for the `V ↷ V′` priming step of the
//!   paper's `MCS` construction) and [`compose`](Manager::compose);
//! * satisfiability services: [`eval`](Manager::eval),
//!   [`any_sat`](Manager::any_sat), the `AllSat` path iterator
//!   ([`sat_paths`](Manager::sat_paths)), full-vector enumeration
//!   ([`sat_vectors`](Manager::sat_vectors)) and model counting
//!   ([`sat_count`](Manager::sat_count));
//! * the subset/superset vector relations of the paper's Algorithm 1
//!   ([`strict_subset`](Manager::strict_subset),
//!   [`strict_superset`](Manager::strict_superset));
//! * **cross-arena stitching**: [`import`](Manager::import),
//!   [`import_many`](Manager::import_many) and
//!   [`import_substitute`](Manager::import_substitute) copy diagrams
//!   between managers — hash-consed into the destination's unique table
//!   and order-checked, so per-worker arenas can compile fault-tree
//!   modules in parallel and stitch the results into a parent manager
//!   with node-for-node identical diagrams;
//! * **dynamic maintenance**: Rudell-style sifting reordering
//!   ([`sift`](Manager::sift), built on the in-place
//!   [`swap_adjacent_levels`](Manager::swap_adjacent_levels) primitive)
//!   and mark-and-sweep garbage collection with arena compaction
//!   ([`collect_garbage`](Manager::collect_garbage));
//! * Graphviz export ([`to_dot`](Manager::to_dot)) used to reproduce the
//!   BDD figures of the paper;
//! * **self-auditing**: [`Manager::audit`] verifies the whole arena
//!   (unique-table canonicity, reduction, order, var↔level bijectivity,
//!   sampled cache soundness) and returns an [`AuditReport`]; debug
//!   builds run it automatically after every sift, collection and
//!   import.
//!
//! Variables are identified by a stable id: a fresh manager places
//! [`Var(k)`](Var) at level `k`, and dynamic reordering moves variables
//! between levels without changing their identity ([`Manager::level_of`]
//! / [`Manager::var_at_level`] expose the current order). Clients that
//! need a domain-specific order (e.g. fault-tree orderings) maintain the
//! mapping between domain objects and variable ids; see the
//! `bfl-fault-tree` crate.
//!
//! ## Example
//!
//! ```
//! use bfl_bdd::{Manager, Var};
//!
//! let mut m = Manager::new(2);
//! let x = m.var(Var(0));
//! let y = m.var(Var(1));
//! let f = m.or(x, y);
//!
//! assert!(m.eval(f, |v| v == Var(1)));
//! assert_eq!(m.sat_count(f, 2), 3); // 01, 10, 11
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod dot;
mod gc;
mod import;
mod manager;
mod ops;
mod prob;
mod reorder;
mod sat;
mod subset;
pub mod zdd;

pub use audit::AuditReport;
pub use gc::{Gc, GcStats};
pub use manager::{Bdd, Manager, Node, Var};
pub use reorder::{SiftOptions, SiftStats};
pub use sat::{SatPath, SatPaths, SatVectors};
pub use zdd::{Zdd, ZddManager};
