//! Mark-and-sweep garbage collection with arena compaction.
//!
//! The manager's arena only ever grows while operations run; long-lived
//! sessions (and especially [sifting](crate::Manager::sift), whose
//! level swaps rewrite nodes in place and leave the old children behind)
//! accumulate dead nodes. [`Manager::collect_garbage`] reclaims them:
//!
//! 1. **mark** — walk the diagram from a caller-supplied root list;
//! 2. **sweep** — rebuild the arena with only the live nodes, in
//!    topological (children-first) order;
//! 3. **remap** — rebuild the unique table, drop every memoisation cache
//!    (their keys are old node indices) and hand the caller a [`Gc`]
//!    record that translates old [`Bdd`] handles to their new values.
//!
//! Any handle *not* reachable from the supplied roots is gone after the
//! sweep; clients own their root lists (e.g. `TreeBdd` passes its
//! element-translation cache, the engine layer adds formula caches and
//! prepared-query roots) and must remap every handle they keep.

use std::collections::HashMap;

use crate::manager::{Bdd, Manager, Node};

/// Sentinel for "this node did not survive the sweep".
const DEAD: u32 = u32::MAX;

/// Statistics of one [`Manager::collect_garbage`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Arena size (nodes, terminals included) before the sweep.
    pub arena_before: usize,
    /// Arena size after compaction.
    pub arena_after: usize,
    /// Nodes reclaimed (`arena_before - arena_after`).
    pub collected: usize,
}

impl GcStats {
    /// Merges a later collection into this record: the span keeps the
    /// original `arena_before`, takes the latest `arena_after`, and
    /// accumulates `collected`.
    pub fn absorb(&mut self, other: &GcStats) {
        self.arena_after = other.arena_after;
        self.collected += other.collected;
    }
}

/// The outcome of a collection: statistics plus the old-handle → new-handle
/// translation. Returned by [`Manager::collect_garbage`].
///
/// The translation is only meaningful for the arena state the collection
/// ran on; remap every retained handle immediately, before any further
/// manager operation.
#[derive(Debug, Clone)]
pub struct Gc {
    stats: GcStats,
    /// old node index -> new node index (or [`DEAD`]).
    map: Vec<u32>,
}

impl Gc {
    /// Statistics of this collection.
    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Translates a pre-collection handle to its compacted value.
    ///
    /// Returns `None` if the node was not reachable from the collection's
    /// roots (the handle is dead). Terminals always survive.
    pub fn remap(&self, f: Bdd) -> Option<Bdd> {
        match self.map.get(f.id() as usize) {
            Some(&n) if n != DEAD => Some(Bdd(n)),
            _ => None,
        }
    }
}

impl Manager {
    /// Mark-and-sweep garbage collection over the given `roots`, with
    /// arena compaction.
    ///
    /// Every node reachable from `roots` (plus the two terminals)
    /// survives and is assigned a fresh, dense index; everything else is
    /// reclaimed. The unique table is rebuilt and **all memoisation
    /// caches are dropped** (their keys name old indices). The returned
    /// [`Gc`] translates old handles: callers must remap every handle
    /// they keep and discard the rest.
    ///
    /// The variable order is untouched; collection composes freely with
    /// [`Manager::sift`] (collect first so the sift works on live nodes
    /// only, and collect afterwards to reclaim the swap debris).
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(3);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let keep = m.and(a, b);
    /// let scratch = m.or(a, b); // dead after this scope
    /// let _ = scratch;
    ///
    /// let before = m.arena_size();
    /// let gc = m.collect_garbage(&[keep]);
    /// let keep = gc.remap(keep).expect("rooted handles survive");
    /// assert!(m.arena_size() < before);
    /// assert_eq!(gc.stats().collected, before - m.arena_size());
    /// // The remapped handle still evaluates identically.
    /// assert!(m.eval(keep, |_| true));
    /// assert!(!m.eval(keep, |v| v == Var(0)));
    /// ```
    pub fn collect_garbage(&mut self, roots: &[Bdd]) -> Gc {
        let arena_before = self.nodes.len();
        let mut map = vec![DEAD; arena_before];
        map[0] = 0;
        map[1] = 1;
        let mut new_nodes: Vec<Node> = vec![self.nodes[0], self.nodes[1]];
        // Iterative post-order from the roots: children are assigned new
        // indices before their parents, so the compacted arena is
        // topologically sorted (child index < parent index) even when the
        // old arena was not (in-place level swaps break that invariant).
        let mut stack: Vec<(u32, bool)> = roots.iter().map(|r| (r.id(), false)).collect();
        while let Some((i, expanded)) = stack.pop() {
            if map[i as usize] != DEAD {
                continue;
            }
            let node = self.nodes[i as usize];
            if expanded {
                let low = map[node.low.0 as usize];
                let high = map[node.high.0 as usize];
                debug_assert!(low != DEAD && high != DEAD, "child swept before parent");
                map[i as usize] = new_nodes.len() as u32;
                new_nodes.push(Node {
                    var: node.var,
                    low: Bdd(low),
                    high: Bdd(high),
                });
            } else {
                stack.push((i, true));
                stack.push((node.low.0, false));
                stack.push((node.high.0, false));
            }
        }
        let mut unique = HashMap::with_capacity(new_nodes.len());
        for (i, n) in new_nodes.iter().enumerate().skip(2) {
            let prev = unique.insert((n.var.0, n.low.0, n.high.0), i as u32);
            debug_assert!(prev.is_none(), "duplicate node survived the sweep");
        }
        self.nodes = new_nodes;
        self.unique = unique;
        self.op_cache.clear();
        self.ite_cache.clear();
        self.not_cache.clear();
        let arena_after = self.nodes.len();
        // Debug builds re-verify the full arena after every collection —
        // including the post-GC-only guarantee of topological sortedness.
        #[cfg(debug_assertions)]
        {
            let report = self.audit();
            assert!(
                report.is_ok() && report.topologically_sorted,
                "post-GC arena audit failed: {report}"
            );
        }
        Gc {
            stats: GcStats {
                arena_before,
                arena_after,
                collected: arena_before - arena_after,
            },
            map,
        }
    }

    /// Number of nodes (terminals included) reachable from `roots` — the
    /// size the arena would have after [`Manager::collect_garbage`] with
    /// the same root list.
    pub fn live_size(&self, roots: &[Bdd]) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        seen[0] = true;
        seen[1] = true;
        let mut count = 2usize;
        let mut stack: Vec<u32> = roots.iter().map(|r| r.id()).collect();
        while let Some(i) = stack.pop() {
            if seen[i as usize] {
                continue;
            }
            seen[i as usize] = true;
            count += 1;
            let node = self.nodes[i as usize];
            stack.push(node.low.0);
            stack.push(node.high.0);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use crate::manager::{Manager, Var};

    #[test]
    fn collection_reclaims_unrooted_nodes() {
        let mut m = Manager::new(4);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let keep = m.and(a, b);
        let ab = m.or(a, b);
        let dead = m.and(ab, c);
        let _ = dead;
        let before = m.arena_size();
        let gc = m.collect_garbage(&[keep]);
        assert!(m.arena_size() < before);
        assert_eq!(gc.stats().arena_before, before);
        assert_eq!(gc.stats().arena_after, m.arena_size());
        assert!(gc.remap(dead).is_none());
        let keep2 = gc.remap(keep).unwrap();
        // keep = a ∧ b: root + one interior + two terminals.
        assert_eq!(m.node_count(keep2), 4);
        assert_eq!(m.arena_size(), 4);
    }

    #[test]
    fn terminals_always_survive() {
        let mut m = Manager::new(1);
        let x = m.var(Var(0));
        let _ = x;
        let gc = m.collect_garbage(&[]);
        assert_eq!(m.arena_size(), 2);
        assert_eq!(gc.remap(m.bot()), Some(m.bot()));
        assert_eq!(gc.remap(m.top()), Some(m.top()));
    }

    #[test]
    fn remapped_handles_keep_their_function() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let garbage = m.xor(a, c);
        let _ = garbage;
        let truth: Vec<bool> = (0..8u32)
            .map(|bits| m.eval(f, |v| (bits >> v.index()) & 1 == 1))
            .collect();
        let gc = m.collect_garbage(&[f, a, b, c]);
        let f = gc.remap(f).unwrap();
        for (bits, &expect) in truth.iter().enumerate() {
            let bits = bits as u32;
            assert_eq!(m.eval(f, |v| (bits >> v.index()) & 1 == 1), expect);
        }
        // Rebuilding the same function lands on the same (compacted) node.
        let a = gc.remap(a).unwrap();
        let b = gc.remap(b).unwrap();
        let c = gc.remap(c).unwrap();
        let ab = m.and(a, b);
        assert_eq!(m.or(ab, c), f);
    }

    #[test]
    fn operations_work_after_collection() {
        let mut m = Manager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.and(a, b);
        let gc = m.collect_garbage(&[f]);
        let f = gc.remap(f).unwrap();
        // Caches were cleared; recompute through the rebuilt unique table.
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let g = m.and(a, b);
        assert_eq!(f, g);
        let n = m.not(f);
        let back = m.not(n);
        assert_eq!(back, f);
    }

    #[test]
    fn live_size_matches_post_gc_arena() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.or(a, b);
        let junk = m.var(Var(2));
        let _ = junk;
        let live = m.live_size(&[f]);
        m.collect_garbage(&[f]);
        assert_eq!(m.arena_size(), live);
    }
}
