//! Graphviz (DOT) export of BDDs, used to reproduce the diagram figures of
//! the paper (Fig. 3 and the Example 2/3 diagrams).

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::manager::{Bdd, Manager};

impl Manager {
    /// Renders the BDD rooted at `f` as a Graphviz `digraph`.
    ///
    /// `label` names a variable for display; pass `|v| v.to_string()` for
    /// the default `x0, x1, …` names. Low edges are dashed (the convention
    /// used in the paper's figures), high edges solid.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(2);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let f = m.or(a, b);
    /// let dot = m.to_dot(f, |v| format!("e{}", v.index() + 1));
    /// assert!(dot.contains("digraph bdd"));
    /// assert!(dot.contains("e1"));
    /// ```
    pub fn to_dot<L: Fn(crate::Var) -> String>(&self, f: Bdd, label: L) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph bdd {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(
            out,
            "  node [shape=circle, fontname=\"Helvetica\", fixedsize=false];"
        );
        let mut seen = HashSet::new();
        let mut stack = vec![f];
        let mut reach_terminal = [false, false];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.0) {
                continue;
            }
            if n.is_terminal() {
                reach_terminal[n.0 as usize] = true;
                continue;
            }
            let node = self.node(n);
            let _ = writeln!(out, "  n{} [label=\"{}\"];", n.0, label(node.var));
            let _ = writeln!(out, "  n{} -> n{} [style=dashed];", n.0, node.low.0);
            let _ = writeln!(out, "  n{} -> n{};", n.0, node.high.0);
            stack.push(node.low);
            stack.push(node.high);
        }
        for (value, reached) in reach_terminal.iter().enumerate() {
            if *reached {
                let _ = writeln!(out, "  n{value} [shape=square, label=\"{value}\"];");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Var;

    #[test]
    fn dot_for_or_gate_matches_fig3_shape() {
        // Fig. 3 of the paper: OR over e1, e2 — a chain of two decision
        // nodes with both terminals.
        let mut m = Manager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.or(a, b);
        let dot = m.to_dot(f, |v| format!("e{}", v.index() + 1));
        assert!(dot.contains("label=\"e1\""));
        assert!(dot.contains("label=\"e2\""));
        assert!(dot.contains("shape=square, label=\"0\""));
        assert!(dot.contains("shape=square, label=\"1\""));
        // Two interior nodes.
        assert_eq!(dot.matches("style=dashed").count(), 2);
    }

    #[test]
    fn dot_for_terminal() {
        let m = Manager::new(0);
        let dot = m.to_dot(m.top(), |v| v.to_string());
        assert!(dot.contains("label=\"1\""));
        assert!(!dot.contains("label=\"0\""));
    }
}
