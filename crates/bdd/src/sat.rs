//! Satisfiability services: evaluation, witnesses, `AllSat` enumeration and
//! model counting.

use std::collections::HashSet;

use crate::manager::{Bdd, Manager, Var};

/// A (partial) satisfying path through a BDD: the variables actually
/// decided on a root-to-⊤ path together with their values. Variables not
/// mentioned are *don't-cares* for this path.
pub type SatPath = Vec<(Var, bool)>;

impl Manager {
    /// Evaluates `f` under the assignment `assign` (Algorithm 2 substrate:
    /// walks from the root following the low/high child per variable).
    pub fn eval<A: Fn(Var) -> bool>(&self, f: Bdd, assign: A) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.node(cur);
            cur = if assign(node.var) {
                node.high
            } else {
                node.low
            };
        }
        cur.is_true()
    }

    /// The set of variables occurring in `f` (`VarB` in the paper).
    ///
    /// Because the diagram is reduced, this *syntactic* support coincides
    /// with the *semantic* support: a variable occurs in the diagram if and
    /// only if the represented function depends on it. This fact is what
    /// makes the paper's `IDP` translation exact.
    pub fn support(&self, f: Bdd) -> Vec<Var> {
        let mut seen = HashSet::new();
        let mut vars = HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n.0) {
                continue;
            }
            let node = self.node(n);
            vars.insert(node.var);
            stack.push(node.low);
            stack.push(node.high);
        }
        let mut vars: Vec<Var> = vars.into_iter().collect();
        vars.sort();
        vars
    }

    /// Returns some satisfying path if `f` is satisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<SatPath> {
        if f.is_false() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.node(cur);
            // Prefer the child that can still reach ⊤; low first for the
            // lexicographically smallest witness.
            if !node.low.is_false() {
                path.push((node.var, false));
                cur = node.low;
            } else {
                path.push((node.var, true));
                cur = node.high;
            }
        }
        debug_assert!(cur.is_true());
        Some(path)
    }

    /// Number of satisfying assignments of `f` over the variable universe
    /// `Var(0) .. Var(num_vars)`.
    ///
    /// The count is a property of the represented *function*: it does not
    /// change when the variable order does (e.g. after
    /// [`Manager::sift`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` is smaller than a variable in the support of
    /// `f`, or if the count overflows `u128`.
    pub fn sat_count(&self, f: Bdd, num_vars: u32) -> u128 {
        let universe: Vec<Var> = (0..num_vars).map(Var).collect();
        self.sat_count_over(f, &universe)
    }

    /// Number of satisfying assignments of `f` over an explicit variable
    /// `universe` (strictly ascending variable ids). Unlike
    /// [`Manager::sat_count`], variables outside the universe are ignored
    /// entirely, so managers hosting auxiliary (e.g. primed) variables can
    /// count over just their primary variables.
    ///
    /// The walk follows the *current* variable order internally, so the
    /// count stays correct after dynamic reordering.
    ///
    /// # Panics
    ///
    /// Panics if the support of `f` is not contained in `universe`, if
    /// `universe` is not strictly ascending, or on `u128` overflow.
    pub fn sat_count_over(&self, f: Bdd, universe: &[Var]) -> u128 {
        assert!(
            universe.windows(2).all(|w| w[0] < w[1]),
            "universe must be strictly ascending"
        );
        for v in self.support(f) {
            assert!(universe.contains(&v), "support {v} outside universe");
        }
        // The recursion consumes the universe top level first; sort a copy
        // by the current order so the walk matches the diagram.
        let mut by_level: Vec<Var> = universe.to_vec();
        by_level.sort_unstable_by_key(|&v| self.level_of(v));
        let mut memo = std::collections::HashMap::new();
        self.sat_count_over_rec(f, &by_level, 0, &mut memo)
    }

    fn sat_count_over_rec(
        &self,
        f: Bdd,
        universe: &[Var],
        idx: usize,
        memo: &mut std::collections::HashMap<(u32, usize), u128>,
    ) -> u128 {
        if f.is_false() {
            return 0;
        }
        let remaining = (universe.len() - idx) as u32;
        if f.is_true() {
            return 1u128.checked_shl(remaining).unwrap_or_else(|| {
                panic!("sat count overflow: universe wider than 128 variables")
            });
        }
        debug_assert!(idx < universe.len(), "support outside universe");
        if let Some(&c) = memo.get(&(f.id(), idx)) {
            return c;
        }
        let v = universe[idx];
        let node = self.node(f);
        let total = if node.var == v {
            let lo = self.sat_count_over_rec(node.low, universe, idx + 1, memo);
            let hi = self.sat_count_over_rec(node.high, universe, idx + 1, memo);
            lo.checked_add(hi)
                .unwrap_or_else(|| panic!("sat count overflow: universe wider than 128 variables"))
        } else {
            debug_assert!(
                self.level_of(node.var) > self.level_of(v),
                "universe must cover the support in order"
            );
            let sub = self.sat_count_over_rec(f, universe, idx + 1, memo);
            sub.checked_mul(2)
                .unwrap_or_else(|| panic!("sat count overflow: universe wider than 128 variables"))
        };
        memo.insert((f.id(), idx), total);
        total
    }

    /// Iterates over all satisfying *paths* of `f` (the classical `AllSat`).
    ///
    /// Each yielded [`SatPath`] fixes only the variables decided on the
    /// path; unmentioned variables are don't-cares. Use
    /// [`Manager::sat_vectors`] to expand paths into complete vectors.
    pub fn sat_paths<'a>(&'a self, f: Bdd) -> SatPaths<'a> {
        SatPaths::new(self, f)
    }

    /// Iterates over all complete satisfying assignments of `f` over the
    /// ordered variable universe `vars` (which must cover the support).
    ///
    /// This implements the paper's Algorithm 3: collect every path to the
    /// terminal `1` and expand don't-cares.
    ///
    /// # Panics
    ///
    /// Panics if the support of `f` is not contained in `vars`.
    pub fn sat_vectors<'a>(&'a self, f: Bdd, vars: &[Var]) -> SatVectors<'a> {
        let support = self.support(f);
        for v in &support {
            assert!(
                vars.contains(v),
                "support variable {v} missing from universe"
            );
        }
        SatVectors {
            paths: SatPaths::new(self, f),
            vars: vars.to_vec(),
            current: None,
        }
    }
}

/// Iterator over the satisfying paths of a BDD (see
/// [`Manager::sat_paths`]).
#[derive(Debug)]
pub struct SatPaths<'a> {
    manager: &'a Manager,
    /// DFS stack of (node, path-so-far).
    stack: Vec<(Bdd, SatPath)>,
}

impl<'a> SatPaths<'a> {
    fn new(manager: &'a Manager, f: Bdd) -> Self {
        SatPaths {
            manager,
            stack: vec![(f, Vec::new())],
        }
    }
}

impl<'a> Iterator for SatPaths<'a> {
    type Item = SatPath;

    fn next(&mut self) -> Option<SatPath> {
        while let Some((n, path)) = self.stack.pop() {
            if n.is_false() {
                continue;
            }
            if n.is_true() {
                return Some(path);
            }
            let node = self.manager.node(n);
            // Push high first so low-branch paths are yielded first
            // (lexicographic order with 0 < 1).
            let mut high_path = path.clone();
            high_path.push((node.var, true));
            self.stack.push((node.high, high_path));
            let mut low_path = path;
            low_path.push((node.var, false));
            self.stack.push((node.low, low_path));
        }
        None
    }
}

/// Iterator over complete satisfying vectors (see
/// [`Manager::sat_vectors`]). Yields one `Vec<bool>` per model, aligned
/// with the variable universe passed at construction.
#[derive(Debug)]
pub struct SatVectors<'a> {
    paths: SatPaths<'a>,
    vars: Vec<Var>,
    /// Expansion state for the current path: fixed template plus the
    /// indices of free (don't-care) positions and a counter.
    current: Option<Expansion>,
}

#[derive(Debug)]
struct Expansion {
    template: Vec<bool>,
    free: Vec<usize>,
    counter: u64,
}

impl<'a> Iterator for SatVectors<'a> {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Vec<bool>> {
        loop {
            if let Some(exp) = &mut self.current {
                let total = 1u64 << exp.free.len();
                if exp.counter < total {
                    let mut vec = exp.template.clone();
                    for (bit, &idx) in exp.free.iter().enumerate() {
                        vec[idx] = (exp.counter >> bit) & 1 == 1;
                    }
                    exp.counter += 1;
                    return Some(vec);
                }
                self.current = None;
            }
            let path = self.paths.next()?;
            let mut template = vec![false; self.vars.len()];
            let mut fixed = vec![false; self.vars.len()];
            for (v, val) in path {
                if let Some(idx) = self.vars.iter().position(|&u| u == v) {
                    template[idx] = val;
                    fixed[idx] = true;
                }
            }
            let free: Vec<usize> = (0..self.vars.len()).filter(|&i| !fixed[i]).collect();
            assert!(free.len() < 63, "don't-care expansion too large");
            self.current = Some(Expansion {
                template,
                free,
                counter: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_or() {
        let mut m = Manager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.or(a, b);
        assert!(!m.eval(f, |_| false));
        assert!(m.eval(f, |v| v == Var(0)));
        assert!(m.eval(f, |v| v == Var(1)));
        assert!(m.eval(f, |_| true));
    }

    #[test]
    fn support_is_semantic() {
        let mut m = Manager::new(2);
        let a = m.var(Var(0));
        let na = m.not(a);
        let taut = m.or(a, na); // a ∨ ¬a reduces to ⊤
        assert!(taut.is_true());
        assert!(m.support(taut).is_empty());
        let b = m.var(Var(1));
        let f = m.and(a, b);
        assert_eq!(m.support(f), vec![Var(0), Var(1)]);
    }

    #[test]
    fn any_sat_finds_witness() {
        let mut m = Manager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.and(a, b);
        let w = m.any_sat(f).unwrap();
        assert_eq!(w, vec![(Var(0), true), (Var(1), true)]);
        assert!(m.any_sat(m.bot()).is_none());
        assert_eq!(m.any_sat(m.top()).unwrap(), vec![]);
    }

    #[test]
    fn sat_count_small_functions() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.or(a, b);
        assert_eq!(m.sat_count(f, 2), 3);
        assert_eq!(m.sat_count(f, 3), 6);
        assert_eq!(m.sat_count(m.top(), 3), 8);
        assert_eq!(m.sat_count(m.bot(), 3), 0);
        let lit = m.var(Var(2));
        assert_eq!(m.sat_count(lit, 3), 4);
    }

    #[test]
    fn sat_paths_of_or() {
        let mut m = Manager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.or(a, b);
        let paths: Vec<SatPath> = m.sat_paths(f).collect();
        assert_eq!(
            paths,
            vec![vec![(Var(0), false), (Var(1), true)], vec![(Var(0), true)],]
        );
    }

    #[test]
    fn sat_vectors_expand_dont_cares() {
        let mut m = Manager::new(2);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let f = m.or(a, b);
        let mut vecs: Vec<Vec<bool>> = m.sat_vectors(f, &[Var(0), Var(1)]).collect();
        vecs.sort();
        assert_eq!(
            vecs,
            vec![vec![false, true], vec![true, false], vec![true, true],]
        );
    }

    #[test]
    fn sat_vectors_of_constant_true() {
        let m = Manager::new(2);
        let vecs: Vec<Vec<bool>> = m.sat_vectors(m.top(), &[Var(0), Var(1)]).collect();
        assert_eq!(vecs.len(), 4);
    }

    #[test]
    #[should_panic(expected = "missing from universe")]
    fn sat_vectors_requires_support_coverage() {
        let mut m = Manager::new(2);
        let b = m.var(Var(1));
        let _ = m.sat_vectors(b, &[Var(0)]).count();
    }
}
