//! Dynamic variable reordering: the adjacent-level swap primitive and
//! Rudell-style sifting.
//!
//! BDD size is dominated by the variable order (Section V-A of the paper;
//! Rudell 1993). This module makes the order *dynamic*:
//!
//! * [`Manager::swap_adjacent_levels`] exchanges two adjacent levels **in
//!   place**: nodes at the upper level are rewritten (their children
//!   re-expressed through the new upper variable), every other node —
//!   and, crucially, every [`Bdd`] handle — keeps both its index and its
//!   function. Handles, operation caches and client-side variable maps
//!   all stay valid across swaps.
//! * [`Manager::sift`] lifts the primitive to Rudell's sifting: each
//!   variable (or glued block of adjacent levels, see
//!   [`SiftOptions::group`]) is moved through every position of the
//!   order, with a growth cap, and parked where the *live* diagram —
//!   measured against a caller-supplied root list — is smallest.
//!
//! Swaps allocate replacement children and orphan the old ones, so a
//! long sift breeds debris — worse, orphaned nodes still sit at their
//! levels and get re-rewritten by every later swap. [`Manager::sift`]
//! therefore interleaves [`Manager::collect_garbage`] whenever the arena
//! outgrows the live set: the caller's root handles are **remapped in
//! place** (the only observable effect — functions are untouched), which
//! is why sifting borrows its roots mutably. Run a final collection
//! after sifting to reclaim the last round of debris.
//!
//! Cost profile: each swap scans the arena for rewrite candidates and
//! each block move re-marks the live set, so a full pass is
//! `O(blocks² · arena)` — tens of milliseconds on the paper-scale trees
//! this repo targets (see `BENCH_reorder.json`). The classical
//! constant-factor improvement (per-level node lists with incrementally
//! maintained level counts, updated by the swap itself) drops that to
//! `O(blocks² · level-width)` and is the natural next optimisation if
//! trees grow by another order of magnitude.

use crate::manager::{Bdd, Manager, Node, Var};

/// Tuning knobs for [`Manager::sift_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiftOptions {
    /// Number of adjacent levels glued into one moving block.
    ///
    /// `1` sifts single variables. Clients whose encodings pair adjacent
    /// levels (e.g. the fault-tree layer's interleaved primed variables)
    /// sift with `group = 2` so the pairing invariant survives
    /// reordering.
    pub group: u32,
    /// A sift direction is abandoned once the live size exceeds
    /// `max_growth` × the best size seen for the block (Rudell's growth
    /// cap). Must be ≥ 1.
    pub max_growth: f64,
    /// Maximum number of full sifting passes; a pass that fails to shrink
    /// the live size ends the sift early.
    pub passes: u32,
}

impl Default for SiftOptions {
    fn default() -> Self {
        SiftOptions {
            group: 1,
            max_growth: 1.2,
            passes: 2,
        }
    }
}

/// Statistics of one [`Manager::sift`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiftStats {
    /// Live nodes (terminals included) reachable from the roots before
    /// sifting.
    pub live_before: usize,
    /// Live nodes after sifting.
    pub live_after: usize,
    /// Adjacent-level swaps performed.
    pub swaps: usize,
    /// Blocks (variables, for `group = 1`) sifted to their best position.
    pub blocks_sifted: usize,
}

impl SiftStats {
    /// Component-wise accumulation, for layers that sift repeatedly.
    pub fn absorb(&mut self, other: &SiftStats) {
        if self.blocks_sifted == 0 && self.swaps == 0 {
            self.live_before = other.live_before;
        }
        self.live_after = other.live_after;
        self.swaps += other.swaps;
        self.blocks_sifted += other.blocks_sifted;
    }

    /// Fraction of live nodes eliminated, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.live_before == 0 {
            0.0
        } else {
            1.0 - self.live_after as f64 / self.live_before as f64
        }
    }
}

impl Manager {
    /// Swaps the variables at `level` and `level + 1` of the order, in
    /// place.
    ///
    /// This is the reordering primitive: every node keeps its index and
    /// its function, so outstanding [`Bdd`] handles and the operation
    /// caches remain valid. Nodes at the upper level that test the lower
    /// variable are rewritten through freshly allocated children; their
    /// old children may become unreachable (reclaim with
    /// [`Manager::collect_garbage`]).
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a level of this manager.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// let mut m = Manager::new(2);
    /// let a = m.var(Var(0));
    /// let b = m.var(Var(1));
    /// let f = m.and(a, b);
    /// m.swap_adjacent_levels(0);
    /// // The order changed, the function did not.
    /// assert_eq!(m.current_order(), vec![Var(1), Var(0)]);
    /// assert!(m.eval(f, |_| true));
    /// assert!(!m.eval(f, |v| v == Var(0)));
    /// ```
    pub fn swap_adjacent_levels(&mut self, level: u32) {
        assert!(
            level + 1 < self.num_vars(),
            "level {level} out of range for {} variables",
            self.num_vars()
        );
        let x = self.level2var[level as usize]; // moves down
        let y = self.level2var[level as usize + 1]; // moves up

        // Nodes labelled `x` that test `y` below must be rewritten; all
        // other nodes are untouched by the exchange. The scan covers dead
        // nodes too — they are still interned in the unique table and
        // must respect the order.
        let mut rewrite: Vec<u32> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate().skip(2) {
            if node.var.0 == x
                && (self.nodes[node.low.0 as usize].var.0 == y
                    || self.nodes[node.high.0 as usize].var.0 == y)
            {
                rewrite.push(i as u32);
            }
        }
        self.level2var.swap(level as usize, level as usize + 1);
        self.var2level[x as usize] = level + 1;
        self.var2level[y as usize] = level;
        if rewrite.is_empty() {
            return;
        }
        // Drop the stale unique keys first: replacement children are
        // hash-consed and must never resolve to a node that is about to
        // be relabelled.
        for &i in &rewrite {
            let n = self.nodes[i as usize];
            self.unique.remove(&(n.var.0, n.low.0, n.high.0));
        }
        for &i in &rewrite {
            let n = self.nodes[i as usize];
            // Cofactor both children on y (identity when y is absent).
            let (f00, f01) = self.cofactors(n.low, Var(y));
            let (f10, f11) = self.cofactors(n.high, Var(y));
            let low = self.mk(Var(x), f00, f10);
            let high = self.mk(Var(x), f01, f11);
            debug_assert_ne!(low, high, "swap collapsed a live test");
            self.nodes[i as usize] = Node {
                var: Var(y),
                low,
                high,
            };
            let prev = self.unique.insert((y, low.0, high.0), i);
            debug_assert!(prev.is_none(), "swap produced a duplicate node");
        }
    }

    /// Rudell-style sifting with default options (single variables, 1.2×
    /// growth cap): each variable is trial-moved through every level and
    /// parked where the diagram reachable from `roots` is smallest.
    ///
    /// The roots both steer the size metric and anchor the interleaved
    /// garbage collections: pass every handle you intend to keep — they
    /// are rewritten in place when a collection compacts the arena, and
    /// any handle *not* passed is invalid afterwards. The represented
    /// functions never change.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_bdd::{Manager, Var};
    /// // x0 x2 ∨ x1 x3: the identity order interleaves the pairs and
    /// // needs 3 extra nodes; sifting finds a pair-adjacent order.
    /// let mut m = Manager::new(4);
    /// let (a, b, c, d) = (m.var(Var(0)), m.var(Var(1)), m.var(Var(2)), m.var(Var(3)));
    /// let ac = m.and(a, c);
    /// let bd = m.and(b, d);
    /// let mut roots = [m.or(ac, bd)];
    /// assert_eq!(m.node_count(roots[0]), 8);
    /// let stats = m.sift(&mut roots);
    /// assert!(stats.live_after < stats.live_before);
    /// assert_eq!(m.node_count(roots[0]), 6);
    /// ```
    pub fn sift(&mut self, roots: &mut [Bdd]) -> SiftStats {
        self.sift_with(roots, SiftOptions::default())
    }

    /// Sifting with explicit [`SiftOptions`] (block size, growth cap,
    /// pass count). See [`Manager::sift`].
    pub fn sift_with(&mut self, roots: &mut [Bdd], opts: SiftOptions) -> SiftStats {
        let group = opts.group.max(1) as usize;
        let max_growth = opts.max_growth.max(1.0);
        let n = self.num_vars() as usize;
        let mut stats = SiftStats {
            live_before: self.live_size(roots),
            ..SiftStats::default()
        };
        stats.live_after = stats.live_before;
        // Partition the levels into glued blocks of `group` adjacent
        // levels (trailing remainder forms a short block). Blocks keep
        // their member variables and internal order forever; only whole
        // blocks move.
        let blocks: Vec<Vec<Var>> = (0..n)
            .step_by(group)
            .map(|start| {
                (start..(start + group).min(n))
                    .map(|l| self.var_at_level(l as u32))
                    .collect()
            })
            .collect();
        if blocks.len() < 2 || stats.live_before <= 2 {
            return stats;
        }
        for _ in 0..opts.passes.max(1) {
            let before_pass = stats.live_after;
            // Current block layout in level order (blocks persist across
            // passes but their positions do not).
            let mut layout: Vec<usize> = (0..blocks.len()).collect();
            layout.sort_by_key(|&b| self.level_of(blocks[b][0]));
            // Process the largest blocks first (Rudell's heuristic).
            let per_block = self.live_counts_per_block(roots, &blocks);
            let mut order: Vec<usize> = (0..blocks.len()).collect();
            order.sort_by_key(|&b| std::cmp::Reverse(per_block[b]));
            for bid in order {
                if per_block[bid] == 0 {
                    continue;
                }
                stats.blocks_sifted += 1;
                self.sift_block(roots, &blocks, &mut layout, bid, max_growth, &mut stats);
            }
            stats.live_after = self.live_size(roots);
            if stats.live_after >= before_pass {
                break;
            }
        }
        self.debug_audit();
        stats
    }

    /// Live interior nodes per block, from one mark pass.
    fn live_counts_per_block(&self, roots: &[Bdd], blocks: &[Vec<Var>]) -> Vec<usize> {
        let mut block_of_var = vec![usize::MAX; self.num_vars() as usize];
        for (b, vars) in blocks.iter().enumerate() {
            for v in vars {
                block_of_var[v.0 as usize] = b;
            }
        }
        let mut counts = vec![0usize; blocks.len()];
        let mut seen = vec![false; self.nodes.len()];
        seen[0] = true;
        seen[1] = true;
        let mut stack: Vec<u32> = roots.iter().map(|r| r.id()).collect();
        while let Some(i) = stack.pop() {
            if seen[i as usize] {
                continue;
            }
            seen[i as usize] = true;
            let node = self.nodes[i as usize];
            counts[block_of_var[node.var.0 as usize]] += 1;
            stack.push(node.low.0);
            stack.push(node.high.0);
        }
        counts
    }

    /// Moves block `bid` down to the bottom, back up to the top, then to
    /// the best position seen (Rudell's down-up schedule with a growth
    /// cap), compacting the arena whenever swap debris piles up.
    fn sift_block(
        &mut self,
        roots: &mut [Bdd],
        blocks: &[Vec<Var>],
        layout: &mut [usize],
        bid: usize,
        max_growth: f64,
        stats: &mut SiftStats,
    ) {
        let len = layout.len();
        let mut pos = layout
            .iter()
            .position(|&b| b == bid)
            .unwrap_or_else(|| unreachable!("block {bid} is always in the layout"));
        let mut best_pos = pos;
        let mut best = self.live_size(roots);
        // Downward phase.
        while pos + 1 < len {
            stats.swaps += self.swap_adjacent_blocks(blocks, layout, pos);
            layout.swap(pos, pos + 1);
            pos += 1;
            let cur = self.gc_debris(roots);
            if cur < best {
                best = cur;
                best_pos = pos;
            } else if cur as f64 > max_growth * best as f64 {
                break;
            }
        }
        // Upward phase, through the starting position to the top.
        while pos > 0 {
            stats.swaps += self.swap_adjacent_blocks(blocks, layout, pos - 1);
            layout.swap(pos - 1, pos);
            pos -= 1;
            let cur = self.gc_debris(roots);
            if cur < best {
                best = cur;
                best_pos = pos;
            } else if cur as f64 > max_growth * best as f64 {
                break;
            }
        }
        // Park at the best position.
        while pos < best_pos {
            stats.swaps += self.swap_adjacent_blocks(blocks, layout, pos);
            layout.swap(pos, pos + 1);
            pos += 1;
        }
        self.gc_debris(roots);
    }

    /// Live size of `roots`; additionally compacts the arena (remapping
    /// `roots` in place) once swap debris dominates it. Orphaned nodes
    /// are not just wasted memory — they still occupy levels and would be
    /// rewritten again by every subsequent swap, so unbounded debris
    /// makes sifting super-linear.
    fn gc_debris(&mut self, roots: &mut [Bdd]) -> usize {
        let live = self.live_size(roots);
        if self.nodes.len() >= 2048 && self.nodes.len() > 4 * live {
            let gc = self.collect_garbage(roots);
            for r in roots.iter_mut() {
                *r = gc
                    .remap(*r)
                    .unwrap_or_else(|| unreachable!("sift root survives its own sweep"));
            }
        }
        live
    }

    /// Swaps the adjacent blocks at layout positions `pos` and `pos + 1`
    /// via adjacent-level swaps; returns the number of swaps performed.
    fn swap_adjacent_blocks(&mut self, blocks: &[Vec<Var>], layout: &[usize], pos: usize) -> usize {
        let start: usize = layout[..pos].iter().map(|&b| blocks[b].len()).sum();
        let a = blocks[layout[pos]].len();
        let b = blocks[layout[pos + 1]].len();
        // Bubble each variable of the lower block up over the upper
        // block, top-most first, preserving both internal orders.
        for j in 0..b {
            let from = start + a + j;
            for k in 0..a {
                self.swap_adjacent_levels((from - k - 1) as u32);
            }
        }
        a * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All 8 evaluations of `f` over 3 variables, keyed by bit `i` = value
    /// of `Var(i)`.
    fn truth3(m: &Manager, f: Bdd) -> Vec<bool> {
        (0..8u32)
            .map(|bits| m.eval(f, |v| (bits >> v.index()) & 1 == 1))
            .collect()
    }

    #[test]
    fn swap_preserves_functions_and_handles() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let c = m.var(Var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let before = truth3(&m, f);
        for level in [0, 1, 0, 1, 0, 1] {
            m.swap_adjacent_levels(level);
            assert_eq!(truth3(&m, f), before, "after swapping level {level}");
        }
        // (s0·s1)³ = identity in S3: the order is back where it started.
        assert_eq!(m.current_order(), vec![Var(0), Var(1), Var(2)]);
    }

    #[test]
    fn swap_updates_the_order_maps() {
        let mut m = Manager::new(3);
        m.swap_adjacent_levels(1);
        assert_eq!(m.current_order(), vec![Var(0), Var(2), Var(1)]);
        assert_eq!(m.level_of(Var(2)), 1);
        assert_eq!(m.level_of(Var(1)), 2);
        assert_eq!(m.var_at_level(0), Var(0));
    }

    #[test]
    fn swap_keeps_canonicity() {
        let mut m = Manager::new(4);
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(Var(i))).collect();
        let f = {
            let x = m.and(vars[0], vars[2]);
            let y = m.and(vars[1], vars[3]);
            m.or(x, y)
        };
        m.swap_adjacent_levels(1);
        m.swap_adjacent_levels(2);
        // Rebuilding the same function must land on the same node.
        let g = {
            let x = m.and(vars[0], vars[2]);
            let y = m.and(vars[1], vars[3]);
            m.or(x, y)
        };
        assert_eq!(f, g);
    }

    #[test]
    fn operations_after_swaps_respect_the_new_order() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let c = m.var(Var(2));
        m.swap_adjacent_levels(0);
        m.swap_adjacent_levels(1);
        // Order is now x1, x2, x0: build something fresh across it.
        let f = m.and(a, c);
        let g = m.restrict(f, Var(2), true);
        assert_eq!(g, a);
        assert_eq!(m.sat_count(f, 3), 2);
    }

    #[test]
    fn sift_finds_the_pair_adjacent_order() {
        // The classic: ⋁ x_i x_{i+n} needs exponential nodes when the
        // pairs are split across the order, linear when adjacent.
        let n = 4u32;
        let mut m = Manager::new(2 * n);
        let mut f = m.bot();
        for i in 0..n {
            let x = m.var(Var(i));
            let y = m.var(Var(i + n));
            let xy = m.and(x, y);
            f = m.or(f, xy);
        }
        let before = m.node_count(f);
        let mut roots = [f];
        let stats = m.sift(&mut roots);
        let f = roots[0];
        let after = m.node_count(f);
        assert_eq!(stats.live_after, m.live_size(&[f]));
        assert!(
            after < before,
            "sift should shrink the split-pair diagram: {before} -> {after}"
        );
        // The optimal pair-adjacent diagram has 2n interior nodes.
        assert_eq!(after, 2 * n as usize + 2);
        // Semantics preserved.
        for bits in 0..(1u32 << (2 * n)) {
            let expect = (0..n).any(|i| (bits >> i) & 1 == 1 && (bits >> (i + n)) & 1 == 1);
            assert_eq!(m.eval(f, |v| (bits >> v.index()) & 1 == 1), expect);
        }
    }

    #[test]
    fn grouped_sift_keeps_blocks_glued() {
        let mut m = Manager::new(6);
        let a = m.var(Var(0));
        let d = m.var(Var(3));
        let e = m.var(Var(4));
        let ad = m.and(a, d);
        let f = m.or(ad, e);
        let _ = m.sift_with(
            &mut [f],
            SiftOptions {
                group: 2,
                ..SiftOptions::default()
            },
        );
        // Pairs (0,1), (2,3), (4,5) must stay adjacent with the even
        // variable on top.
        for pair in [0u32, 2, 4] {
            assert_eq!(
                m.level_of(Var(pair)) + 1,
                m.level_of(Var(pair + 1)),
                "pair {pair} split by grouped sift"
            );
        }
    }

    #[test]
    fn sift_with_empty_roots_is_a_noop() {
        let mut m = Manager::new(3);
        let a = m.var(Var(0));
        let b = m.var(Var(1));
        let _ = m.and(a, b);
        let stats = m.sift(&mut []);
        assert_eq!(stats.swaps, 0);
        assert_eq!(stats.live_before, 2);
    }

    #[test]
    fn sift_then_gc_reclaims_swap_debris() {
        let n = 3u32;
        let mut m = Manager::new(2 * n);
        let mut f = m.bot();
        for i in 0..n {
            let x = m.var(Var(i));
            let y = m.var(Var(i + n));
            let xy = m.and(x, y);
            f = m.or(f, xy);
        }
        let mut roots = [f];
        let stats = m.sift(&mut roots);
        assert!(m.arena_size() >= stats.live_after);
        let gc = m.collect_garbage(&roots);
        let f = gc.remap(roots[0]).unwrap();
        assert_eq!(m.arena_size(), stats.live_after);
        assert_eq!(m.node_count(f), stats.live_after);
    }
}
