//! Edge-case and robustness tests for the BDD engine beyond the
//! property-based oracle suite.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl_bdd::{Manager, Var};

#[test]
fn constants_behave() {
    let mut m = Manager::new(1);
    let t = m.top();
    let f = m.bot();
    assert_eq!(m.and(t, f), f);
    assert_eq!(m.or(t, f), t);
    assert_eq!(m.xor(t, t), f);
    assert_eq!(m.not(t), f);
    assert_eq!(m.implies(f, t), t);
    assert_eq!(m.iff(f, f), t);
    assert_eq!(m.constant(true), t);
    assert_eq!(m.constant(false), f);
}

#[test]
fn restrict_all_applies_in_order() {
    let mut m = Manager::new(3);
    let a = m.var(Var(0));
    let b = m.var(Var(1));
    let c = m.var(Var(2));
    let ab = m.and(a, b);
    let f = m.or(ab, c);
    let r = m.restrict_all(f, &[(Var(0), true), (Var(1), true)]);
    assert!(r.is_true());
    let r2 = m.restrict_all(f, &[(Var(0), false), (Var(2), false)]);
    assert!(r2.is_false());
    let r3 = m.restrict_all(f, &[]);
    assert_eq!(r3, f);
}

#[test]
fn quantifying_missing_variables_is_identity() {
    let mut m = Manager::new(3);
    let a = m.var(Var(0));
    let e = m.exists(a, &[Var(2)]);
    assert_eq!(e, a);
    let f = m.forall(a, &[Var(1), Var(2)]);
    assert_eq!(f, a);
    // Quantifying a constant is a no-op too.
    let t = m.top();
    assert_eq!(m.exists(t, &[Var(0)]), t);
}

#[test]
fn clear_caches_preserves_canonicity() {
    let mut m = Manager::new(2);
    let a = m.var(Var(0));
    let b = m.var(Var(1));
    let f1 = m.and(a, b);
    m.clear_caches();
    let f2 = m.and(a, b);
    assert_eq!(f1, f2, "unique table survives cache clears");
}

#[test]
#[should_panic(expected = "node limit exceeded")]
fn node_limit_enforced() {
    let mut m = Manager::new(16);
    m.set_node_limit(8);
    // Build a function whose BDD needs more than 8 nodes.
    let mut acc = m.bot();
    for i in 0..8 {
        let v = m.var(Var(2 * i));
        let w = m.var(Var(2 * i + 1));
        let p = m.and(v, w);
        acc = m.or(acc, p);
    }
}

#[test]
fn sat_count_handles_wide_universes() {
    let mut m = Manager::new(100);
    let a = m.var(Var(0));
    // One fixed variable, 99 free: 2^99 models.
    assert_eq!(m.sat_count(a, 100), 1u128 << 99);
    assert_eq!(m.sat_count(m.top(), 100), 1u128 << 100);
}

#[test]
fn any_sat_prefers_low_branch() {
    let mut m = Manager::new(2);
    let a = m.var(Var(0));
    let b = m.var(Var(1));
    let f = m.or(a, b);
    // Lexicographically smallest witness: a=0, b=1.
    assert_eq!(m.any_sat(f).unwrap(), vec![(Var(0), false), (Var(1), true)]);
}

#[test]
fn rename_identity_is_noop() {
    let mut m = Manager::new(4);
    let a = m.var(Var(1));
    let b = m.var(Var(3));
    let f = m.xor(a, b);
    let g = m.rename(f, &|v| v);
    assert_eq!(f, g);
}

#[test]
fn deep_chain_is_linear() {
    // x0 ∧ x1 ∧ … ∧ x63: exactly 64 decision nodes + 2 terminals.
    let n = 64;
    let mut m = Manager::new(n);
    let vars: Vec<_> = (0..n).map(|i| m.var(Var(i))).collect();
    let f = m.and_all(vars);
    assert_eq!(m.node_count(f), n as usize + 2);
    assert_eq!(m.sat_count(f, n), 1);
}

#[test]
fn xor_chain_is_linear_not_exponential() {
    // Parity is the classical linear-BDD function.
    let n = 32;
    let mut m = Manager::new(n);
    let mut acc = m.bot();
    for i in 0..n {
        let v = m.var(Var(i));
        acc = m.xor(acc, v);
    }
    assert!(m.node_count(acc) <= 2 * n as usize + 2);
    assert_eq!(m.sat_count(acc, n), 1u128 << (n - 1));
}

#[test]
fn and_exists_short_circuits_to_true() {
    let mut m = Manager::new(4);
    let a = m.var(Var(0));
    let na = m.not(a);
    // ∃a. (a ∨ ¬a) ∧ ⊤ = ⊤
    let f = m.or(a, na);
    let r = m.and_exists(f, m.top(), &[Var(0)]);
    assert!(r.is_true());
}

#[test]
fn support_of_composed_functions() {
    let mut m = Manager::new(3);
    let a = m.var(Var(0));
    let b = m.var(Var(1));
    let c = m.var(Var(2));
    let f = m.ite(a, b, c);
    assert_eq!(m.support(f), vec![Var(0), Var(1), Var(2)]);
    // Composing b := c collapses the ite: a·c + ¬a·c = c.
    let g = m.compose(f, Var(1), c);
    assert_eq!(g, c);
    assert_eq!(m.support(g), vec![Var(2)]);
}
