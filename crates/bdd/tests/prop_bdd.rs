//! Property-based tests: the BDD engine against a brute-force truth-table
//! oracle on randomly generated Boolean expressions.

use bfl_bdd::{Manager, Var};
use proptest::prelude::*;

/// A small Boolean expression AST for oracle testing.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

const NVARS: u32 = 6;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| Expr::Ite(Box::new(a), Box::new(b), Box::new(c))),
        ]
    })
}

fn eval_expr(e: &Expr, bits: u32) -> bool {
    match e {
        Expr::Var(v) => (bits >> v) & 1 == 1,
        Expr::Not(a) => !eval_expr(a, bits),
        Expr::And(a, b) => eval_expr(a, bits) && eval_expr(b, bits),
        Expr::Or(a, b) => eval_expr(a, bits) || eval_expr(b, bits),
        Expr::Xor(a, b) => eval_expr(a, bits) ^ eval_expr(b, bits),
        Expr::Ite(a, b, c) => {
            if eval_expr(a, bits) {
                eval_expr(b, bits)
            } else {
                eval_expr(c, bits)
            }
        }
        Expr::Const(c) => *c,
    }
}

fn build_bdd(m: &mut Manager, e: &Expr) -> bfl_bdd::Bdd {
    match e {
        Expr::Var(v) => m.var(Var(*v)),
        Expr::Not(a) => {
            let x = build_bdd(m, a);
            m.not(x)
        }
        Expr::And(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.xor(x, y)
        }
        Expr::Ite(a, b, c) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            let z = build_bdd(m, c);
            m.ite(x, y, z)
        }
        Expr::Const(c) => m.constant(*c),
    }
}

proptest! {
    /// The BDD agrees with direct expression evaluation on every input.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = build_bdd(&mut m, &e);
        for bits in 0..(1u32 << NVARS) {
            let expect = eval_expr(&e, bits);
            let got = m.eval(f, |v| (bits >> v.index()) & 1 == 1);
            prop_assert_eq!(got, expect, "bits={:b}", bits);
        }
    }

    /// Canonicity: two expressions with equal truth tables get equal handles.
    #[test]
    fn canonicity(e1 in arb_expr(), e2 in arb_expr()) {
        let table = |e: &Expr| -> u64 {
            let mut t = 0u64;
            for bits in 0..(1u32 << NVARS) {
                if eval_expr(e, bits) {
                    t |= 1 << bits;
                }
            }
            t
        };
        let mut m = Manager::new(NVARS);
        let f1 = build_bdd(&mut m, &e1);
        let f2 = build_bdd(&mut m, &e2);
        prop_assert_eq!(table(&e1) == table(&e2), f1 == f2);
    }

    /// sat_count equals the number of true rows of the truth table.
    #[test]
    fn sat_count_matches(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = build_bdd(&mut m, &e);
        let expect = (0..(1u32 << NVARS)).filter(|&b| eval_expr(&e, b)).count() as u128;
        prop_assert_eq!(m.sat_count(f, NVARS), expect);
    }

    /// sat_vectors yields exactly the satisfying rows.
    #[test]
    fn sat_vectors_match(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = build_bdd(&mut m, &e);
        let vars: Vec<Var> = (0..NVARS).map(Var).collect();
        let mut got: Vec<Vec<bool>> = m.sat_vectors(f, &vars).collect();
        got.sort();
        got.dedup();
        let mut expect = Vec::new();
        for bits in 0..(1u32 << NVARS) {
            if eval_expr(&e, bits) {
                expect.push((0..NVARS).map(|v| (bits >> v) & 1 == 1).collect::<Vec<bool>>());
            }
        }
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Shannon expansion: f = ite(v, f[v↦1], f[v↦0]).
    #[test]
    fn restrict_shannon(e in arb_expr(), v in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = build_bdd(&mut m, &e);
        let f1 = m.restrict(f, Var(v), true);
        let f0 = m.restrict(f, Var(v), false);
        let lit = m.var(Var(v));
        let back = m.ite(lit, f1, f0);
        prop_assert_eq!(back, f);
    }

    /// Quantification: ∃v.f is the or of cofactors; ∀v.f the and.
    #[test]
    fn quantification(e in arb_expr(), v in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = build_bdd(&mut m, &e);
        let f1 = m.restrict(f, Var(v), true);
        let f0 = m.restrict(f, Var(v), false);
        let ex = m.exists(f, &[Var(v)]);
        let expect_ex = m.or(f0, f1);
        prop_assert_eq!(ex, expect_ex);
        let fa = m.forall(f, &[Var(v)]);
        let expect_fa = m.and(f0, f1);
        prop_assert_eq!(fa, expect_fa);
    }

    /// and_exists(f, g, V) = ∃V.(f ∧ g).
    #[test]
    fn relational_product(e1 in arb_expr(), e2 in arb_expr(), v1 in 0..NVARS, v2 in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = build_bdd(&mut m, &e1);
        let g = build_bdd(&mut m, &e2);
        let vars = if v1 == v2 { vec![Var(v1)] } else { vec![Var(v1), Var(v2)] };
        let fused = m.and_exists(f, g, &vars);
        let conj = m.and(f, g);
        let naive = m.exists(conj, &vars);
        prop_assert_eq!(fused, naive);
    }

    /// support() returns exactly the variables the function depends on.
    #[test]
    fn support_semantic(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = build_bdd(&mut m, &e);
        let support = m.support(f);
        for v in 0..NVARS {
            let f1 = m.restrict(f, Var(v), true);
            let f0 = m.restrict(f, Var(v), false);
            let depends = f1 != f0;
            prop_assert_eq!(support.contains(&Var(v)), depends, "var {}", v);
        }
    }

    /// Renaming by an order-preserving shift preserves semantics modulo the
    /// variable map.
    #[test]
    fn rename_shift(e in arb_expr()) {
        let mut m = Manager::new(2 * NVARS);
        let f = build_bdd(&mut m, &e);
        let g = m.rename(f, &|v| Var(v.index() + NVARS));
        for bits in 0..(1u32 << NVARS) {
            let ef = m.eval(f, |v| (bits >> v.index()) & 1 == 1);
            let eg = m.eval(g, |v| {
                assert!(v.index() >= NVARS);
                (bits >> (v.index() - NVARS)) & 1 == 1
            });
            prop_assert_eq!(ef, eg);
        }
    }

    /// compose(f, v, g) equals substitution in the truth table.
    #[test]
    fn compose_matches(e1 in arb_expr(), e2 in arb_expr(), v in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = build_bdd(&mut m, &e1);
        let g = build_bdd(&mut m, &e2);
        let h = m.compose(f, Var(v), g);
        for bits in 0..(1u32 << NVARS) {
            let gv = eval_expr(&e2, bits);
            let newbits = if gv { bits | (1 << v) } else { bits & !(1 << v) };
            let expect = eval_expr(&e1, newbits);
            let got = m.eval(h, |u| (bits >> u.index()) & 1 == 1);
            prop_assert_eq!(got, expect);
        }
    }
}
