//! `bfl` — command-line front-end for Boolean Fault tree Logic.
//!
//! ```text
//! bfl check  --ft FILE --failed A,B,C 'FORMULA-or-QUERY' [--json]
//! bfl run    --ft FILE SPECFILE [--json]
//! bfl sat    --ft FILE 'FORMULA'
//! bfl count  --ft FILE 'FORMULA'
//! bfl mcs    --ft FILE [ELEMENT] [--engine minsol|paper|zdd]
//! bfl mps    --ft FILE [ELEMENT] [--engine minsol|paper|zdd]
//! bfl cex    --ft FILE --failed A,B,C 'FORMULA'
//! bfl ibe    --ft FILE 'FORMULA'
//! bfl render --ft FILE --failed A,B,C
//! bfl dot    --ft FILE [--failed A,B,C]
//! bfl prob   --ft FILE
//! bfl serve  --addr HOST:PORT --workers N
//! bfl client --addr HOST:PORT ['JSON-LINE' ...]
//! ```
//!
//! Every command runs through one `AnalysisSession` configured by the
//! common options; `run` evaluates a whole spec file in one pass over
//! shared BDD caches.
//!
//! Fault trees are read in the Galileo dialect (see the `bfl-fault-tree`
//! documentation); formulas/queries in the BFL DSL (see `bfl-core`).

use std::process::ExitCode;

mod cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
