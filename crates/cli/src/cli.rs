//! Argument parsing and command dispatch (no external dependencies).
//!
//! Every command is a thin veneer over one [`AnalysisSession`]: options
//! configure the session once (ordering, minimality scope, cut-set
//! backend, probabilities from the model's `prob=` annotations) and the
//! command methods map 1:1 onto session methods. `--json` switches any
//! query command to the structured [`Report`](bfl_core::Report) schema.
//! The `sweep` and `explain` commands go through
//! [`AnalysisSession::prepare`]: compile the query once, evaluate a
//! scenario file by BDD restriction, or print the compiled
//! [`Plan`](bfl_core::Plan).

use std::fmt::Write as _;

use bfl_core::engine::{AnalysisSession, Backend, ReorderPolicy};
use bfl_core::parser::{parse_formula, parse_spec};
use bfl_core::report::{json_estimate, json_interval, json_name_sets, Spec, SpecItem};
use bfl_core::scenario::ScenarioSet;
use bfl_core::uncertainty::{
    Method, ProbValue, DEFAULT_MC_CONFIDENCE, DEFAULT_MC_SAMPLES, DEFAULT_MC_SEED,
};
use bfl_core::{Counterexample, MinimalityScope};
use bfl_fault_tree::{galileo, StatusVector, VariableOrdering};

const USAGE: &str = "\
bfl — Boolean Fault tree Logic (DSN 2022) command line

USAGE:
    bfl <COMMAND> --ft <FILE> [OPTIONS] [ARGS]

COMMANDS:
    check    check a formula against a status vector, or a query
    run      evaluate a batch spec file (one query per line) in one pass
    sweep    prepare a query once, evaluate it under a file of what-if
             scenarios (evidence bindings) by BDD restriction
    explain  show the compiled query plan (pass sizes, BDD statistics)
    sat      enumerate all satisfying status vectors of a formula
    count    count the satisfying status vectors of a formula
    mcs      minimal cut sets of an element (default: the top event)
    mps      minimal path sets of an element (default: the top event)
    cex      counterexample for a formula that the vector fails
    ibe      influencing basic events of a formula
    render   failure propagation of a status vector through the tree
    dot      Graphviz export of the tree (optionally with a vector)
    cause    actual causes of a failing observation: the subset-minimal
             sets of failed events whose repair flips the verdict of a
             formula (default: the top event); --failed gives the
             observation, an optional trailing count bounds the
             enumeration like `causes(ϕ, E, k)`
    prob     probability of a formula (default: the top event) from the
             model's prob= annotations; a second formula argument
             conditions it: prob 'FORMULA' ['GIVEN']; see --method for
             interval propagation and Monte Carlo estimation
    importance  rank every basic event by quantitative importance for a
             formula (Birnbaum, criticality, Fussell-Vesely, RAW, RRW)
    modules  list the gates that are independent modules
    lint     static analysis of a model (and optionally a spec file):
             structural defects, degenerate annotations, trivial or
             contradictory formulas; see LINT below and docs/lint.md
    generate emit a seeded industrial fault tree in Galileo format to
             stdout (no --ft); shape it with the GENERATOR flags below
    serve    run the concurrent analysis service (JSON-lines over TCP);
             no --ft — models are loaded over the protocol
    client   send JSON-lines requests to a running server (from the
             arguments, or stdin when none are given)
    help     print this message

OPTIONS:
    --ft <FILE>        fault tree in Galileo format (required)
    --failed <A,B,C>   comma-separated failed basic events (default: none)
    --support-scope    use support-relative MCS/MPS minimality (Table I reading)
    --ordering <ORD>   BDD variable ordering: dfs (default), bfs,
                       declaration, bouissou, sifted (dfs start + dynamic
                       sifting, implies --reorder auto)
    --reorder <POL>    dynamic reordering policy: none (default), prepare
                       (sift after every query compile), auto[:FACTOR]
                       (sift when the BDD arena grows FACTOR-fold, default 2)
    --gc               mark-and-sweep BDD garbage collection at maintenance
                       points (on by default whenever --reorder is active)
    --parallelism <N>  worker threads for the initial BDD construction
                       (default 1 = lazy sequential compile); independent
                       fault-tree modules compile in parallel arenas and
                       stitch into the session — results are identical,
                       `explain` reports the module/stitch breakdown
    --engine <E>       mcs/mps backend: minsol (default), paper, zdd
    --json             structured JSON output (check, run, sweep, explain,
                       sat, count, mcs, mps, ibe, prob, importance)

UNCERTAINTY (prob, check, run, sweep):
    --method <M>       probability method: exact (default), interval
                       (conservative [lo, hi] propagation of ranged
                       `prob=lo..hi` annotations), mc (deterministic
                       Monte Carlo estimation, no BDD compile)
    --samples <N>      mc: status vectors to draw (default 100000)
    --seed <N>         mc: base seed (default 42); equal (seed, samples)
                       reproduce the estimate bit-for-bit at any thread
                       count
    --confidence <X>   mc: Wilson confidence level in (0,1), default 0.99

LINT (lint):
    bfl lint --ft <FILE> [SPEC_FILE] [--json] [--deny warnings]
             [--select L001,L005] [--ignore L004]
    --deny <LEVEL>     exit with failure when a diagnostic at or above
                       LEVEL remains: `warnings` (the CI gate), `info`
                       (everything), `errors`
    --select <CODES>   check only these comma-separated codes
    --ignore <CODES>   drop these comma-separated codes
    diagnostics carry `file:line:col` locations when the model source
    declares the element explicitly; every code is documented with a
    triggering example and its fix in docs/lint.md

GENERATOR (generate):
    --events <N>       basic-event count (default 1000)
    --modules <M>      independent top-level modules (default events/64,
                       at least 2)
    --depth <D>        gate layers per module (default 5)
    --fan <LO:HI>      children per gate, inclusive range (default 2:4)
    --and-bias <X>     probability a gate is AND rather than OR, in
                       [0,1] (default 0.4)
    --vot <X>          VOT(k/N) gate density in [0,1] (default 0.1)
    --sharing <X>      intra-module DAG-sharing rate in [0,1]
                       (default 0.15)
    --prob <LO:HI>     log-uniform basic-event probability range
                       (default 1e-5:1e-2)
    --bare             omit prob= annotations
    --seed <N>         generator seed (default: derived from --events;
                       equal flags reproduce the tree byte-for-byte)

SERVING (serve, client):
    --addr <HOST:PORT> listen/connect address (default 127.0.0.1:7878;
                       port 0 picks a free port and prints it)
    --workers <N>      serve: worker threads (default: CPU count)
    --shards <N>       serve: connection shard threads (default: CPU
                       count capped at 4); connections scale without
                       growing the thread count
    --queue <N>        serve: bounded request-queue capacity (default 64);
                       a full queue answers `busy` instead of buffering
    --max-connections <N>  serve: connection cap (default 1024); beyond
                       it new sockets get a structured `overloaded`
    --max-sessions <N> serve: resident session cap; the least recently
                       used session is evicted at capacity
    --session-inflight <N>  serve: per-session concurrent-request cap;
                       over it requests answer `busy`
    --idle-timeout <SECS>  serve: reap connections silent this long
                       (default: never)
    see docs/server.md for the protocol reference

PROBABILISTIC QUERIES (check, run, sweep):
    layer-2 judgements `P(FORMULA) ▷◁ p`, `P(FORMULA | GIVEN) ▷◁ p` and
    `importance(FORMULA)` work wherever a query does, e.g.
    `bfl check --ft covid.dft 'P(IWoS) <= 0.01'` — the model must carry
    prob= annotations

SCENARIO FILES (sweep):
    one scenario per line: `label: event = 0|1, event = 0|1, ...`
    a label with no bindings is the baseline; `#` comments are skipped

EXAMPLES:
    bfl mcs --ft covid.dft --engine zdd
    bfl explain --ft covid.dft --ordering sifted 'exists MCS(IWoS)'
    bfl sweep --ft covid.dft --reorder prepare --gc 'exists IWoS' whatif.scenarios
    bfl check --ft covid.dft 'forall IS => MoT'
    bfl check --ft covid.dft --failed IW,H3 'MCS(\"CP/R\")'
    bfl run --ft covid.dft properties.bfl --json
    bfl sweep --ft covid.dft 'exists IWoS' whatif.scenarios
    bfl explain --ft covid.dft 'forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS'
    bfl cex --ft covid.dft --failed IW,H3,IT 'MCS(\"CP/R\")'
    bfl check --ft covid.dft 'P(IWoS | H1) <= 0.05'
    bfl cause --ft covid.dft --failed IW,H3,PP,H1,VW IWoS
    bfl check --ft covid.dft 'cause(IWoS, IW := 1, H3 := 1)'
    bfl prob --ft covid.dft 'MCS(IWoS)'
    bfl prob --ft ranged.dft --method interval
    bfl prob --ft huge.dft --method mc --samples 500000 --seed 7
    bfl importance --ft covid.dft IWoS --json
    bfl lint --ft covid.dft properties.bfl --deny warnings
    bfl lint --ft covid.dft --json --ignore L004
    bfl serve --addr 127.0.0.1:7878 --workers 8
    bfl client --addr 127.0.0.1:7878 '{\"op\":\"stats\"}'
";

/// Parsed common options: one configured session plus command arguments.
struct Options {
    session: AnalysisSession,
    failed: Vec<String>,
    json: bool,
    /// `Some` when any of the `--method`/sampler flags was given (the
    /// session default is already set from it); `sweep` uses this to
    /// route probability judgements through the method-aware sweep.
    method: Option<Method>,
    positional: Vec<String>,
}

/// Runs the CLI on `args`, returning the stdout payload.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Err(format!("missing command\n\n{USAGE}"));
    };
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(USAGE.to_string());
    }
    // The serving commands have no fault-tree option (models are loaded
    // over the protocol), so they bypass the session setup entirely.
    // `lint` also parses its model itself: it needs the raw Galileo
    // parse (source locations) that `parse_options` discards.
    match command.as_str() {
        "serve" => return cmd_serve(&args[1..]),
        "client" => return cmd_client(&args[1..]),
        "generate" => return cmd_generate(&args[1..]),
        "lint" => return cmd_lint(&args[1..]),
        _ => {}
    }
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "check" => cmd_check(&opts),
        "run" => cmd_run(&opts),
        "sweep" => cmd_sweep(&opts),
        "explain" => cmd_explain(&opts),
        "sat" => cmd_sat(&opts),
        "count" => cmd_count(&opts),
        "mcs" => cmd_mcs(&opts, true),
        "mps" => cmd_mcs(&opts, false),
        "cex" => cmd_cex(&opts),
        "cause" => cmd_cause(&opts),
        "ibe" => cmd_ibe(&opts),
        "render" => cmd_render(&opts),
        "dot" => cmd_dot(&opts),
        "prob" => cmd_prob(&opts),
        "importance" => cmd_importance(&opts),
        "modules" => cmd_modules(&opts),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut ft_path = None;
    let mut failed = Vec::new();
    let mut support_scope = false;
    let mut ordering = VariableOrdering::DfsPreorder;
    let mut backend = Backend::Minsol;
    let mut json = false;
    let mut reorder: Option<ReorderPolicy> = None;
    let mut gc: Option<bool> = None;
    let mut parallelism: Option<usize> = None;
    let mut method_name: Option<String> = None;
    let mut samples: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut confidence: Option<f64> = None;
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ft" => {
                i += 1;
                ft_path = Some(args.get(i).ok_or("--ft requires a file argument")?.clone());
            }
            "--failed" => {
                i += 1;
                let list = args.get(i).ok_or("--failed requires a list argument")?;
                failed = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--support-scope" => support_scope = true,
            "--json" => json = true,
            "--ordering" => {
                i += 1;
                let name = args.get(i).ok_or("--ordering requires an argument")?;
                ordering = match name.as_str() {
                    "dfs" => VariableOrdering::DfsPreorder,
                    "bfs" => VariableOrdering::BfsLevel,
                    "declaration" => VariableOrdering::Declaration,
                    "bouissou" => VariableOrdering::BouissouWeight,
                    "sifted" => VariableOrdering::Sifted,
                    other => return Err(format!("unknown ordering `{other}`")),
                };
            }
            "--reorder" => {
                i += 1;
                let name = args.get(i).ok_or("--reorder requires an argument")?;
                reorder = Some(parse_reorder(name)?);
            }
            "--gc" => gc = Some(true),
            "--no-gc" => gc = Some(false),
            "--parallelism" => {
                i += 1;
                let n = args.get(i).ok_or("--parallelism requires a number")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("invalid parallelism `{n}`"))?;
                if n == 0 {
                    return Err("--parallelism must be at least 1".to_string());
                }
                parallelism = Some(n);
            }
            "--method" => {
                i += 1;
                let name = args.get(i).ok_or("--method requires an argument")?;
                method_name = Some(name.clone());
            }
            "--samples" => {
                i += 1;
                let n = args.get(i).ok_or("--samples requires a number")?;
                samples = Some(
                    n.parse()
                        .map_err(|_| format!("invalid sample count `{n}`"))?,
                );
            }
            "--seed" => {
                i += 1;
                let n = args.get(i).ok_or("--seed requires a number")?;
                seed = Some(n.parse().map_err(|_| format!("invalid seed `{n}`"))?);
            }
            "--confidence" => {
                i += 1;
                let x = args.get(i).ok_or("--confidence requires a number")?;
                confidence = Some(x.parse().map_err(|_| format!("invalid confidence `{x}`"))?);
            }
            "--engine" | "--backend" => {
                i += 1;
                let name = args.get(i).ok_or("--engine requires an argument")?;
                backend = name.parse::<Backend>()?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let ft_path = ft_path.ok_or("missing required option --ft <FILE>")?;
    let method = resolve_method(method_name.as_deref(), samples, seed, confidence)?;
    let text =
        std::fs::read_to_string(&ft_path).map_err(|e| format!("cannot read `{ft_path}`: {e}"))?;
    let model = galileo::parse(&text).map_err(|e| e.to_string())?;
    let scope = if support_scope {
        MinimalityScope::FormulaSupport
    } else {
        MinimalityScope::GlobalUniverse
    };
    let has_intervals = model.has_intervals();
    let mut builder = AnalysisSession::builder()
        .ordering(ordering)
        .minimality_scope(scope)
        .backend(backend)
        .probabilities(model.probabilities);
    if has_intervals {
        builder = builder.intervals(model.intervals);
    }
    if let Some(method) = method {
        builder = builder.method(method);
    }
    if let Some(policy) = reorder {
        builder = builder.reorder(policy);
    }
    if let Some(enabled) = gc {
        builder = builder.gc(enabled);
    }
    if let Some(n) = parallelism {
        builder = builder.parallelism(n);
    }
    let session = builder.build(model.tree);
    Ok(Options {
        session,
        failed,
        json,
        method,
        positional,
    })
}

/// Combines `--method` with the sampler flags. Sampler flags alone
/// imply `--method mc`; with an explicit non-`mc` method they are an
/// error, not silently ignored.
fn resolve_method(
    name: Option<&str>,
    samples: Option<u64>,
    seed: Option<u64>,
    confidence: Option<f64>,
) -> Result<Option<Method>, String> {
    let sampler_flags = samples.is_some() || seed.is_some() || confidence.is_some();
    let method = match name {
        Some(name) => Some(name.parse::<Method>()?),
        None if sampler_flags => Some(Method::mc()),
        None => None,
    };
    match method {
        Some(Method::Mc { .. }) => Ok(Some(Method::Mc {
            samples: samples.unwrap_or(DEFAULT_MC_SAMPLES),
            seed: seed.unwrap_or(DEFAULT_MC_SEED),
            confidence: confidence.unwrap_or(DEFAULT_MC_CONFIDENCE),
        })),
        Some(other) if sampler_flags => Err(format!(
            "--samples/--seed/--confidence apply to --method mc, not `{other}`"
        )),
        other => Ok(other),
    }
}

/// Parses a `--reorder` policy: `none`, `prepare`, `auto` or
/// `auto:<factor>` with factor > 1.
fn parse_reorder(name: &str) -> Result<ReorderPolicy, String> {
    match name {
        "none" => Ok(ReorderPolicy::None),
        "prepare" => Ok(ReorderPolicy::OnPrepare),
        "auto" => Ok(ReorderPolicy::auto()),
        other => {
            if let Some(factor) = other.strip_prefix("auto:") {
                let growth_factor: f64 = factor
                    .parse()
                    .map_err(|_| format!("invalid growth factor `{factor}`"))?;
                if growth_factor <= 1.0 {
                    return Err(format!("growth factor must exceed 1, got `{factor}`"));
                }
                Ok(ReorderPolicy::Auto { growth_factor })
            } else {
                Err(format!(
                    "unknown reorder policy `{other}` (use none, prepare, auto or auto:<factor>)"
                ))
            }
        }
    }
}

fn vector(opts: &Options) -> Result<StatusVector, String> {
    opts.session
        .vector_of_failed(&opts.failed)
        .map_err(|e| match e {
            bfl_core::BflError::UnknownElement(n) => {
                format!("unknown element `{n}` in --failed")
            }
            bfl_core::BflError::EvidenceOnGate(n) => {
                format!("`{n}` is a gate; --failed takes basic events")
            }
            other => other.to_string(),
        })
}

fn spec_arg(opts: &Options) -> Result<&str, String> {
    opts.positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| "missing formula/query argument".to_string())
}

/// Runs a one-item spec through the session, rendering text or JSON.
fn report_one(opts: &Options, item: SpecItem) -> Result<String, String> {
    let spec = Spec::from_items([item]);
    let report = opts.session.run(&spec).map_err(|e| e.to_string())?;
    if opts.json {
        Ok(format!("{}\n", report.to_json()))
    } else {
        let o = &report.outcomes[0];
        Ok(format!("{}\n", o.holds))
    }
}

fn cmd_check(opts: &Options) -> Result<String, String> {
    let parsed = parse_spec(spec_arg(opts)?).map_err(|e| e.to_string())?;
    let item = match parsed {
        bfl_core::parser::Spec::Query(q) => SpecItem::query(q),
        bfl_core::parser::Spec::Formula(f) => SpecItem::vector(opts.failed.clone(), f),
    };
    report_one(opts, item)
}

fn cmd_run(opts: &Options) -> Result<String, String> {
    if !opts.failed.is_empty() {
        return Err(
            "--failed does not apply to `run`; give each formula line its own \
             `[A, B]` failed-events prefix in the spec file"
                .to_string(),
        );
    }
    let path = spec_arg(opts)?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec `{path}`: {e}"))?;
    let spec = Spec::parse(&text).map_err(|e| e.to_string())?;
    let report = opts.session.run(&spec).map_err(|e| e.to_string())?;
    if opts.json {
        Ok(format!("{}\n", report.to_json()))
    } else {
        Ok(report.to_string())
    }
}

/// Prepares the positional query once; shared by `sweep` and `explain`.
fn prepare_query(opts: &Options, command: &str) -> Result<bfl_core::PreparedQuery, String> {
    if !opts.failed.is_empty() {
        return Err(format!(
            "--failed does not apply to `{command}`; evidence goes into the \
             scenario bindings (`event = 1` marks a failed event)"
        ));
    }
    let q = bfl_core::parser::parse_query(spec_arg(opts)?).map_err(|e| e.to_string())?;
    opts.session.prepare(&q).map_err(|e| e.to_string())
}

fn cmd_sweep(opts: &Options) -> Result<String, String> {
    let prepared = prepare_query(opts, "sweep")?;
    let path = opts
        .positional
        .get(1)
        .ok_or("sweep needs a scenarios file: bfl sweep --ft <FILE> '<QUERY>' <SCENARIOS>")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read scenarios `{path}`: {e}"))?;
    let set = ScenarioSet::parse(&text).map_err(|e| e.to_string())?;
    if set.is_empty() {
        return Err(format!("no scenarios in `{path}`"));
    }
    // An explicit --method routes probability judgements through the
    // method-aware sweep (probabilities, intervals or estimates per
    // scenario); everything else takes the Boolean sweep.
    if opts.method.is_some() && prepared.is_probability_judgement() {
        let report = prepared
            .sweep_probabilities_with(&set, None)
            .map_err(|e| e.to_string())?;
        return if opts.json {
            Ok(format!("{}\n", report.to_json()))
        } else {
            Ok(report.to_string())
        };
    }
    let report = prepared.sweep(&set).map_err(|e| e.to_string())?;
    if opts.json {
        Ok(format!("{}\n", report.to_json()))
    } else {
        Ok(report.to_string())
    }
}

fn cmd_explain(opts: &Options) -> Result<String, String> {
    let prepared = prepare_query(opts, "explain")?;
    let plan = prepared.explain();
    if opts.json {
        Ok(format!("{}\n", plan.to_json()))
    } else {
        Ok(plan.to_string())
    }
}

fn cmd_sat(opts: &Options) -> Result<String, String> {
    let f = parse_formula(spec_arg(opts)?).map_err(|e| e.to_string())?;
    let vectors = opts
        .session
        .satisfying_vectors(&f)
        .map_err(|e| e.to_string())?;
    if opts.json {
        return Ok(format!(
            "{}\n",
            json_name_sets(&opts.session.vectors_to_failed_sets(&vectors))
        ));
    }
    let mut out = String::new();
    let _ = writeln!(out, "{} satisfying vectors", vectors.len());
    for v in &vectors {
        let _ = writeln!(
            out,
            "{v}  {{{}}}",
            v.failed_names(opts.session.tree()).join(", ")
        );
    }
    Ok(out)
}

fn cmd_count(opts: &Options) -> Result<String, String> {
    let f = parse_formula(spec_arg(opts)?).map_err(|e| e.to_string())?;
    let n = opts
        .session
        .count_satisfying(&f)
        .map_err(|e| e.to_string())?;
    if opts.json {
        Ok(format!("{{\"count\":{n}}}\n"))
    } else {
        Ok(format!("{n}\n"))
    }
}

fn cmd_mcs(opts: &Options, cuts: bool) -> Result<String, String> {
    let element = opts.positional.first().cloned().unwrap_or_else(|| {
        let tree = opts.session.tree();
        tree.name(tree.top()).to_string()
    });
    let sets = if cuts {
        opts.session.minimal_cut_sets(&element)
    } else {
        opts.session.minimal_path_sets(&element)
    }
    .map_err(|e| e.to_string())?;
    if opts.json {
        return Ok(format!("{}\n", json_name_sets(&sets)));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} minimal {} sets of {element}",
        sets.len(),
        if cuts { "cut" } else { "path" }
    );
    for s in &sets {
        let _ = writeln!(out, "{{{}}}", s.join(", "));
    }
    Ok(out)
}

fn cmd_cex(opts: &Options) -> Result<String, String> {
    let f = parse_formula(spec_arg(opts)?).map_err(|e| e.to_string())?;
    let b = vector(opts)?;
    match opts
        .session
        .counterexample(&b, &f)
        .map_err(|e| e.to_string())?
    {
        Counterexample::AlreadySatisfies => Ok("vector already satisfies the formula\n".into()),
        Counterexample::Unsatisfiable => Ok("formula is unsatisfiable\n".into()),
        Counterexample::Found(v) => {
            let tree = opts.session.tree();
            let mut out = String::new();
            let _ = writeln!(
                out,
                "counterexample: {v}  {{{}}}",
                v.failed_names(tree).join(", ")
            );
            out.push_str(&bfl_core::render::counterexample_report(tree, &b, &v));
            Ok(out)
        }
    }
}

fn cmd_cause(opts: &Options) -> Result<String, String> {
    // The observation comes from --failed (everything else operational);
    // the formula defaults to the top event, and an optional trailing
    // count bounds the enumeration like the `causes(ϕ, E, k)` query.
    let phi = match opts.positional.first() {
        Some(src) => parse_formula(src).map_err(|e| e.to_string())?,
        None => {
            let tree = opts.session.tree();
            bfl_core::Formula::atom(tree.name(tree.top()))
        }
    };
    let evidence: Vec<(String, bool)> = opts.failed.iter().map(|n| (n.clone(), true)).collect();
    let q = match opts.positional.get(1) {
        Some(k) => {
            let k: u32 = k
                .parse()
                .map_err(|_| format!("invalid cause count `{k}`"))?;
            bfl_core::Query::causes(phi, evidence, k)
        }
        None => bfl_core::Query::cause(phi, evidence),
    };
    let spec = Spec::from_items([SpecItem::query(q)]);
    let report = opts.session.run(&spec).map_err(|e| e.to_string())?;
    if opts.json {
        Ok(format!("{}\n", report.to_json()))
    } else {
        Ok(report.to_string())
    }
}

fn cmd_ibe(opts: &Options) -> Result<String, String> {
    let f = parse_formula(spec_arg(opts)?).map_err(|e| e.to_string())?;
    let ibe = opts
        .session
        .influencing_basic_events(&f)
        .map_err(|e| e.to_string())?;
    if opts.json {
        let names: Vec<Vec<String>> = vec![ibe];
        Ok(format!("{}\n", json_name_sets(&names)))
    } else {
        Ok(format!("{{{}}}\n", ibe.join(", ")))
    }
}

fn cmd_render(opts: &Options) -> Result<String, String> {
    let b = vector(opts)?;
    Ok(bfl_core::render::propagation(opts.session.tree(), &b))
}

fn cmd_dot(opts: &Options) -> Result<String, String> {
    let tree = opts.session.tree();
    if opts.failed.is_empty() {
        Ok(bfl_fault_tree::dot::to_dot(tree))
    } else {
        let b = vector(opts)?;
        Ok(bfl_fault_tree::dot::to_dot_with_status(tree, Some(&b)))
    }
}

fn cmd_prob(opts: &Options) -> Result<String, String> {
    // Bare `prob` is the classic top-event unreliability.
    let phi = match opts.positional.first() {
        Some(src) => parse_formula(src).map_err(|e| e.to_string())?,
        None => {
            let tree = opts.session.tree();
            bfl_core::Formula::atom(tree.name(tree.top()))
        }
    };
    // `prob 'FORMULA' 'GIVEN'`: the conditional form.
    let given = match opts.positional.get(1) {
        Some(src) => Some(parse_formula(src).map_err(|e| e.to_string())?),
        None => None,
    };
    let value = opts
        .session
        .probability_value(&phi, given.as_ref(), None)
        .map_err(|e| e.to_string())?;
    match (value, opts.json) {
        // The exact renderings predate --method and stay byte-stable.
        (Some(ProbValue::Exact(p)), true) => Ok(format!("{{\"probability\":{p}}}\n")),
        (Some(ProbValue::Exact(p)), false) => Ok(format!("{p}\n")),
        (Some(ProbValue::Interval(iv)), true) => Ok(format!(
            "{{\"probability\":null,\"interval\":{},\"method\":\"interval\"}}\n",
            json_interval(&iv)
        )),
        (Some(ProbValue::Interval(iv)), false) => Ok(format!("[{}, {}]\n", iv.lo, iv.hi)),
        (Some(ProbValue::Estimate(e)), true) => Ok(format!(
            "{{\"probability\":null,\"estimate\":{},\"method\":\"mc\"}}\n",
            json_estimate(&e)
        )),
        (Some(ProbValue::Estimate(e)), false) => Ok(format!(
            "≈ {} ({}% CI [{}, {}], {} samples)\n",
            e.point,
            e.confidence * 100.0,
            e.ci_lo,
            e.ci_hi,
            e.samples
        )),
        (None, true) => Ok("{\"probability\":null}\n".to_string()),
        (None, false) => Ok("undefined (condition has probability 0)\n".to_string()),
    }
}

fn cmd_importance(opts: &Options) -> Result<String, String> {
    let phi = match opts.positional.first() {
        Some(src) => parse_formula(src).map_err(|e| e.to_string())?,
        None => {
            let tree = opts.session.tree();
            bfl_core::Formula::atom(tree.name(tree.top()))
        }
    };
    let rows = opts.session.rank_events(&phi).map_err(|e| e.to_string())?;
    if opts.json {
        return Ok(format!("{}\n", bfl_core::report::json_importance(&rows)));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "importance ranking for `{phi}` ({} events)",
        rows.len()
    );
    for r in &rows {
        let _ = writeln!(out, "{}", bfl_core::report::importance_row(r));
    }
    Ok(out)
}

/// Parsed options of the serving commands (`serve`, `client`).
struct ServeOptions {
    addr: String,
    workers: Option<usize>,
    shards: Option<usize>,
    queue: Option<usize>,
    max_connections: Option<usize>,
    max_sessions: Option<usize>,
    session_inflight: Option<usize>,
    idle_timeout: Option<u64>,
    positional: Vec<String>,
}

impl ServeOptions {
    /// Whether any `serve`-only tuning flag was given (the `client`
    /// command shares the parser but rejects these).
    fn has_serve_flags(&self) -> bool {
        self.workers.is_some()
            || self.shards.is_some()
            || self.queue.is_some()
            || self.max_connections.is_some()
            || self.max_sessions.is_some()
            || self.session_inflight.is_some()
            || self.idle_timeout.is_some()
    }
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7878".to_string(),
        workers: None,
        shards: None,
        queue: None,
        max_connections: None,
        max_sessions: None,
        session_inflight: None,
        idle_timeout: None,
        positional: Vec::new(),
    };
    // `--flag N` with a ≥1 check shared by every count-valued knob.
    fn positive(args: &[String], i: usize, flag: &str, what: &str) -> Result<usize, String> {
        let n = args
            .get(i)
            .ok_or_else(|| format!("{flag} requires a number"))?;
        let n: usize = n.parse().map_err(|_| format!("invalid {what} `{n}`"))?;
        if n == 0 {
            return Err(format!("{what} must be at least 1"));
        }
        Ok(n)
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                opts.addr = args
                    .get(i)
                    .ok_or("--addr requires a HOST:PORT argument")?
                    .clone();
            }
            "--workers" => {
                i += 1;
                opts.workers = Some(positive(args, i, "--workers", "worker count")?);
            }
            "--shards" => {
                i += 1;
                opts.shards = Some(positive(args, i, "--shards", "shard count")?);
            }
            "--queue" => {
                i += 1;
                opts.queue = Some(positive(args, i, "--queue", "queue capacity")?);
            }
            "--max-connections" => {
                i += 1;
                opts.max_connections =
                    Some(positive(args, i, "--max-connections", "connection cap")?);
            }
            "--max-sessions" => {
                i += 1;
                opts.max_sessions = Some(positive(args, i, "--max-sessions", "session cap")?);
            }
            "--session-inflight" => {
                i += 1;
                opts.session_inflight = Some(positive(
                    args,
                    i,
                    "--session-inflight",
                    "per-session in-flight cap",
                )?);
            }
            "--idle-timeout" => {
                i += 1;
                let n = args.get(i).ok_or("--idle-timeout requires seconds")?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("invalid idle timeout `{n}`"))?;
                if n == 0 {
                    return Err("idle timeout must be at least 1 second".to_string());
                }
                opts.idle_timeout = Some(n);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => opts.positional.push(other.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

/// `bfl lint`: model/spec static analysis. Parses the model itself so
/// diagnostics can point at `file:line:col` via the Galileo location
/// table, which the shared session setup does not keep.
fn cmd_lint(args: &[String]) -> Result<String, String> {
    use bfl_core::lint;

    let mut ft_path: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut json = false;
    let mut deny: Option<lint::Severity> = None;
    let mut select: Option<Vec<String>> = None;
    let mut ignore: Vec<String> = Vec::new();
    let parse_codes = |list: &str| -> Result<Vec<String>, String> {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|code| {
                lint::rule(code)
                    .map(|r| r.code.to_string())
                    .ok_or_else(|| format!("unknown lint code `{code}` (see docs/lint.md)"))
            })
            .collect()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ft" => {
                i += 1;
                ft_path = Some(args.get(i).ok_or("--ft requires a file argument")?.clone());
            }
            "--json" => json = true,
            "--deny" => {
                i += 1;
                let level = args.get(i).ok_or("--deny requires a level argument")?;
                deny = Some(match level.as_str() {
                    "warnings" | "warning" => lint::Severity::Warning,
                    "info" | "all" => lint::Severity::Info,
                    "errors" | "error" => lint::Severity::Error,
                    other => {
                        return Err(format!(
                            "unknown deny level `{other}` (use warnings, info or errors)"
                        ))
                    }
                });
            }
            "--select" => {
                i += 1;
                let list = args.get(i).ok_or("--select requires a code list")?;
                select = Some(parse_codes(list)?);
            }
            "--ignore" => {
                i += 1;
                let list = args.get(i).ok_or("--ignore requires a code list")?;
                ignore = parse_codes(list)?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => {
                if spec_path.is_some() {
                    return Err(format!("unexpected argument `{other}`"));
                }
                spec_path = Some(other.to_string());
            }
        }
        i += 1;
    }
    let ft_path = ft_path.ok_or("missing required option --ft <FILE>")?;
    let text =
        std::fs::read_to_string(&ft_path).map_err(|e| format!("cannot read `{ft_path}`: {e}"))?;
    let model = galileo::parse(&text).map_err(|e| e.to_string())?;
    let locations = model.locations.clone();
    let has_intervals = model.has_intervals();
    let mut builder = AnalysisSession::builder().probabilities(model.probabilities);
    if has_intervals {
        builder = builder.intervals(model.intervals);
    }
    let session = builder.build(model.tree);

    let mut diags = match &spec_path {
        None => session.lint(),
        Some(path) => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let spec = Spec::parse(&source).map_err(|e| e.to_string())?;
            session.lint_spec(&spec)
        }
    };
    for d in &mut diags {
        // Model rules subject the raw element name; point them at the
        // declaration when the source text has one.
        if let Some(&(line, col)) = locations.get(&d.subject) {
            d.location = Some(format!("{ft_path}:{line}:{col}"));
        }
    }
    if let Some(keep) = &select {
        diags.retain(|d| keep.contains(&d.code));
    }
    diags.retain(|d| !ignore.contains(&d.code));

    let rendered = if json {
        format!("{}\n", lint::to_json(&diags))
    } else {
        format!("{}\n", lint::render_text(&diags))
    };
    if let Some(threshold) = deny {
        let outstanding = diags.iter().filter(|d| d.severity >= threshold).count();
        if outstanding > 0 {
            return Err(format!(
                "{rendered}lint: {outstanding} diagnostic(s) at or above `{threshold}` (--deny)"
            ));
        }
    }
    Ok(rendered)
}

fn cmd_generate(args: &[String]) -> Result<String, String> {
    use bfl_fault_tree::generator::industrial_model;

    fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
        *i += 1;
        args.get(*i)
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} requires an argument"))
    }
    fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
        value
            .parse()
            .map_err(|_| format!("invalid {flag} value `{value}`"))
    }
    fn parse_unit(value: &str, flag: &str) -> Result<f64, String> {
        let x: f64 = parse_num(value, flag)?;
        if !(0.0..=1.0).contains(&x) {
            return Err(format!("{flag} must be in [0,1], got `{value}`"));
        }
        Ok(x)
    }
    fn parse_pair<T: std::str::FromStr>(value: &str, flag: &str) -> Result<(T, T), String> {
        let (lo, hi) = value
            .split_once(':')
            .ok_or_else(|| format!("{flag} takes LO:HI, got `{value}`"))?;
        Ok((parse_num(lo, flag)?, parse_num(hi, flag)?))
    }

    let mut events = 1_000usize;
    let mut modules: Option<usize> = None;
    let mut depth: Option<usize> = None;
    let mut fan: Option<(usize, usize)> = None;
    let mut and_bias: Option<f64> = None;
    let mut vot: Option<f64> = None;
    let mut sharing: Option<f64> = None;
    let mut prob: Option<(f64, f64)> = None;
    let mut seed: Option<u64> = None;
    let mut bare = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--events" => events = parse_num(flag_value(args, &mut i, "--events")?, "--events")?,
            "--modules" => {
                modules = Some(parse_num(
                    flag_value(args, &mut i, "--modules")?,
                    "--modules",
                )?);
            }
            "--depth" => {
                depth = Some(parse_num(flag_value(args, &mut i, "--depth")?, "--depth")?);
            }
            "--fan" => fan = Some(parse_pair(flag_value(args, &mut i, "--fan")?, "--fan")?),
            "--and-bias" => {
                and_bias = Some(parse_unit(
                    flag_value(args, &mut i, "--and-bias")?,
                    "--and-bias",
                )?);
            }
            "--vot" => vot = Some(parse_unit(flag_value(args, &mut i, "--vot")?, "--vot")?),
            "--sharing" => {
                sharing = Some(parse_unit(
                    flag_value(args, &mut i, "--sharing")?,
                    "--sharing",
                )?);
            }
            "--prob" => prob = Some(parse_pair(flag_value(args, &mut i, "--prob")?, "--prob")?),
            "--seed" => seed = Some(parse_num(flag_value(args, &mut i, "--seed")?, "--seed")?),
            "--bare" => bare = true,
            other => {
                return Err(format!(
                    "generate does not take `{other}` (see GENERATOR flags in `bfl help`)"
                ))
            }
        }
        i += 1;
    }

    // Start from the reference shape for this size, then apply overrides,
    // validating here so shape mistakes surface as errors, not panics.
    let mut config = bfl_fault_tree::corpus::scaled_config(events);
    if let Some(m) = modules {
        config.num_modules = m;
    }
    if let Some(d) = depth {
        config.depth = d;
    }
    if let Some(f) = fan {
        config.fan_in = f;
    }
    if let Some(x) = and_bias {
        config.and_bias = x;
    }
    if let Some(x) = vot {
        config.vot_density = x;
    }
    if let Some(x) = sharing {
        config.sharing = x;
    }
    if let Some(p) = prob {
        config.prob_range = p;
    }
    if let Some(s) = seed {
        config.seed = s;
    }
    if config.num_modules == 0 || config.depth == 0 {
        return Err("--modules and --depth must be at least 1".to_string());
    }
    if config.num_basic < 2 * config.num_modules {
        return Err(format!(
            "--events must be at least 2 per module (got {} events, {} modules)",
            config.num_basic, config.num_modules
        ));
    }
    if config.fan_in.0 < 2 || config.fan_in.0 > config.fan_in.1 {
        return Err(format!(
            "--fan must satisfy 2 <= LO <= HI, got {}:{}",
            config.fan_in.0, config.fan_in.1
        ));
    }
    if !(config.prob_range.0 > 0.0
        && config.prob_range.0 <= config.prob_range.1
        && config.prob_range.1 <= 1.0)
    {
        return Err(format!(
            "--prob must satisfy 0 < LO <= HI <= 1, got {}:{}",
            config.prob_range.0, config.prob_range.1
        ));
    }

    let model = industrial_model(&config);
    let annotations = if bare {
        None
    } else {
        Some(model.probabilities.as_slice())
    };
    Ok(galileo::to_galileo(&model.tree, annotations))
}

fn cmd_serve(args: &[String]) -> Result<String, String> {
    let opts = parse_serve_options(args)?;
    if let Some(extra) = opts.positional.first() {
        return Err(format!(
            "serve takes no positional arguments, got `{extra}`"
        ));
    }
    let mut config = bfl_server::ServerConfig {
        addr: opts.addr,
        ..bfl_server::ServerConfig::default()
    };
    if let Some(workers) = opts.workers {
        config.workers = workers;
    }
    if let Some(shards) = opts.shards {
        config.shards = shards;
    }
    if let Some(queue) = opts.queue {
        config.queue_capacity = queue;
    }
    if let Some(max) = opts.max_connections {
        config.max_connections = max;
    }
    config.max_sessions = opts.max_sessions;
    config.session_inflight = opts.session_inflight;
    config.idle_timeout = opts.idle_timeout.map(std::time::Duration::from_secs);
    let (workers, shards) = (config.workers, config.shards);
    let handle =
        bfl_server::Server::bind(config).map_err(|e| format!("cannot bind server: {e}"))?;
    // Announce on stderr immediately — stdout is the command's result
    // and is only printed once the server has stopped.
    eprintln!(
        "bfl-server listening on {} ({} workers, {} shards); send {{\"op\":\"shutdown\"}} to stop",
        handle.addr(),
        workers,
        shards
    );
    let addr = handle.addr();
    handle.join();
    Ok(format!("server on {addr} stopped\n"))
}

fn cmd_client(args: &[String]) -> Result<String, String> {
    use std::io::Write as _;
    // Responses stream to stdout as they arrive — pipe mode must not
    // sit on output until EOF, and a mid-stream transport error must
    // not discard answers already received.
    let stdout = std::io::stdout();
    client_run(args, &mut |line| {
        let mut out = stdout.lock();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    })?;
    Ok(String::new())
}

/// The `client` engine: sends each request line and hands every
/// response line to `sink` as soon as it arrives.
fn client_run(args: &[String], sink: &mut dyn FnMut(&str)) -> Result<(), String> {
    let opts = parse_serve_options(args)?;
    if opts.has_serve_flags() {
        return Err(
            "--workers/--shards/--queue/--max-connections/--max-sessions/--session-inflight/\
             --idle-timeout configure `serve`, not `client`"
                .to_string(),
        );
    }
    let mut client = bfl_server::Client::connect(&opts.addr)
        .map_err(|e| format!("cannot connect to `{}`: {e}", opts.addr))?;
    let send = |client: &mut bfl_server::Client,
                line: &str,
                sink: &mut dyn FnMut(&str)|
     -> Result<(), String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        let response = client
            .round_trip(line)
            .map_err(|e| format!("request failed: {e}"))?;
        sink(&response);
        Ok(())
    };
    if opts.positional.is_empty() {
        // Pipe mode: one request per stdin line.
        let mut buffer = String::new();
        loop {
            buffer.clear();
            let n = std::io::stdin()
                .read_line(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            if n == 0 {
                break;
            }
            send(&mut client, &buffer, sink)?;
        }
    } else {
        for line in &opts.positional {
            send(&mut client, line, sink)?;
        }
    }
    Ok(())
}

fn cmd_modules(opts: &Options) -> Result<String, String> {
    let tree = opts.session.tree();
    let mods = bfl_fault_tree::modules::modules(tree);
    let mut out = String::new();
    for g in mods {
        let _ = writeln!(out, "{}", tree.name(g));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_model() -> tempdir::TempFile {
        tempdir::TempFile::new("toplevel T;\nT and A B;\nA prob=0.1;\nB prob=0.2;\n", "dft")
    }

    /// Minimal self-contained temp-file helper (std only).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub struct TempFile {
            pub path: PathBuf,
        }

        impl TempFile {
            pub fn new(contents: &str, ext: &str) -> TempFile {
                let mut path = std::env::temp_dir();
                let unique = format!(
                    "bfl-cli-test-{}-{:?}-{}.{ext}",
                    std::process::id(),
                    std::thread::current().id(),
                    COUNTER.fetch_add(1, Ordering::Relaxed),
                );
                path.push(unique);
                std::fs::write(&path, contents).expect("write temp model");
                TempFile { path }
            }

            pub fn arg(&self) -> String {
                self.path.to_string_lossy().into_owned()
            }
        }

        impl Drop for TempFile {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args).expect("command succeeds")
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["help"]).contains("USAGE"));
    }

    #[test]
    fn missing_command_is_error() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn check_query() {
        let f = write_model();
        let out = run_ok(&["check", "--ft", &f.arg(), "forall A & B => T"]);
        assert_eq!(out, "true\n");
        let out = run_ok(&["check", "--ft", &f.arg(), "forall A => T"]);
        assert_eq!(out, "false\n");
    }

    #[test]
    fn check_formula_with_vector() {
        let f = write_model();
        let out = run_ok(&["check", "--ft", &f.arg(), "--failed", "A,B", "MCS(T)"]);
        assert_eq!(out, "true\n");
        let out = run_ok(&["check", "--ft", &f.arg(), "--failed", "A", "MCS(T)"]);
        assert_eq!(out, "false\n");
    }

    #[test]
    fn check_json_is_structured() {
        let f = write_model();
        let out = run_ok(&["check", "--ft", &f.arg(), "--json", "forall A & B => T"]);
        assert!(out.contains("\"holds\":true"), "{out}");
        assert!(out.contains("\"cache_misses\""), "{out}");
        let out = run_ok(&["check", "--ft", &f.arg(), "--json", "forall A => T"]);
        assert!(out.contains("\"holds\":false"), "{out}");
        assert!(out.contains("\"counterexamples\":[["), "{out}");
    }

    #[test]
    fn run_command_batches_a_spec_file() {
        let f = write_model();
        let spec = tempdir::TempFile::new(
            "# demo spec\nQ1: forall A & B => T\nQ2: forall A => T\nV1: [A, B] MCS(T)\n",
            "bfl",
        );
        let out = run_ok(&["run", "--ft", &f.arg(), &spec.arg()]);
        assert!(out.contains("PASS  Q1"), "{out}");
        assert!(out.contains("FAIL  Q2"), "{out}");
        assert!(out.contains("PASS  V1"), "{out}");
        assert!(out.contains("2/3 hold"), "{out}");
        let out = run_ok(&["run", "--ft", &f.arg(), &spec.arg(), "--json"]);
        assert!(out.contains("\"label\":\"Q1\""), "{out}");
        assert!(out.contains("\"totals\""), "{out}");
    }

    #[test]
    fn sweep_command_evaluates_scenarios() {
        let f = write_model();
        let scenarios = tempdir::TempFile::new(
            "# what-ifs\nbaseline:\nA-failed: A = 1\nA-fixed: A = 0\n",
            "scenarios",
        );
        let out = run_ok(&["sweep", "--ft", &f.arg(), "exists T", &scenarios.arg()]);
        assert!(out.contains("PASS  baseline"), "{out}");
        assert!(out.contains("PASS  A-failed"), "{out}");
        assert!(out.contains("FAIL  A-fixed"), "{out}");
        assert!(out.contains("2/3 hold"), "{out}");
        let out = run_ok(&[
            "sweep",
            "--ft",
            &f.arg(),
            "--json",
            "exists T",
            &scenarios.arg(),
        ]);
        assert!(out.contains("\"label\":\"A-fixed\""), "{out}");
        assert!(out.contains("\"translation_misses\":0"), "{out}");
    }

    #[test]
    fn sweep_and_explain_reject_failed_flag() {
        let f = write_model();
        for command in ["sweep", "explain"] {
            let args: Vec<String> = [command, "--ft", &f.arg(), "--failed", "A", "exists T"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let err = run(&args).unwrap_err();
            assert!(err.contains("--failed"), "{command}: {err}");
            assert!(err.contains(command), "{command}: {err}");
        }
    }

    #[test]
    fn sweep_requires_scenarios_file() {
        let f = write_model();
        let args: Vec<String> = ["sweep", "--ft", &f.arg(), "exists T"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("scenarios file"));
    }

    #[test]
    fn explain_command_shows_plan() {
        let f = write_model();
        let out = run_ok(&["explain", "--ft", &f.arg(), "forall A & B => T"]);
        assert!(out.contains("plan for"), "{out}");
        assert!(out.contains("minimality fast path: yes"), "{out}");
        assert!(out.contains("simplify"), "{out}");
        let out = run_ok(&["explain", "--ft", &f.arg(), "--json", "exists MCS(T)"]);
        assert!(out.contains("\"minimality_fast_path\":false"), "{out}");
        assert!(out.contains("\"kind\":\"exists\""), "{out}");
    }

    #[test]
    fn run_rejects_failed_flag() {
        let f = write_model();
        let spec = tempdir::TempFile::new("forall A => T\n", "bfl");
        let args: Vec<String> = ["run", "--ft", &f.arg(), "--failed", "A", &spec.arg()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("--failed"), "{err}");
        assert!(err.contains("prefix"), "{err}");
    }

    #[test]
    fn support_scope_is_backend_independent() {
        let f = write_model();
        let base = run_ok(&["mcs", "--ft", &f.arg(), "--support-scope"]);
        for engine in ["minsol", "paper", "zdd"] {
            let out = run_ok(&[
                "mcs",
                "--ft",
                &f.arg(),
                "--support-scope",
                "--engine",
                engine,
            ]);
            assert_eq!(out, base, "{engine}");
        }
    }

    #[test]
    fn mcs_and_mps() {
        let f = write_model();
        let out = run_ok(&["mcs", "--ft", &f.arg()]);
        assert!(out.contains("{A, B}"), "{out}");
        let out = run_ok(&["mps", "--ft", &f.arg()]);
        assert!(out.contains("{A}"), "{out}");
        assert!(out.contains("{B}"), "{out}");
    }

    #[test]
    fn sat_and_count() {
        let f = write_model();
        let out = run_ok(&["count", "--ft", &f.arg(), "T"]);
        assert_eq!(out, "1\n");
        let out = run_ok(&["sat", "--ft", &f.arg(), "T"]);
        assert!(out.contains("1 satisfying vectors"));
        assert!(out.contains("{A, B}"));
        let out = run_ok(&["sat", "--ft", &f.arg(), "--json", "T"]);
        assert_eq!(out, "[[\"A\",\"B\"]]\n");
    }

    #[test]
    fn counterexample_command() {
        let f = write_model();
        let out = run_ok(&["cex", "--ft", &f.arg(), "--failed", "A", "MCS(T)"]);
        assert!(out.contains("counterexample"), "{out}");
        assert!(out.contains("changed"), "{out}");
    }

    #[test]
    fn cause_command() {
        let f = write_model();
        // AND gate with both inputs failed: repairing either one alone
        // flips the verdict, so the two singletons are the causes.
        let out = run_ok(&["cause", "--ft", &f.arg(), "--failed", "A,B"]);
        assert!(out.contains("observation {A, B} is failing"), "{out}");
        assert!(out.contains("cause {A}"), "{out}");
        assert!(out.contains("cause {B}"), "{out}");
        let out = run_ok(&["cause", "--ft", &f.arg(), "--failed", "A,B", "--json", "T"]);
        assert!(out.contains("\"causes\":{"), "{out}");
        assert!(out.contains("\"total\":2"), "{out}");
        assert!(out.contains("\"truncated\":false"), "{out}");
        // A trailing count bounds the enumeration and reports truncation.
        let out = run_ok(&["cause", "--ft", &f.arg(), "--failed", "A,B", "T", "1"]);
        assert!(out.contains("showing 1 of 2 causes"), "{out}");
        // A non-failing observation has no causes and the query fails.
        let out = run_ok(&["cause", "--ft", &f.arg(), "--failed", "A"]);
        assert!(out.contains("is not failing"), "{out}");
        assert!(out.contains("FAIL"), "{out}");
        let args: Vec<String> = ["cause", "--ft", &f.arg(), "T", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("invalid cause count"));
    }

    #[test]
    fn cause_queries_through_check_and_sweep() {
        let f = write_model();
        let out = run_ok(&["check", "--ft", &f.arg(), "cause(T, A := 1, B := 1)"]);
        assert_eq!(out, "true\n");
        let out = run_ok(&["check", "--ft", &f.arg(), "cause(T, A := 1)"]);
        assert_eq!(out, "false\n");
        // Sweeping a cause query: scenario bindings extend the evidence.
        let scenarios =
            tempdir::TempFile::new("baseline:\nB-failed: B = 1\nB-fixed: B = 0\n", "scenarios");
        let out = run_ok(&[
            "sweep",
            "--ft",
            &f.arg(),
            "cause(T, A := 1)",
            &scenarios.arg(),
        ]);
        assert!(out.contains("FAIL  baseline"), "{out}");
        assert!(out.contains("PASS  B-failed"), "{out}");
        assert!(out.contains("FAIL  B-fixed"), "{out}");
    }

    #[test]
    fn ibe_command() {
        let f = write_model();
        let out = run_ok(&["ibe", "--ft", &f.arg(), "T"]);
        assert_eq!(out, "{A, B}\n");
    }

    #[test]
    fn render_and_dot() {
        let f = write_model();
        let out = run_ok(&["render", "--ft", &f.arg(), "--failed", "A"]);
        assert!(out.contains("T ·"));
        assert!(out.contains("A ✗"));
        let out = run_ok(&["dot", "--ft", &f.arg()]);
        assert!(out.contains("digraph"));
    }

    #[test]
    fn prob_command() {
        let f = write_model();
        let out = run_ok(&["prob", "--ft", &f.arg()]);
        let p: f64 = out.trim().parse().unwrap();
        assert!((p - 0.02).abs() < 1e-12);
        // Any formula, not just the top event: P(A | B) = P(A).
        let out = run_ok(&["prob", "--ft", &f.arg(), "A | B"]);
        let p: f64 = out.trim().parse().unwrap();
        assert!((p - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
        // Conditional form: P(T | A) = P(B) = 0.2.
        let out = run_ok(&["prob", "--ft", &f.arg(), "T", "A"]);
        let p: f64 = out.trim().parse().unwrap();
        assert!((p - 0.2).abs() < 1e-12);
        // Impossible condition is reported, not a garbage ratio.
        let out = run_ok(&["prob", "--ft", &f.arg(), "T", "A & !A"]);
        assert!(out.contains("undefined"), "{out}");
        let out = run_ok(&["prob", "--ft", &f.arg(), "--json", "T", "A & !A"]);
        assert_eq!(out, "{\"probability\":null}\n");
    }

    fn write_interval_model() -> tempdir::TempFile {
        tempdir::TempFile::new(
            "toplevel T;\nT or A B;\nA prob=0.1..0.3;\nB prob=0.2;\n",
            "dft",
        )
    }

    #[test]
    fn prob_method_interval() {
        // Ranged annotations: exact refuses with the offending events,
        // interval propagation brackets the OR.
        let f = write_interval_model();
        let args: Vec<String> = ["prob", "--ft", &f.arg()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("interval"), "{err}");
        assert!(err.contains('A'), "{err}");
        let out = run_ok(&["prob", "--ft", &f.arg(), "--method", "interval"]);
        assert_eq!(out, "[0.28, 0.43999999999999995]\n");
        let out = run_ok(&["prob", "--ft", &f.arg(), "--method", "interval", "--json"]);
        assert_eq!(
            out,
            "{\"probability\":null,\"interval\":{\"lo\":0.28,\"hi\":0.43999999999999995},\"method\":\"interval\"}\n"
        );
        // Degenerate intervals on a point model reproduce the exact number.
        let point = write_model();
        let out = run_ok(&["prob", "--ft", &point.arg(), "--method", "interval"]);
        assert_eq!(out, "[0.020000000000000004, 0.020000000000000004]\n");
    }

    #[test]
    fn prob_method_mc_is_deterministic() {
        let f = write_model();
        let mc = [
            "prob",
            "--ft",
            &f.arg(),
            "--method",
            "mc",
            "--samples",
            "20000",
            "--seed",
            "7",
        ];
        let a = run_ok(&mc);
        let b = run_ok(&mc);
        assert_eq!(a, b);
        assert!(a.starts_with("≈ 0.0"), "{a}");
        assert!(a.contains("99% CI ["), "{a}");
        assert!(a.contains("20000 samples"), "{a}");
        // Sampler flags alone imply --method mc; JSON carries the CI.
        let out = run_ok(&["prob", "--ft", &f.arg(), "--json", "--samples", "20000"]);
        assert!(out.contains("\"estimate\":{\"point\":"), "{out}");
        assert!(out.contains("\"method\":\"mc\""), "{out}");
        assert!(out.contains("\"samples\":20000"), "{out}");
    }

    #[test]
    fn method_flags_reject_bad_combinations() {
        let f = write_model();
        let cases: Vec<(Vec<&str>, &str)> = vec![
            (vec!["--method", "bogus"], "unknown method"),
            (vec!["--method", "exact", "--samples", "10"], "--method mc"),
            (vec!["--method", "interval", "--seed", "1"], "--method mc"),
            (vec!["--samples", "x"], "invalid sample count"),
            (vec!["--confidence", "y"], "invalid confidence"),
        ];
        for (extra, needle) in cases {
            let mut args: Vec<String> = vec!["prob".into(), "--ft".into(), f.arg()];
            args.extend(extra.iter().map(|s| s.to_string()));
            let err = run(&args).unwrap_err();
            assert!(err.contains(needle), "{extra:?}: {err}");
        }
    }

    #[test]
    fn method_flows_through_check_and_sweep() {
        // Session-wide --method: P(T) ∈ [0.28, 0.44] straddles 0.3, so
        // the judgement is undecided and conservatively does not hold.
        let f = write_interval_model();
        let out = run_ok(&[
            "check",
            "--ft",
            &f.arg(),
            "--method",
            "interval",
            "--json",
            "P(T) >= 0.3",
        ]);
        assert!(out.contains("\"holds\":false"), "{out}");
        assert!(
            out.contains("\"interval\":{\"lo\":0.28,\"hi\":0.43999999999999995}"),
            "{out}"
        );
        assert!(out.contains("\"method\":\"interval\""), "{out}");
        let scenarios = tempdir::TempFile::new("baseline:\nA-failed: A = 1\n", "scenarios");
        let out = run_ok(&[
            "sweep",
            "--ft",
            &f.arg(),
            "--method",
            "interval",
            "P(T) >= 0.3",
            &scenarios.arg(),
        ]);
        assert!(out.contains("method interval"), "{out}");
        assert!(out.contains("PASS  A-failed"), "{out}");
        // Monte Carlo through check: the estimate rides in the JSON.
        let point = write_model();
        let out = run_ok(&[
            "check",
            "--ft",
            &point.arg(),
            "--method",
            "mc",
            "--samples",
            "20000",
            "--json",
            "P(T) <= 0.05",
        ]);
        assert!(out.contains("\"holds\":true"), "{out}");
        assert!(out.contains("\"estimate\":{\"point\":"), "{out}");
    }

    #[test]
    fn prob_judgements_through_check() {
        let f = write_model();
        // P(T) = 0.02.
        let out = run_ok(&["check", "--ft", &f.arg(), "P(T) <= 0.05"]);
        assert_eq!(out, "true\n");
        let out = run_ok(&["check", "--ft", &f.arg(), "P(T) > 0.05"]);
        assert_eq!(out, "false\n");
        // Conditional judgement: P(T | A) = 0.2.
        let out = run_ok(&["check", "--ft", &f.arg(), "P(T | A) >= 0.2"]);
        assert_eq!(out, "true\n");
        // JSON carries the computed probability.
        let out = run_ok(&["check", "--ft", &f.arg(), "--json", "P(T) <= 0.05"]);
        assert!(
            out.contains("\"probability\":0.020000000000000004"),
            "{out}"
        );
        // Sweeping a probability judgement works through the plan layer.
        let scenarios = tempdir::TempFile::new("baseline:\nA-failed: A = 1\n", "scenarios");
        let out = run_ok(&["sweep", "--ft", &f.arg(), "P(T) <= 0.05", &scenarios.arg()]);
        assert!(out.contains("PASS  baseline"), "{out}");
        assert!(out.contains("FAIL  A-failed"), "{out}");
    }

    #[test]
    fn importance_command() {
        let f = write_model();
        let out = run_ok(&["importance", "--ft", &f.arg()]);
        assert!(out.contains("importance ranking"), "{out}");
        // AND gate: the rarer event (A, p=0.1) has the higher Birnbaum
        // importance (P(B)=0.2 > P(A)=0.1), so A ranks first.
        let a_pos = out.find("\nA ").unwrap();
        let b_pos = out.find("\nB ").unwrap();
        assert!(a_pos < b_pos, "{out}");
        assert!(out.contains("RRW=∞"), "{out}"); // both events are in the only cut set
        let out = run_ok(&["importance", "--ft", &f.arg(), "--json", "T"]);
        assert!(out.contains("\"event\":\"A\""), "{out}");
        assert!(out.contains("\"rrw\":null"), "{out}");
        // A model without annotations reports the missing events.
        let bare = tempdir::TempFile::new("toplevel T;\nT and A B;\n", "dft");
        let args: Vec<String> = ["importance", "--ft", &bare.arg()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("missing prob="), "{err}");
    }

    #[test]
    fn engines_and_orderings_agree() {
        let f = write_model();
        let base_mcs = run_ok(&["mcs", "--ft", &f.arg()]);
        let base_mps = run_ok(&["mps", "--ft", &f.arg()]);
        // Every backend now supports BOTH mcs and mps (zdd included —
        // path sets run on the dual tree).
        for engine in ["minsol", "paper", "zdd"] {
            let out = run_ok(&["mcs", "--ft", &f.arg(), "--engine", engine]);
            assert_eq!(out, base_mcs, "{engine}");
            let out = run_ok(&["mps", "--ft", &f.arg(), "--engine", engine]);
            assert_eq!(out, base_mps, "{engine}");
        }
        for ordering in ["dfs", "bfs", "declaration", "bouissou", "sifted"] {
            let out = run_ok(&["mcs", "--ft", &f.arg(), "--ordering", ordering]);
            assert_eq!(out, base_mcs, "{ordering}");
        }
        let args: Vec<String> = ["mcs", "--ft", &f.arg(), "--engine", "bogus"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("bogus"));
    }

    #[test]
    fn reorder_and_gc_flags_are_accepted_and_answers_agree() {
        let f = write_model();
        let ft = f.arg();
        let base = run_ok(&["check", "--ft", &ft, "forall A & B => T"]);
        for extra in [
            vec!["--reorder", "none"],
            vec!["--reorder", "prepare"],
            vec!["--reorder", "auto"],
            vec!["--reorder", "auto:3.5"],
            vec!["--reorder", "prepare", "--gc"],
            vec!["--reorder", "auto", "--no-gc"],
            vec!["--gc"],
            vec!["--ordering", "sifted"],
        ] {
            let mut args = vec!["check", "--ft", ft.as_str()];
            args.extend(extra.iter().copied());
            args.push("forall A & B => T");
            assert_eq!(run_ok(&args), base, "{extra:?}");
        }
    }

    #[test]
    fn parallelism_flag_is_accepted_and_answers_agree() {
        let f = write_model();
        let ft = f.arg();
        let base = run_ok(&["check", "--ft", &ft, "forall A & B => T"]);
        for n in ["1", "2", "4"] {
            let out = run_ok(&[
                "check",
                "--ft",
                &ft,
                "--parallelism",
                n,
                "forall A & B => T",
            ]);
            assert_eq!(out, base, "parallelism {n}");
        }
        for bad in ["0", "x"] {
            let args: Vec<String> = ["check", "--ft", &ft, "--parallelism", bad, "exists T"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert!(run(&args).is_err(), "parallelism {bad} accepted");
        }
    }

    #[test]
    fn generate_emits_a_parseable_deterministic_model() {
        let args = [
            "generate",
            "--events",
            "120",
            "--modules",
            "3",
            "--depth",
            "3",
            "--fan",
            "2:3",
            "--vot",
            "0.2",
            "--seed",
            "7",
        ];
        let out = run_ok(&args);
        let model = galileo::parse(&out).expect("generated model parses");
        assert_eq!(model.tree.num_basic_events(), 120);
        assert!(model.probabilities.iter().all(Option::is_some));
        assert_eq!(out, run_ok(&args), "same flags, same bytes");

        // --bare drops the annotations, the tree stays identical.
        let bare = run_ok(&["generate", "--events", "120", "--modules", "3", "--bare"]);
        let bare_model = galileo::parse(&bare).expect("bare model parses");
        assert!(bare_model.probabilities.iter().all(Option::is_none));
        assert!(!bare.contains("prob="));
    }

    #[test]
    fn generate_rejects_malformed_shapes() {
        for bad in [
            vec!["generate", "--events", "4", "--modules", "3"],
            vec!["generate", "--fan", "1:3"],
            vec!["generate", "--fan", "4:2"],
            vec!["generate", "--fan", "2"],
            vec!["generate", "--prob", "0:0.5"],
            vec!["generate", "--and-bias", "1.5"],
            vec!["generate", "--depth", "0"],
            vec!["generate", "--events"],
            vec!["generate", "--bogus"],
            vec!["generate", "--ft", "x.dft"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(run(&args).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn bad_reorder_policies_are_rejected() {
        let f = write_model();
        for bad in ["bogus", "auto:0.5", "auto:x"] {
            let args: Vec<String> = ["check", "--ft", &f.arg(), "--reorder", bad, "exists T"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let err = run(&args).unwrap_err();
            assert!(err.contains(bad.split(':').next_back().unwrap()), "{err}");
        }
    }

    #[test]
    fn explain_reports_prepare_time_maintenance() {
        let f = write_model();
        let out = run_ok(&[
            "explain",
            "--ft",
            &f.arg(),
            "--reorder",
            "prepare",
            "exists MCS(T)",
        ]);
        assert!(out.contains("maintenance:"), "{out}");
        let out = run_ok(&[
            "explain",
            "--ft",
            &f.arg(),
            "--reorder",
            "prepare",
            "--json",
            "exists MCS(T)",
        ]);
        assert!(out.contains("\"maintenance\":{"), "{out}");
        assert!(out.contains("\"sift\""), "{out}");
        // Without a policy the field is null.
        let out = run_ok(&["explain", "--ft", &f.arg(), "--json", "exists MCS(T)"]);
        assert!(out.contains("\"maintenance\":null"), "{out}");
    }

    #[test]
    fn serve_rejects_bad_arguments() {
        for bad in [
            vec!["serve", "--workers", "0"],
            vec!["serve", "--workers", "x"],
            vec!["serve", "--queue", "0"],
            vec!["serve", "--shards", "0"],
            vec!["serve", "--shards", "x"],
            vec!["serve", "--max-connections", "0"],
            vec!["serve", "--max-sessions", "0"],
            vec!["serve", "--session-inflight", "0"],
            vec!["serve", "--idle-timeout", "0"],
            vec!["serve", "--idle-timeout", "soon"],
            vec!["serve", "--bogus"],
            vec!["serve", "positional"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(run(&args).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn serve_parses_every_tuning_knob() {
        let args: Vec<String> = [
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--shards",
            "2",
            "--queue",
            "128",
            "--max-connections",
            "64",
            "--max-sessions",
            "8",
            "--session-inflight",
            "4",
            "--idle-timeout",
            "30",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_serve_options(&args).expect("parses");
        assert_eq!(opts.addr, "127.0.0.1:0");
        assert_eq!(opts.workers, Some(3));
        assert_eq!(opts.shards, Some(2));
        assert_eq!(opts.queue, Some(128));
        assert_eq!(opts.max_connections, Some(64));
        assert_eq!(opts.max_sessions, Some(8));
        assert_eq!(opts.session_inflight, Some(4));
        assert_eq!(opts.idle_timeout, Some(30));
        assert!(opts.has_serve_flags());
        assert!(opts.positional.is_empty());
    }

    #[test]
    fn client_round_trips_against_a_live_server() {
        let handle = bfl_server::Server::bind(bfl_server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..bfl_server::ServerConfig::default()
        })
        .expect("binds");
        let addr = handle.addr().to_string();
        let model = "toplevel T;\\nT and A B;\\nA prob=0.1;\\nB prob=0.2;\\n";
        // Drive the streaming engine with a collecting sink (the real
        // `bfl client` writes each line straight to stdout).
        let client_ok = |args: &[&str]| -> Vec<String> {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let mut lines = Vec::new();
            client_run(&args, &mut |line| lines.push(line.to_string())).expect("client runs");
            lines
        };
        let out = client_ok(&[
            "--addr",
            &addr,
            &format!("{{\"id\":1,\"op\":\"load\",\"model\":\"{model}\"}}"),
            "{\"id\":2,\"op\":\"check\",\"session\":\"s1\",\"query\":\"forall A & B => T\"}",
            "{\"id\":3,\"op\":\"stats\"}",
        ]);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out[0].contains("\"session\":\"s1\""), "{out:?}");
        assert!(out[1].contains("\"holds\":true"), "{out:?}");
        assert!(out[2].contains("\"sessions\":[\"s1\"]"), "{out:?}");
        // Errors come back as structured lines, not failures.
        let out = client_ok(&["--addr", &addr, "{\"op\":\"nope\"}"]);
        assert!(out[0].contains("\"code\":\"unknown_op\""), "{out:?}");
        // Comments and blank lines are skipped without a round trip.
        let out = client_ok(&["--addr", &addr, "# a comment", "   "]);
        assert!(out.is_empty(), "{out:?}");
        handle.shutdown();
    }

    #[test]
    fn client_rejects_serve_only_flags() {
        for flag in [
            ["--workers", "4"],
            ["--queue", "16"],
            ["--shards", "2"],
            ["--max-connections", "64"],
            ["--max-sessions", "8"],
            ["--session-inflight", "2"],
            ["--idle-timeout", "30"],
        ] {
            let args: Vec<String> = ["client", "--addr", "127.0.0.1:1", flag[0], flag[1]]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let err = run(&args).unwrap_err();
            assert!(err.contains("configure `serve`"), "{err}");
        }
    }

    #[test]
    fn client_reports_connection_errors() {
        // A port nothing listens on: connect fails with a clear error.
        let args: Vec<String> = ["client", "--addr", "127.0.0.1:1", "{\"op\":\"stats\"}"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
    }

    #[test]
    fn modules_command() {
        let f = write_model();
        let out = run_ok(&["modules", "--ft", &f.arg()]);
        assert_eq!(out, "T\n");
    }

    #[test]
    fn unknown_option_rejected() {
        let f = write_model();
        let args: Vec<String> = ["mcs", "--ft", &f.arg(), "--bogus"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("--bogus"));
    }

    #[test]
    fn unknown_failed_element_rejected() {
        let f = write_model();
        let args: Vec<String> = ["render", "--ft", &f.arg(), "--failed", "ghost"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("ghost"));
    }

    #[test]
    fn lint_clean_model_and_deny_pass() {
        let f = write_model();
        assert_eq!(run_ok(&["lint", "--ft", &f.arg()]), "lint: clean\n");
        assert_eq!(
            run_ok(&["lint", "--ft", &f.arg(), "--deny", "warnings"]),
            "lint: clean\n"
        );
        let out = run_ok(&["lint", "--ft", &f.arg(), "--json"]);
        assert!(out.contains("\"diagnostics\":[]"), "{out}");
    }

    #[test]
    fn lint_reports_locations_and_denies_warnings() {
        let f = tempdir::TempFile::new(
            "toplevel T;\nT and G B;\nG or A;\nA prob=1.0;\nB prob=0.2;\n",
            "dft",
        );
        let out = run_ok(&["lint", "--ft", &f.arg()]);
        // L002: G has one child (declared line 3 col 1); L006: A is
        // certain (line 4 col 1). Locations point at the declarations.
        assert!(out.contains("L002"), "{out}");
        assert!(out.contains(&format!("{}:3:1", f.arg())), "{out}");
        assert!(out.contains("L006"), "{out}");
        assert!(out.contains(&format!("{}:4:1", f.arg())), "{out}");

        let args: Vec<String> = ["lint", "--ft", &f.arg(), "--deny", "warnings"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("--deny"), "{err}");

        // --select narrows to one code; --ignore drops it again.
        let out = run_ok(&["lint", "--ft", &f.arg(), "--select", "L006"]);
        assert!(out.contains("L006") && !out.contains("L002"), "{out}");
        let out = run_ok(&["lint", "--ft", &f.arg(), "--ignore", "L002,L006"]);
        assert_eq!(out, "lint: clean\n");
        let args: Vec<String> = ["lint", "--ft", &f.arg(), "--select", "L999"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("L999"));
    }

    #[test]
    fn lint_checks_spec_files() {
        let f = write_model();
        let spec = tempdir::TempFile::new(
            "P1: forall T | !T\nP1: exists A & !A\nP3: exists T\n",
            "bfl",
        );
        let out = run_ok(&["lint", "--ft", &f.arg(), &spec.arg()]);
        assert!(out.contains("L008"), "{out}"); // tautology
        assert!(out.contains("L009"), "{out}"); // contradiction
        assert!(out.contains("L012"), "{out}"); // shadowed label P1
    }
}
