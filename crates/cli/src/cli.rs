//! Argument parsing and command dispatch (no external dependencies).

use std::fmt::Write as _;

use bfl_core::parser::{parse_formula, parse_spec, Spec};
use bfl_core::{counterexample, Counterexample, MinimalityScope, ModelChecker};
use bfl_fault_tree::{galileo, FaultTree, StatusVector, VariableOrdering};

const USAGE: &str = "\
bfl — Boolean Fault tree Logic (DSN 2022) command line

USAGE:
    bfl <COMMAND> --ft <FILE> [OPTIONS] [ARGS]

COMMANDS:
    check    check a formula against a status vector, or a query
    sat      enumerate all satisfying status vectors of a formula
    count    count the satisfying status vectors of a formula
    mcs      minimal cut sets of an element (default: the top event)
    mps      minimal path sets of an element (default: the top event)
    cex      counterexample for a formula that the vector fails
    ibe      influencing basic events of a formula
    render   failure propagation of a status vector through the tree
    dot      Graphviz export of the tree (optionally with a vector)
    prob     top event probability from the model's prob= annotations
    modules  list the gates that are independent modules
    help     print this message

OPTIONS:
    --ft <FILE>        fault tree in Galileo format (required)
    --failed <A,B,C>   comma-separated failed basic events (default: none)
    --support-scope    use support-relative MCS/MPS minimality (Table I reading)
    --ordering <ORD>   BDD variable ordering: dfs (default), bfs,
                       declaration, bouissou
    --engine <E>       mcs/mps engine: minsol (default), paper, zdd
                       (zdd applies to `mcs` only)

EXAMPLES:
    bfl mcs --ft covid.dft
    bfl check --ft covid.dft 'forall IS => MoT'
    bfl check --ft covid.dft --failed IW,H3 'MCS(\"CP/R\")'
    bfl cex --ft covid.dft --failed IW,H3,IT 'MCS(\"CP/R\")'
";

/// Parsed common options.
struct Options {
    tree: FaultTree,
    probabilities: Vec<Option<f64>>,
    failed: Vec<String>,
    support_scope: bool,
    ordering: VariableOrdering,
    engine: Engine,
    positional: Vec<String>,
}

/// Cut-set engine selection for `mcs`/`mps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Minsol,
    Paper,
    Zdd,
}

/// Runs the CLI on `args`, returning the stdout payload.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Err(format!("missing command\n\n{USAGE}"));
    };
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(USAGE.to_string());
    }
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "check" => cmd_check(&opts),
        "sat" => cmd_sat(&opts),
        "count" => cmd_count(&opts),
        "mcs" => cmd_mcs(&opts, true),
        "mps" => cmd_mcs(&opts, false),
        "cex" => cmd_cex(&opts),
        "ibe" => cmd_ibe(&opts),
        "render" => cmd_render(&opts),
        "dot" => cmd_dot(&opts),
        "prob" => cmd_prob(&opts),
        "modules" => cmd_modules(&opts),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut ft_path = None;
    let mut failed = Vec::new();
    let mut support_scope = false;
    let mut ordering = VariableOrdering::DfsPreorder;
    let mut engine = Engine::Minsol;
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ft" => {
                i += 1;
                ft_path = Some(
                    args.get(i)
                        .ok_or("--ft requires a file argument")?
                        .clone(),
                );
            }
            "--failed" => {
                i += 1;
                let list = args.get(i).ok_or("--failed requires a list argument")?;
                failed = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--support-scope" => support_scope = true,
            "--ordering" => {
                i += 1;
                let name = args.get(i).ok_or("--ordering requires an argument")?;
                ordering = match name.as_str() {
                    "dfs" => VariableOrdering::DfsPreorder,
                    "bfs" => VariableOrdering::BfsLevel,
                    "declaration" => VariableOrdering::Declaration,
                    "bouissou" => VariableOrdering::BouissouWeight,
                    other => return Err(format!("unknown ordering `{other}`")),
                };
            }
            "--engine" => {
                i += 1;
                let name = args.get(i).ok_or("--engine requires an argument")?;
                engine = match name.as_str() {
                    "minsol" => Engine::Minsol,
                    "paper" => Engine::Paper,
                    "zdd" => Engine::Zdd,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let ft_path = ft_path.ok_or("missing required option --ft <FILE>")?;
    let text = std::fs::read_to_string(&ft_path)
        .map_err(|e| format!("cannot read `{ft_path}`: {e}"))?;
    let model = galileo::parse(&text).map_err(|e| e.to_string())?;
    Ok(Options {
        tree: model.tree,
        probabilities: model.probabilities,
        failed,
        support_scope,
        ordering,
        engine,
        positional,
    })
}

fn checker(opts: &Options) -> ModelChecker<'_> {
    let mut mc = ModelChecker::with_ordering(&opts.tree, opts.ordering);
    if opts.support_scope {
        mc.set_minimality_scope(MinimalityScope::FormulaSupport);
    }
    mc
}

fn vector(opts: &Options) -> Result<StatusVector, String> {
    let mut v = StatusVector::all_operational(opts.tree.num_basic_events());
    for name in &opts.failed {
        let e = opts
            .tree
            .element(name)
            .ok_or_else(|| format!("unknown element `{name}` in --failed"))?;
        let bi = opts
            .tree
            .basic_index(e)
            .ok_or_else(|| format!("`{name}` is a gate; --failed takes basic events"))?;
        v.set(bi, true);
    }
    Ok(v)
}

fn spec_arg(opts: &Options) -> Result<&str, String> {
    opts.positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| "missing formula/query argument".to_string())
}

fn cmd_check(opts: &Options) -> Result<String, String> {
    let mut mc = checker(opts);
    match parse_spec(spec_arg(opts)?).map_err(|e| e.to_string())? {
        Spec::Query(q) => {
            let r = mc.check_query(&q).map_err(|e| e.to_string())?;
            Ok(format!("{r}\n"))
        }
        Spec::Formula(f) => {
            let b = vector(opts)?;
            let r = mc.holds(&b, &f).map_err(|e| e.to_string())?;
            Ok(format!("{r}\n"))
        }
    }
}

fn cmd_sat(opts: &Options) -> Result<String, String> {
    let mut mc = checker(opts);
    let f = parse_formula(spec_arg(opts)?).map_err(|e| e.to_string())?;
    let vectors = mc.satisfying_vectors(&f).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "{} satisfying vectors", vectors.len());
    for v in &vectors {
        let _ = writeln!(out, "{v}  {{{}}}", v.failed_names(&opts.tree).join(", "));
    }
    Ok(out)
}

fn cmd_count(opts: &Options) -> Result<String, String> {
    let mut mc = checker(opts);
    let f = parse_formula(spec_arg(opts)?).map_err(|e| e.to_string())?;
    let n = mc.count_satisfying(&f).map_err(|e| e.to_string())?;
    Ok(format!("{n}\n"))
}

fn cmd_mcs(opts: &Options, cuts: bool) -> Result<String, String> {
    let element = opts
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| opts.tree.name(opts.tree.top()).to_string());
    let sets = match (opts.engine, cuts) {
        (Engine::Zdd, true) => {
            let e = opts
                .tree
                .element(&element)
                .ok_or_else(|| format!("unknown element `{element}`"))?;
            let indices = bfl_fault_tree::zdd_engine::minimal_cut_sets_zdd(&opts.tree, e);
            index_sets_to_names(&opts.tree, &indices)
        }
        (Engine::Zdd, false) => {
            return Err("the zdd engine supports `mcs` only".to_string());
        }
        (Engine::Paper, _) => {
            let e = opts
                .tree
                .element(&element)
                .ok_or_else(|| format!("unknown element `{element}`"))?;
            let indices = if cuts {
                bfl_fault_tree::analysis::minimal_cut_sets_paper(&opts.tree, e)
            } else {
                bfl_fault_tree::analysis::minimal_path_sets_paper(&opts.tree, e)
            };
            index_sets_to_names(&opts.tree, &indices)
        }
        (Engine::Minsol, _) => {
            let mut mc = checker(opts);
            if cuts {
                mc.minimal_cut_sets(&element)
            } else {
                mc.minimal_path_sets(&element)
            }
            .map_err(|e| e.to_string())?
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} minimal {} sets of {element}",
        sets.len(),
        if cuts { "cut" } else { "path" }
    );
    for s in &sets {
        let _ = writeln!(out, "{{{}}}", s.join(", "));
    }
    Ok(out)
}

fn cmd_cex(opts: &Options) -> Result<String, String> {
    let mut mc = checker(opts);
    let f = parse_formula(spec_arg(opts)?).map_err(|e| e.to_string())?;
    let b = vector(opts)?;
    match counterexample(&mut mc, &b, &f).map_err(|e| e.to_string())? {
        Counterexample::AlreadySatisfies => Ok("vector already satisfies the formula\n".into()),
        Counterexample::Unsatisfiable => Ok("formula is unsatisfiable\n".into()),
        Counterexample::Found(v) => {
            let mut out = String::new();
            let _ = writeln!(out, "counterexample: {v}  {{{}}}", v.failed_names(&opts.tree).join(", "));
            out.push_str(&bfl_core::render::counterexample_report(&opts.tree, &b, &v));
            Ok(out)
        }
    }
}

fn cmd_ibe(opts: &Options) -> Result<String, String> {
    let mut mc = checker(opts);
    let f = parse_formula(spec_arg(opts)?).map_err(|e| e.to_string())?;
    let ibe = mc.influencing_basic_events(&f).map_err(|e| e.to_string())?;
    Ok(format!("{{{}}}\n", ibe.join(", ")))
}

fn cmd_render(opts: &Options) -> Result<String, String> {
    let b = vector(opts)?;
    Ok(bfl_core::render::propagation(&opts.tree, &b))
}

fn cmd_dot(opts: &Options) -> Result<String, String> {
    if opts.failed.is_empty() {
        Ok(bfl_fault_tree::dot::to_dot(&opts.tree))
    } else {
        let b = vector(opts)?;
        Ok(bfl_fault_tree::dot::to_dot_with_status(&opts.tree, Some(&b)))
    }
}

fn cmd_prob(opts: &Options) -> Result<String, String> {
    let missing: Vec<&str> = opts
        .probabilities
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_none())
        .map(|(i, _)| opts.tree.name(opts.tree.basic_events()[i]))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "missing prob= annotations for: {}",
            missing.join(", ")
        ));
    }
    let probs: Vec<f64> = opts.probabilities.iter().map(|p| p.expect("checked")).collect();
    let p = bfl_fault_tree::prob::top_event_probability(&opts.tree, &probs);
    Ok(format!("{p}\n"))
}

fn index_sets_to_names(tree: &FaultTree, sets: &[Vec<usize>]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = sets
        .iter()
        .map(|s| {
            let mut names: Vec<String> = s
                .iter()
                .map(|&i| tree.name(tree.basic_events()[i]).to_string())
                .collect();
            names.sort();
            names
        })
        .collect();
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    out
}

fn cmd_modules(opts: &Options) -> Result<String, String> {
    let mods = bfl_fault_tree::modules::modules(&opts.tree);
    let mut out = String::new();
    for g in mods {
        let _ = writeln!(out, "{}", opts.tree.name(g));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_model() -> tempdir::TempFile {
        tempdir::TempFile::new(
            "toplevel T;\nT and A B;\nA prob=0.1;\nB prob=0.2;\n",
        )
    }

    /// Minimal self-contained temp-file helper (std only).
    mod tempdir {
        use std::path::PathBuf;

        pub struct TempFile {
            pub path: PathBuf,
        }

        impl TempFile {
            pub fn new(contents: &str) -> TempFile {
                let mut path = std::env::temp_dir();
                let unique = format!(
                    "bfl-cli-test-{}-{:?}.dft",
                    std::process::id(),
                    std::thread::current().id()
                );
                path.push(unique);
                std::fs::write(&path, contents).expect("write temp model");
                TempFile { path }
            }

            pub fn arg(&self) -> String {
                self.path.to_string_lossy().into_owned()
            }
        }

        impl Drop for TempFile {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args).expect("command succeeds")
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["help"]).contains("USAGE"));
    }

    #[test]
    fn missing_command_is_error() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn check_query() {
        let f = write_model();
        let out = run_ok(&["check", "--ft", &f.arg(), "forall A & B => T"]);
        assert_eq!(out, "true\n");
        let out = run_ok(&["check", "--ft", &f.arg(), "forall A => T"]);
        assert_eq!(out, "false\n");
    }

    #[test]
    fn check_formula_with_vector() {
        let f = write_model();
        let out = run_ok(&["check", "--ft", &f.arg(), "--failed", "A,B", "MCS(T)"]);
        assert_eq!(out, "true\n");
        let out = run_ok(&["check", "--ft", &f.arg(), "--failed", "A", "MCS(T)"]);
        assert_eq!(out, "false\n");
    }

    #[test]
    fn mcs_and_mps() {
        let f = write_model();
        let out = run_ok(&["mcs", "--ft", &f.arg()]);
        assert!(out.contains("{A, B}"), "{out}");
        let out = run_ok(&["mps", "--ft", &f.arg()]);
        assert!(out.contains("{A}"), "{out}");
        assert!(out.contains("{B}"), "{out}");
    }

    #[test]
    fn sat_and_count() {
        let f = write_model();
        let out = run_ok(&["count", "--ft", &f.arg(), "T"]);
        assert_eq!(out, "1\n");
        let out = run_ok(&["sat", "--ft", &f.arg(), "T"]);
        assert!(out.contains("1 satisfying vectors"));
        assert!(out.contains("{A, B}"));
    }

    #[test]
    fn counterexample_command() {
        let f = write_model();
        let out = run_ok(&["cex", "--ft", &f.arg(), "--failed", "A", "MCS(T)"]);
        assert!(out.contains("counterexample"), "{out}");
        assert!(out.contains("changed"), "{out}");
    }

    #[test]
    fn ibe_command() {
        let f = write_model();
        let out = run_ok(&["ibe", "--ft", &f.arg(), "T"]);
        assert_eq!(out, "{A, B}\n");
    }

    #[test]
    fn render_and_dot() {
        let f = write_model();
        let out = run_ok(&["render", "--ft", &f.arg(), "--failed", "A"]);
        assert!(out.contains("T ·"));
        assert!(out.contains("A ✗"));
        let out = run_ok(&["dot", "--ft", &f.arg()]);
        assert!(out.contains("digraph"));
    }

    #[test]
    fn prob_command() {
        let f = write_model();
        let out = run_ok(&["prob", "--ft", &f.arg()]);
        let p: f64 = out.trim().parse().unwrap();
        assert!((p - 0.02).abs() < 1e-12);
    }

    #[test]
    fn engines_and_orderings_agree() {
        let f = write_model();
        let base = run_ok(&["mcs", "--ft", &f.arg()]);
        for engine in ["minsol", "paper", "zdd"] {
            let out = run_ok(&["mcs", "--ft", &f.arg(), "--engine", engine]);
            assert_eq!(out, base, "{engine}");
        }
        for ordering in ["dfs", "bfs", "declaration", "bouissou"] {
            let out = run_ok(&["mcs", "--ft", &f.arg(), "--ordering", ordering]);
            assert_eq!(out, base, "{ordering}");
        }
        let args: Vec<String> = ["mps", "--ft", &f.arg(), "--engine", "zdd"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("mcs"));
        let args: Vec<String> = ["mcs", "--ft", &f.arg(), "--engine", "bogus"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("bogus"));
    }

    #[test]
    fn modules_command() {
        let f = write_model();
        let out = run_ok(&["modules", "--ft", &f.arg()]);
        assert_eq!(out, "T\n");
    }

    #[test]
    fn unknown_option_rejected() {
        let f = write_model();
        let args: Vec<String> = ["mcs", "--ft", &f.arg(), "--bogus"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("--bogus"));
    }

    #[test]
    fn unknown_failed_element_rejected() {
        let f = write_model();
        let args: Vec<String> = ["render", "--ft", &f.arg(), "--failed", "ghost"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).unwrap_err().contains("ghost"));
    }
}
