//! Concurrency coverage for the session registry and the worker pool:
//! many client threads hammering `load`/`prepare`/`eval`/`unload` on one
//! server (plain `thread::scope` + barriers, no loom), asserting no
//! deadlock, no lost responses, safe `unload` under in-flight work,
//! explicit `busy` backpressure, and a graceful shutdown that drains
//! every accepted request.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use bfl_fault_tree::{corpus, galileo, StatusVector};
use bfl_server::{Client, ErrorCode, Response, ResponseBody, Server, ServerConfig, ServerHandle};

const MODEL: &str = "toplevel T;\nT and A B;\nA prob=0.1;\nB prob=0.2;\n";

fn start_server(workers: usize, queue: usize) -> ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: queue,
        ..ServerConfig::default()
    })
    .expect("binds")
}

#[test]
fn parallel_private_sessions_never_interfere() {
    let handle = start_server(4, 256);
    let addr = handle.addr();
    let threads = 8;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                barrier.wait();
                for round in 0..6 {
                    let session = client.load(MODEL).expect("loads");
                    let plan = client.prepare(&session, "exists T").expect("prepares");
                    let holds = client
                        .eval(&session, &plan, "A = 1, B = 1")
                        .expect("evals")
                        .get("holds")
                        .and_then(|v| v.as_bool());
                    assert_eq!(holds, Some(true), "thread {t} round {round}");
                    let holds = client
                        .eval(&session, &plan, "A = 0")
                        .expect("evals")
                        .get("holds")
                        .and_then(|v| v.as_bool());
                    assert_eq!(holds, Some(false), "thread {t} round {round}");
                    let p = client
                        .prob_plan(&session, &plan, None)
                        .expect("prob")
                        .expect("defined");
                    assert!((p - 0.02).abs() < 1e-12, "thread {t}: {p}");
                    client.unload(&session).expect("unloads");
                }
            });
        }
    });
    // Every session was unloaded; the registry is empty again.
    let mut client = Client::connect(addr).expect("connects");
    let stats = client.stats(None).expect("stats");
    assert_eq!(
        stats
            .get("sessions")
            .and_then(|s| s.as_array())
            .map(<[_]>::len),
        Some(0),
        "{stats}"
    );
    handle.shutdown();
}

#[test]
fn hammering_one_shared_session_with_unload_is_safe() {
    let handle = start_server(4, 256);
    let addr = handle.addr();
    let mut setup = Client::connect(addr).expect("connects");
    let session = setup.load(MODEL).expect("loads");
    let plan = setup.prepare(&session, "exists MCS(T)").expect("prepares");

    let threads = 8;
    let rounds = 30;
    let barrier = Barrier::new(threads + 1);
    let ok_count = AtomicUsize::new(0);
    let gone_count = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let barrier = &barrier;
            let (session, plan) = (session.clone(), plan.clone());
            let (ok_count, gone_count) = (&ok_count, &gone_count);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                barrier.wait();
                for round in 0..rounds {
                    let scenario = if round % 2 == 0 { "A = 1" } else { "B = 0" };
                    match client.eval(&session, &plan, scenario) {
                        Ok(outcome) => {
                            assert!(outcome.get("holds").is_some(), "{outcome}");
                            ok_count.fetch_add(1, Ordering::Relaxed);
                        }
                        // After the unload races past us the only
                        // acceptable failure is the structured one.
                        Err(e) => {
                            assert_eq!(
                                e.code(),
                                Some(ErrorCode::UnknownSession),
                                "unexpected failure: {e}"
                            );
                            gone_count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Unload the shared session somewhere in the middle of the storm.
        let barrier = &barrier;
        let session = session.clone();
        scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connects");
            barrier.wait();
            client.unload(&session).expect("unload succeeds once");
        });
    });
    // No response was lost: every eval either answered or reported the
    // session gone.
    assert_eq!(
        ok_count.load(Ordering::Relaxed) + gone_count.load(Ordering::Relaxed),
        threads * rounds
    );
    handle.shutdown();
}

#[test]
fn unload_during_in_flight_sweep_completes_safely() {
    let handle = start_server(4, 64);
    let addr = handle.addr();
    let mut setup = Client::connect(addr).expect("connects");
    let session = setup.load(MODEL).expect("loads");
    let plan = setup.prepare(&session, "exists MCS(T)").expect("prepares");

    // A sweep big enough to still be in flight when the unload lands.
    let scenarios: String = (0..400)
        .map(|i| format!("s{i}: A = {}, B = {}\n", i % 2, (i / 2) % 2))
        .collect();
    let mut sweeper = TcpStream::connect(addr).expect("connects");
    sweeper.set_nodelay(true).expect("nodelay");
    let request = format!(
        "{{\"id\":1,\"op\":\"sweep\",\"session\":{},\"plan\":{},\"scenarios\":{}}}\n",
        bfl_core::report::json_str(&session),
        bfl_core::report::json_str(&plan),
        bfl_core::report::json_str(&scenarios)
    );
    sweeper.write_all(request.as_bytes()).expect("write");
    sweeper.flush().expect("flush");

    // Unload immediately on another connection; the in-flight sweep
    // holds its Arc and must complete with a full report regardless of
    // which side wins the race.
    setup.unload(&session).expect("unloads");

    let mut line = String::new();
    BufReader::new(sweeper).read_line(&mut line).expect("read");
    let response = Response::parse(line.trim_end()).expect("parses");
    match response.body {
        ResponseBody::Result(result) => {
            let doc = bfl_server::json::Json::parse(&result).expect("result parses");
            let outcomes = doc
                .get("outcomes")
                .and_then(|o| o.as_array())
                .expect("outcomes");
            assert_eq!(outcomes.len(), 400);
        }
        // The only acceptable refusal: the unload fully won the race
        // before the sweep job resolved its session.
        ResponseBody::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
    }
    handle.shutdown();
}

#[test]
fn full_queue_answers_busy_instead_of_buffering() {
    // One worker, one queue slot: occupy the worker with a slow sweep,
    // fill the slot, and watch backpressure answer immediately.
    let handle = start_server(1, 1);
    let addr = handle.addr();
    let mut setup = Client::connect(addr).expect("connects");
    let session = setup.load(MODEL).expect("loads");
    let plan = setup.prepare(&session, "exists MCS(T)").expect("prepares");

    let scenarios: String = (0..2000)
        .map(|i| format!("s{i}: A = {}, B = {}\n", i % 2, (i / 2) % 2))
        .collect();
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    let sweep = format!(
        "{{\"id\":1,\"op\":\"sweep\",\"session\":{},\"plan\":{},\"scenarios\":{}}}\n",
        bfl_core::report::json_str(&session),
        bfl_core::report::json_str(&plan),
        bfl_core::report::json_str(&scenarios)
    );
    // Pipeline: the sweep occupies the worker, then a burst of stats
    // requests — the first fills the queue slot, the rest must bounce.
    let burst: String = (2..8)
        .map(|i| format!("{{\"id\":{i},\"op\":\"stats\"}}\n"))
        .collect();
    stream.write_all(sweep.as_bytes()).expect("write");
    stream.write_all(burst.as_bytes()).expect("write");
    stream.flush().expect("flush");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ok = 0usize;
    let mut busy = 0usize;
    let mut seen_ids = Vec::new();
    for _ in 0..7 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let response = Response::parse(line.trim_end()).expect("parses");
        seen_ids.push(response.id.expect("echoed id"));
        match response.body {
            ResponseBody::Result(_) => ok += 1,
            ResponseBody::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Busy, "{line}");
                busy += 1;
            }
        }
    }
    // No response lost, and the bounded queue pushed back at least once.
    seen_ids.sort_unstable();
    assert_eq!(seen_ids, (1..=7).collect::<Vec<u64>>());
    assert!(busy >= 1, "expected backpressure (ok {ok}, busy {busy})");
    assert!(ok >= 2, "the sweep and at least one stats must run");

    // After the storm the connection still serves.
    let mut line = String::new();
    stream
        .write_all(b"{\"id\":99,\"op\":\"stats\"}\n")
        .expect("write");
    stream.flush().expect("flush");
    reader.read_line(&mut line).expect("read");
    assert!(Response::parse(line.trim_end()).expect("parses").is_ok());
    handle.shutdown();
}

#[test]
fn scaled_tree_sweeps_reuse_the_compiled_plan_with_bounded_memory() {
    // A 1000-basic-event industrial tree served over the wire: prepare
    // once, sweep the same scenario set twice, and prove through `stats`
    // that the warm round rebuilt nothing (translation-cache misses
    // frozen) and allocated nothing (arena level frozen).
    let model = corpus::scaled_model(1_000);
    let text = galileo::to_galileo(&model.tree, Some(&model.probabilities));
    let names: Vec<&str> = model
        .tree
        .basic_events()
        .iter()
        .map(|&e| model.tree.name(e))
        .collect();
    let scenarios: String = (0..24)
        .map(|i| {
            format!(
                "s{i}: {} = {}, {} = {}, {} = {}\n",
                names[(i * 37) % names.len()],
                i % 2,
                names[(i * 53 + 11) % names.len()],
                (i / 2) % 2,
                names[(i * 101 + 29) % names.len()],
                (i / 4) % 2,
            )
        })
        .collect();

    let handle = start_server(2, 64);
    let mut client = Client::connect(handle.addr()).expect("connects");
    // Witness enumeration is meaningless (and don't-care exponential) at
    // 1000 events; verdict-only sessions are the scale configuration.
    let session = client
        .load_with(
            &text,
            bfl_server::SessionOptions {
                witness_limit: Some(0),
                ..bfl_server::SessionOptions::default()
            },
        )
        .expect("loads the scaled model");
    let plan = client.prepare(&session, "exists top").expect("prepares");

    let read_counters = |client: &mut Client| {
        let doc = client.stats(Some(&session)).expect("stats");
        let stats = doc.get("stats").expect("session stats");
        (
            stats
                .get("cache_misses")
                .and_then(|v| v.as_u64())
                .expect("cache_misses"),
            stats
                .get("arena_nodes")
                .and_then(|v| v.as_u64())
                .expect("arena_nodes"),
        )
    };

    let sweep1 = client.sweep(&session, &plan, &scenarios).expect("sweeps");
    assert_eq!(
        sweep1
            .get("outcomes")
            .and_then(|o| o.as_array())
            .map(<[_]>::len),
        Some(24)
    );
    let (misses_warm, arena_warm) = read_counters(&mut client);
    assert!(arena_warm > 0, "the compiled diagram lives in the arena");

    let sweep2 = client.sweep(&session, &plan, &scenarios).expect("sweeps");
    assert_eq!(
        sweep2
            .get("outcomes")
            .and_then(|o| o.as_array())
            .map(<[_]>::len),
        Some(24)
    );
    let (misses_after, arena_after) = read_counters(&mut client);
    assert_eq!(
        misses_after, misses_warm,
        "warm sweep must not rebuild any plan"
    );
    assert_eq!(
        arena_after, arena_warm,
        "warm sweep must not grow the shared arena"
    );
    client.unload(&session).expect("unloads");
    handle.shutdown();
}

#[test]
fn cause_on_a_scaled_tree_reports_the_exact_model_count() {
    // A complete observation failing exactly one (greedily minimised)
    // cut set keeps the cause space small; the served `total` must be
    // the exact BDD model count — equal to the enumerated sets, no
    // truncation — and agree with the in-process engine.
    let model = corpus::scaled_model(1_000);
    let tree = &model.tree;
    let n = tree.num_basic_events();

    // Greedy repair from the all-failed vector leaves a minimal cut set.
    let mut observation = StatusVector::all_failed(n);
    for i in 0..n {
        let repaired = observation.with(i, false);
        if tree.evaluate(&repaired, tree.top()) {
            observation = repaired;
        }
    }
    assert!(tree.evaluate(&observation, tree.top()));
    let failed = observation.failed_indices();
    assert!(!failed.is_empty());

    let scenario_line: String = (0..n)
        .map(|i| {
            format!(
                "{} = {}",
                tree.name(tree.basic_events()[i]),
                u8::from(observation.get(i))
            )
        })
        .collect::<Vec<_>>()
        .join(", ");

    // Reference run through the in-process engine.
    let reference_session = bfl_core::engine::AnalysisSession::new(tree.clone());
    let query = bfl_core::parser::parse_query("cause(top)").expect("parses");
    let reference_plan = reference_session.prepare(&query).expect("prepares");
    let scenario = (0..n).fold(bfl_core::Scenario::new(), |s, i| {
        s.bind(tree.name(tree.basic_events()[i]), observation.get(i))
    });
    let reference = reference_plan
        .cause(&scenario)
        .expect("causes")
        .causes
        .expect("cause outcome carries a report");
    assert!(
        !reference.truncated,
        "smoke observation must enumerate fully"
    );
    assert_eq!(reference.total, reference.causes.len() as u128);

    // The same question over the wire.
    let handle = start_server(2, 64);
    let mut client = Client::connect(handle.addr()).expect("connects");
    let text = galileo::to_galileo(tree, Some(&model.probabilities));
    let session = client.load(&text).expect("loads");
    let plan = client.prepare(&session, "cause(top)").expect("prepares");
    let outcome = client
        .cause(&session, &plan, &scenario_line)
        .expect("cause");
    let report = outcome.get("causes").expect("outcome carries causes");
    let total = report.get("total").and_then(|v| v.as_u64()).expect("total");
    let sets = report
        .get("sets")
        .and_then(|v| v.as_array())
        .expect("sets array");
    assert_eq!(
        report.get("truncated").and_then(|v| v.as_bool()),
        Some(false),
        "{report}"
    );
    assert_eq!(total, sets.len() as u64, "total must match the model count");
    assert_eq!(
        u128::from(total),
        reference.total,
        "server and engine agree"
    );
    client.unload(&session).expect("unloads");
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_accepted_request() {
    let handle = start_server(3, 64);
    let addr = handle.addr();
    let mut setup = Client::connect(addr).expect("connects");
    let session = setup.load(MODEL).expect("loads");

    // Pipeline a batch of real queries followed by `shutdown` on one
    // connection: every request enqueued before the shutdown must be
    // answered (drained), none lost.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    let n = 20u64;
    let mut batch = String::new();
    for i in 1..=n {
        batch.push_str(&format!(
            "{{\"id\":{i},\"op\":\"check\",\"session\":{},\"query\":\"exists MCS(T) & A\"}}\n",
            bfl_core::report::json_str(&session)
        ));
    }
    batch.push_str(&format!("{{\"id\":{},\"op\":\"shutdown\"}}\n", n + 1));
    stream.write_all(batch.as_bytes()).expect("write");
    stream.flush().expect("flush");

    let mut reader = BufReader::new(stream);
    let mut ids = Vec::new();
    for _ in 0..=n {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let response = Response::parse(line.trim_end()).expect("parses");
        let id = response.id.expect("echoed id");
        match response.body {
            ResponseBody::Result(result) => {
                if id <= n {
                    assert!(result.contains("\"holds\":true"), "{result}");
                } else {
                    assert!(result.contains("stopping"), "{result}");
                }
            }
            ResponseBody::Error { code, message } => {
                panic!("request {id} lost to {code}: {message}")
            }
        }
        ids.push(id);
    }
    ids.sort_unstable();
    assert_eq!(ids, (1..=n + 1).collect::<Vec<u64>>());

    // The server has fully stopped: joining returns promptly and new
    // connections cannot be served.
    handle.join();
    match Client::connect(addr) {
        // The listener is gone; at most a racing dial can still open a
        // socket, but no request will be answered.
        Err(_) => {}
        Ok(mut client) => {
            assert!(client.stats(None).is_err());
        }
    }
}
