//! Protocol property tests: canonical serialisation round-trips
//! byte-identically, and a live server answers malformed, truncated and
//! oversized lines with structured errors — never by dropping the
//! connection or killing a worker.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use bfl_core::engine::ReorderPolicy;
use bfl_core::MinimalityScope;
use bfl_fault_tree::VariableOrdering;
use bfl_server::{
    Client, ErrorCode, Op, ProbOptions, ProbTarget, Request, Response, Server, ServerConfig,
    SessionOptions,
};

/// A corpus of requests covering every operation and option shape.
fn request_corpus() -> Vec<Request> {
    let full_options = SessionOptions {
        ordering: Some(VariableOrdering::Sifted),
        scope: Some(MinimalityScope::FormulaSupport),
        backend: Some(bfl_core::engine::Backend::Zdd),
        witness_limit: Some(5),
        reorder: Some(ReorderPolicy::Auto { growth_factor: 2.5 }),
        gc: Some(false),
    };
    vec![
        Request::new(Op::Load {
            model: "toplevel T;\nT and A B;\n\"we\u{eb}rd/name\" prob=0.1;\n".to_string(),
            options: SessionOptions::default(),
        }),
        Request::with_id(
            1,
            Op::Load {
                model: "toplevel T;".to_string(),
                options: full_options,
            },
        ),
        Request::with_id(
            2,
            Op::Prepare {
                session: "s1".to_string(),
                query: "exists MCS(IWoS) & H4".to_string(),
            },
        ),
        Request::with_id(
            3,
            Op::Check {
                session: "s1".to_string(),
                query: "P1: forall IS => MoT\nP4: [IW, H3] MCS(\"CP/R\")\n".to_string(),
            },
        ),
        Request::with_id(
            4,
            Op::Eval {
                session: "s1".to_string(),
                plan: "p1".to_string(),
                scenario: "what-if: IW = 1, H3 = 0".to_string(),
            },
        ),
        Request::with_id(
            5,
            Op::Cause {
                session: "s1".to_string(),
                plan: "p3".to_string(),
                scenario: "IT = 1, H2 = 0".to_string(),
                stream: false,
            },
        ),
        Request::new(Op::Cause {
            session: "s1".to_string(),
            plan: "p3".to_string(),
            scenario: String::new(),
            stream: false,
        }),
        Request::with_id(
            44,
            Op::Cause {
                session: "s1".to_string(),
                plan: "p3".to_string(),
                scenario: "IT = 1".to_string(),
                stream: true,
            },
        ),
        Request::with_id(
            5,
            Op::Sweep {
                session: "s1".to_string(),
                plan: "p1".to_string(),
                scenarios: "baseline:\nworst: IW = 1, H5 = 1\n".to_string(),
                stream: false,
            },
        ),
        Request::with_id(
            55,
            Op::Sweep {
                session: "s1".to_string(),
                plan: "p1".to_string(),
                scenarios: "baseline:\nworst: IW = 1, H5 = 1\n".to_string(),
                stream: true,
            },
        ),
        Request::with_id(
            6,
            Op::Prob {
                session: "s1".to_string(),
                target: ProbTarget::Plan {
                    plan: "p1".to_string(),
                    scenario: Some("IW = 1".to_string()),
                },
                options: ProbOptions::default(),
            },
        ),
        Request::with_id(
            7,
            Op::Prob {
                session: "s1".to_string(),
                target: ProbTarget::Plan {
                    plan: "p2".to_string(),
                    scenario: None,
                },
                options: ProbOptions {
                    method: Some("interval".to_string()),
                    ..ProbOptions::default()
                },
            },
        ),
        Request::with_id(
            8,
            Op::Prob {
                session: "s1".to_string(),
                target: ProbTarget::Formula {
                    formula: "MCS(IWoS)".to_string(),
                    given: Some("H1 | H2".to_string()),
                },
                options: ProbOptions {
                    method: Some("mc".to_string()),
                    samples: Some(50000),
                    seed: Some(7),
                    confidence: Some(0.95),
                },
            },
        ),
        Request::with_id(
            9,
            Op::Importance {
                session: "s1".to_string(),
                formula: "IWoS".to_string(),
            },
        ),
        Request::with_id(
            10,
            Op::Explain {
                session: "s1".to_string(),
                plan: "p1".to_string(),
            },
        ),
        Request::with_id(11, Op::Stats { session: None }),
        Request::with_id(
            12,
            Op::Stats {
                session: Some("s1".to_string()),
            },
        ),
        Request::with_id(
            13,
            Op::Maintain {
                session: "s1".to_string(),
            },
        ),
        Request::with_id(
            14,
            Op::Lint {
                session: "s1".to_string(),
                spec: None,
            },
        ),
        Request::with_id(
            15,
            Op::Lint {
                session: "s1".to_string(),
                spec: Some("P1: exists T\nP2: forall T | !T\n".to_string()),
            },
        ),
        Request::with_id(
            16,
            Op::Unload {
                session: "s1".to_string(),
            },
        ),
        Request::with_id(u64::MAX, Op::Shutdown),
    ]
}

#[test]
fn every_request_round_trips_byte_identically() {
    for request in request_corpus() {
        let line = request.to_json_line();
        let parsed = Request::parse(&line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
        assert_eq!(parsed, request, "{line}");
        assert_eq!(parsed.to_json_line(), line, "second serialisation drifted");
    }
}

#[test]
fn every_response_round_trips_byte_identically() {
    let responses = vec![
        Response::ok(None, "{\"session\":\"s1\"}"),
        Response::ok(Some(3), "{\"outcomes\":[{\"holds\":true,\"probability\":0.020000000000000004}],\"totals\":{\"cache_hits\":12}}"),
        Response::ok(Some(4), "[[\"A\",\"B\"],[\"C\"]]"),
        Response::ok(Some(5), "null"),
        Response::error(None, ErrorCode::ParseError, "invalid JSON: x at byte 0"),
        Response::error(Some(6), ErrorCode::Busy, "request queue is full, retry later"),
        Response::error(Some(7), ErrorCode::UnknownSession, "no session `s9`"),
        Response::error(Some(8), ErrorCode::Oversized, "line too long"),
        Response::error(Some(9), ErrorCode::ShuttingDown, "server is draining"),
        Response::error(Some(10), ErrorCode::Internal, "handler panicked: ?"),
    ];
    for response in responses {
        let line = response.to_json_line();
        let parsed = Response::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(parsed, response, "{line}");
        assert_eq!(parsed.to_json_line(), line, "second serialisation drifted");
    }
}

#[test]
fn live_responses_reparse_to_the_same_bytes() {
    // End-to-end: every document a real server produces survives the
    // client-side parse → serialise cycle byte-identically.
    let handle = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("binds");
    let mut client = Client::connect(handle.addr()).expect("connects");
    let model = "toplevel T;\nT and A B;\nA prob=0.1;\nB prob=0.2;\n";
    let lines = [
        format!(
            "{{\"id\":1,\"op\":\"load\",\"model\":{}}}",
            bfl_core::report::json_str(model)
        ),
        "{\"id\":2,\"op\":\"prepare\",\"session\":\"s1\",\"query\":\"exists MCS(T)\"}".to_string(),
        "{\"id\":3,\"op\":\"check\",\"session\":\"s1\",\"query\":\"Q: forall A & B => T\"}"
            .to_string(),
        "{\"id\":4,\"op\":\"eval\",\"session\":\"s1\",\"plan\":\"p1\",\"scenario\":\"A = 1\"}"
            .to_string(),
        "{\"id\":5,\"op\":\"sweep\",\"session\":\"s1\",\"plan\":\"p1\",\"scenarios\":\"a: A = 1\\nb: B = 0\"}"
            .to_string(),
        "{\"id\":6,\"op\":\"prob\",\"session\":\"s1\",\"plan\":\"p1\"}".to_string(),
        "{\"id\":7,\"op\":\"prob\",\"session\":\"s1\",\"formula\":\"T\",\"given\":\"A\"}"
            .to_string(),
        "{\"id\":8,\"op\":\"importance\",\"session\":\"s1\",\"formula\":\"T\"}".to_string(),
        "{\"id\":9,\"op\":\"explain\",\"session\":\"s1\",\"plan\":\"p1\"}".to_string(),
        "{\"id\":10,\"op\":\"stats\",\"session\":\"s1\"}".to_string(),
        "{\"id\":11,\"op\":\"maintain\",\"session\":\"s1\"}".to_string(),
        "{\"id\":90,\"op\":\"lint\",\"session\":\"s1\"}".to_string(),
        "{\"id\":91,\"op\":\"lint\",\"session\":\"s1\",\"spec\":\"P: exists T | !T\"}".to_string(),
        "{\"id\":12,\"op\":\"stats\"}".to_string(),
        "{\"id\":13,\"op\":\"unload\",\"session\":\"s1\"}".to_string(),
        "{\"id\":14,\"op\":\"eval\",\"session\":\"s1\",\"plan\":\"p1\"}".to_string(),
    ];
    for line in &lines {
        let raw = client.round_trip(line).expect("round trip");
        let response = Response::parse(&raw).unwrap_or_else(|e| panic!("{raw}: {e}"));
        assert_eq!(response.to_json_line(), raw, "{line}");
    }
    handle.shutdown();
}

#[test]
fn lint_diagnostics_round_trip_through_the_typed_client() {
    let handle = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("binds");
    let mut client = Client::connect(handle.addr()).expect("connects");
    // `A prob=1.0` is a certain event (L006) and `G` has one child
    // (L002), so the model lint is deterministically non-empty.
    let model = "toplevel T;\nT and G B;\nG or A;\nA prob=1.0;\nB prob=0.2;\n";
    client.load(model).expect("loads");

    let diags = client.lint("s1", None).expect("lints");
    let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
    assert!(codes.contains(&"L002"), "{codes:?}");
    assert!(codes.contains(&"L006"), "{codes:?}");

    // The typed diagnostics re-serialise to the exact document the
    // engine produces locally for the same model: the round trip
    // through the wire is lossless.
    let parsed = bfl_fault_tree::galileo::parse(model).expect("parses");
    let local = bfl_core::engine::AnalysisSession::builder()
        .probabilities(parsed.probabilities)
        .build(parsed.tree)
        .lint();
    assert_eq!(
        bfl_core::lint::to_json(&diags),
        bfl_core::lint::to_json(&local)
    );

    // Spec lint flows through the same channel: a tautology earns L008.
    let diags = client
        .lint("s1", Some("P: exists B | !B\n"))
        .expect("lints spec");
    assert!(
        diags.iter().any(|d| d.code == "L008"),
        "{:?}",
        diags.iter().map(|d| &d.code).collect::<Vec<_>>()
    );

    handle.shutdown();
}

#[test]
fn uncertainty_fields_flow_through_the_protocol() {
    let handle = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("binds");
    let mut client = Client::connect(handle.addr()).expect("connects");
    let mut ask = |line: &str| -> String { client.round_trip(line).expect("round trip") };

    // Session s1: ranged annotations. Exact evaluation refuses with a
    // structured error naming the offending event; interval propagation
    // answers with bracket fields.
    let ranged = "toplevel T;\nT or A B;\nA prob=0.1..0.3;\nB prob=0.2;\n";
    let raw = ask(&format!(
        "{{\"op\":\"load\",\"model\":{}}}",
        bfl_core::report::json_str(ranged)
    ));
    assert!(raw.contains("\"session\":\"s1\""), "{raw}");
    let raw = ask("{\"op\":\"prob\",\"session\":\"s1\",\"formula\":\"T\"}");
    assert!(raw.contains("\"code\":\"eval_error\""), "{raw}");
    assert!(raw.contains('A'), "{raw}");
    let raw = ask("{\"op\":\"prob\",\"session\":\"s1\",\"formula\":\"T\",\"method\":\"interval\"}");
    assert!(
        raw.contains("\"interval\":{\"lo\":0.28,\"hi\":0.43999999999999995}"),
        "{raw}"
    );
    assert!(raw.contains("\"method\":\"interval\""), "{raw}");
    // The compiled-plan arm carries the same fields.
    let raw = ask("{\"op\":\"prepare\",\"session\":\"s1\",\"query\":\"P(T) >= 0.3\"}");
    assert!(raw.contains("\"plan\":\"p1\""), "{raw}");
    let raw = ask(
        "{\"op\":\"prob\",\"session\":\"s1\",\"plan\":\"p1\",\"scenario\":\"A = 1\",\"method\":\"interval\"}",
    );
    assert!(raw.contains("\"interval\":{\"lo\":1,\"hi\":1}"), "{raw}");

    // Session s2: point annotations. Monte Carlo answers carry the
    // estimate with its confidence interval, and a warm plan repeats
    // the estimate byte-identically (chunk-owned seed streams).
    let point = "toplevel T;\nT and A B;\nA prob=0.1;\nB prob=0.2;\n";
    let raw = ask(&format!(
        "{{\"op\":\"load\",\"model\":{}}}",
        bfl_core::report::json_str(point)
    ));
    assert!(raw.contains("\"session\":\"s2\""), "{raw}");
    let mc = "{\"op\":\"prob\",\"session\":\"s2\",\"formula\":\"T\",\"method\":\"mc\",\"samples\":20000,\"seed\":7,\"confidence\":0.95}";
    let first = ask(mc);
    assert!(first.contains("\"estimate\":{\"point\":"), "{first}");
    assert!(first.contains("\"confidence\":0.95"), "{first}");
    assert!(first.contains("\"samples\":20000"), "{first}");
    assert!(first.contains("\"method\":\"mc\""), "{first}");
    for _ in 0..2 {
        assert_eq!(ask(mc), first, "warm Monte Carlo answers must repeat");
    }
    // The sampler totals surface in the session stats.
    let raw = ask("{\"op\":\"stats\",\"session\":\"s2\"}");
    assert!(
        raw.contains("\"sampler\":{\"runs\":3,\"samples\":60000}"),
        "{raw}"
    );

    // Malformed method fields: structured bad_field errors, never a
    // dropped connection or a silent default.
    for (line, needle) in [
        (
            "{\"op\":\"prob\",\"session\":\"s2\",\"formula\":\"T\",\"method\":\"bogus\"}",
            "unknown method `bogus`",
        ),
        (
            "{\"op\":\"prob\",\"session\":\"s2\",\"formula\":\"T\",\"method\":\"exact\",\"samples\":10}",
            "apply to method `mc`",
        ),
        (
            "{\"op\":\"prob\",\"session\":\"s2\",\"formula\":\"T\",\"samples\":\"many\"}",
            "`samples` must be a non-negative integer",
        ),
        (
            "{\"op\":\"prob\",\"session\":\"s2\",\"formula\":\"T\",\"confidence\":true}",
            "`confidence` must be a number",
        ),
    ] {
        let raw = ask(line);
        let response = Response::parse(&raw).unwrap_or_else(|e| panic!("{raw}: {e}"));
        match response.body {
            bfl_server::ResponseBody::Error { code, message } => {
                assert_eq!(code, ErrorCode::BadField, "{raw}");
                assert!(message.contains(needle), "{raw}");
            }
            other => panic!("expected bad_field for {line}, got {other:?}"),
        }
    }

    // Every uncertainty-bearing response survives the client-side
    // parse → serialise cycle byte-identically, like the rest of the
    // protocol.
    for line in [
        "{\"op\":\"prob\",\"session\":\"s1\",\"formula\":\"T\",\"method\":\"interval\"}",
        mc,
        "{\"op\":\"stats\",\"session\":\"s2\"}",
    ] {
        let raw = ask(line);
        let response = Response::parse(&raw).unwrap_or_else(|e| panic!("{raw}: {e}"));
        assert_eq!(response.to_json_line(), raw, "{line}");
    }
    handle.shutdown();
}

/// Sends raw bytes and reads one response line.
fn raw_round_trip(stream: &mut TcpStream, reader: &mut impl BufRead, bytes: &[u8]) -> String {
    stream.write_all(bytes).expect("write");
    stream.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    line.trim_end().to_string()
}

#[test]
fn malformed_lines_get_structured_errors_and_the_connection_survives() {
    let handle = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        max_line_bytes: 1 << 16,
        ..ServerConfig::default()
    })
    .expect("binds");
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let cases: Vec<(&[u8], &str)> = vec![
        (b"this is not json\n", "parse_error"),
        (b"{\"op\":\n", "parse_error"),
        (b"{\"op\":\"load\"} trailing\n", "parse_error"),
        (b"[1,2,3]\n", "parse_error"),
        (b"\"just a string\"\n", "parse_error"),
        (b"{\"id\":\"x\",\"op\":\"stats\"}\n", "parse_error"),
        (b"{\"op\":\"frobnicate\"}\n", "unknown_op"),
        (b"{\"no_op\":1}\n", "unknown_op"),
        (
            b"{\"op\":\"prepare\",\"session\":\"s1\"}\n",
            "missing_field",
        ),
        (
            b"{\"op\":\"eval\",\"session\":9,\"plan\":\"p\"}\n",
            "bad_field",
        ),
        (
            b"{\"op\":\"stats\",\"session\":\"s99\"}\n",
            "unknown_session",
        ),
        (
            b"{\"op\":\"load\",\"model\":\"not galileo\"}\n",
            "model_error",
        ),
        // Invalid UTF-8 in the middle of a line.
        (b"{\"op\":\"stats\xff}\n", "parse_error"),
    ];
    for (bytes, expected_code) in cases {
        let raw = raw_round_trip(&mut stream, &mut reader, bytes);
        let response = Response::parse(&raw).unwrap_or_else(|e| panic!("{raw}: {e}"));
        match response.body {
            bfl_server::ResponseBody::Error { code, .. } => {
                assert_eq!(code.as_str(), expected_code, "{raw}");
            }
            other => panic!("expected an error for {bytes:?}, got {other:?}"),
        }
    }

    // The same connection still serves valid requests afterwards.
    let raw = raw_round_trip(&mut stream, &mut reader, b"{\"id\":42,\"op\":\"stats\"}\n");
    let response = Response::parse(&raw).expect("parses");
    assert!(response.is_ok(), "{raw}");
    assert_eq!(response.id, Some(42));
    handle.shutdown();
}

#[test]
fn oversized_lines_are_rejected_without_killing_the_connection() {
    let handle = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        max_line_bytes: 4096,
        ..ServerConfig::default()
    })
    .expect("binds");
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // A 1 MiB line against a 4 KiB limit: rejected as `oversized`, and
    // the server never buffers more than the limit.
    let mut big = Vec::with_capacity(1 << 20);
    big.extend_from_slice(b"{\"op\":\"load\",\"model\":\"");
    big.resize((1 << 20) - 3, b'x');
    big.extend_from_slice(b"\"}\n");
    let raw = raw_round_trip(&mut stream, &mut reader, &big);
    let response = Response::parse(&raw).expect("parses");
    match response.body {
        bfl_server::ResponseBody::Error { code, .. } => {
            assert_eq!(code, ErrorCode::Oversized, "{raw}");
        }
        other => panic!("{other:?}"),
    }

    // The connection survives and the next request works.
    let raw = raw_round_trip(&mut stream, &mut reader, b"{\"id\":1,\"op\":\"stats\"}\n");
    assert!(Response::parse(&raw).expect("parses").is_ok(), "{raw}");
    handle.shutdown();
}

#[test]
fn truncated_final_line_is_answered_before_eof() {
    let handle = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("binds");
    // A request cut off mid-document with no trailing newline: the
    // reader treats the fragment as a final line, answers the parse
    // error, and closes cleanly after the peer's EOF.
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    stream.write_all(b"{\"id\":5,\"op\":\"che").expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut raw = String::new();
    BufReader::new(stream)
        .read_to_string(&mut raw)
        .expect("read");
    let line = raw.lines().next().expect("one response");
    let response = Response::parse(line).expect("parses");
    match response.body {
        bfl_server::ResponseBody::Error { code, .. } => {
            assert_eq!(code, ErrorCode::ParseError, "{line}")
        }
        other => panic!("{other:?}"),
    }
    handle.shutdown();
}
