//! Differential oracle suite: served `check`/`eval`/`prob` responses
//! are cross-checked against the brute-force reference evaluators
//! (`bfl_core::semantics::eval_query`, `bfl_core::quant::probability_naive`)
//! on randomized trees × queries × scenarios (seeded SplitMix64).
//!
//! On any divergence the failing Galileo model + query + scenario are
//! dumped to a tempfile whose path is part of the assertion message, so
//! a failure seeds a deterministic repro without re-running the sweep.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::sync::atomic::{AtomicU64, Ordering};

use bfl_core::ast::{CmpOp, Formula, Query};
use bfl_core::{quant, semantics};
use bfl_fault_tree::galileo;
use bfl_fault_tree::generator::{random_tree, RandomTreeConfig};
use bfl_fault_tree::rng::Prng;
use bfl_fault_tree::FaultTree;
use bfl_server::{Client, Server, ServerConfig, ServerHandle, SessionOptions};

// ---------------------------------------------------------------------------
// Random-case generation (seeded, deterministic).
// ---------------------------------------------------------------------------

/// A random layer-1 formula over the tree's elements: atoms, Boolean
/// connectives, evidence (basic events only) and `MCS`/`MPS`/`VOT`.
fn random_formula(rng: &mut Prng, names: &[String], basics: &[String], depth: usize) -> Formula {
    if depth == 0 {
        return if rng.gen_bool(0.1) {
            Formula::Const(rng.gen_bool(0.5))
        } else {
            Formula::atom(names[rng.gen_range(0..names.len())].clone())
        };
    }
    match rng.gen_range(0..10) {
        0 => Formula::atom(names[rng.gen_range(0..names.len())].clone()),
        1 => random_formula(rng, names, basics, depth - 1).not(),
        2 => random_formula(rng, names, basics, depth - 1).and(random_formula(
            rng,
            names,
            basics,
            depth - 1,
        )),
        3 => random_formula(rng, names, basics, depth - 1).or(random_formula(
            rng,
            names,
            basics,
            depth - 1,
        )),
        4 => random_formula(rng, names, basics, depth - 1).implies(random_formula(
            rng,
            names,
            basics,
            depth - 1,
        )),
        5 => random_formula(rng, names, basics, depth - 1).iff(random_formula(
            rng,
            names,
            basics,
            depth - 1,
        )),
        6 => random_formula(rng, names, basics, depth - 1).with_evidence(
            basics[rng.gen_range(0..basics.len())].clone(),
            rng.gen_bool(0.5),
        ),
        7 => random_formula(rng, names, basics, depth - 1).mcs(),
        8 => random_formula(rng, names, basics, depth - 1).mps(),
        _ => {
            let n = rng.gen_range(2..=3);
            let operands: Vec<Formula> = (0..n)
                .map(|_| random_formula(rng, names, basics, depth - 1))
                .collect();
            let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ge, CmpOp::Gt][rng.gen_range(0..5)];
            Formula::vot(op, rng.gen_range(0..=n + 1) as u32, operands)
        }
    }
}

/// A random Boolean layer-2 query (`exists`/`forall`/`IDP`).
fn random_query(rng: &mut Prng, names: &[String], basics: &[String]) -> Query {
    let phi = random_formula(rng, names, basics, 3);
    match rng.gen_range(0..4) {
        0 | 1 => Query::exists(phi),
        2 => Query::forall(phi),
        _ => Query::idp(phi, random_formula(rng, names, basics, 2)),
    }
}

/// A random scenario line over the basic events (0–3 bindings).
fn random_scenario_line(rng: &mut Prng, basics: &[String]) -> String {
    let n = rng.gen_range(0..=3);
    let bindings: Vec<String> = (0..n)
        .map(|_| {
            format!(
                "{} = {}",
                basics[rng.gen_range(0..basics.len())],
                u8::from(rng.gen_bool(0.5))
            )
        })
        .collect();
    bindings.join(", ")
}

/// The scenario a binding line denotes (first-binding-wins, like the
/// engine).
fn scenario_of_line(line: &str) -> bfl_core::Scenario {
    if line.trim().is_empty() {
        bfl_core::Scenario::new()
    } else {
        bfl_core::Scenario::parse(line).expect("scenario line parses")
    }
}

/// Element-name vectors for the generator helpers.
fn name_vectors(tree: &FaultTree) -> (Vec<String>, Vec<String>) {
    let names: Vec<String> = tree
        .basic_event_names()
        .iter()
        .map(|s| s.to_string())
        .chain(tree.gates().map(|g| tree.name(g).to_string()))
        .collect();
    let basics: Vec<String> = tree
        .basic_event_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    (names, basics)
}

/// Dumps a failing case to a tempfile and returns its path — the
/// "shrunk" repro the assertion message points at.
fn dump_failure(model: &str, detail: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "bfl-differential-failure-{}-{}.txt",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let contents = format!(
        "# failing differential case\n# --- galileo model ---\n{model}\n# --- case ---\n{detail}\n"
    );
    std::fs::write(&path, contents).expect("write failure dump");
    path
}

fn start_server() -> ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("binds")
}

// ---------------------------------------------------------------------------
// The differential sweeps.
// ---------------------------------------------------------------------------

#[test]
fn served_check_and_eval_agree_with_reference_semantics() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connects");
    let mut rng = Prng::seed_from_u64(0xD1FF_0001);
    for case in 0..8u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 6 + (case as usize % 4),
            num_gates: 4 + (case as usize % 3),
            max_children: 3,
            vot_probability: 0.15,
            seed: 0x5EED_0000 + case,
        });
        let model = galileo::to_galileo(&tree, None);
        let session = client.load(&model).expect("loads");
        let (names, basics) = name_vectors(&tree);
        for _ in 0..6 {
            let query = random_query(&mut rng, &names, &basics);
            let query_src = query.to_string();
            let expected = semantics::eval_query(&tree, &query).expect("reference evaluates");

            // Path 1: the `check` endpoint (full pipeline per request).
            let report = client.check(&session, &query_src).expect("check");
            let served = report
                .get("outcomes")
                .and_then(|o| o.as_array())
                .and_then(|outcomes| outcomes.first().and_then(|o| o.get("holds")?.as_bool()));
            if served != Some(expected) {
                let path = dump_failure(&model, &format!("check query: {query_src}"));
                panic!(
                    "served check diverged from semantics::eval_query \
                     (served {served:?}, expected {expected}); repro dumped to {}",
                    path.display()
                );
            }

            // Path 2: prepare once, evaluate under random scenarios by
            // BDD restriction — against the specialised reference query.
            let plan = client.prepare(&session, &query_src).expect("prepares");
            let top = tree.name(tree.top()).to_string();
            for _ in 0..4 {
                let line = random_scenario_line(&mut rng, &basics);
                let scenario = scenario_of_line(&line);
                let specialised = scenario.specialise_query(&query, &top);
                let expected =
                    semantics::eval_query(&tree, &specialised).expect("reference evaluates");
                let outcome = client.eval(&session, &plan, &line).expect("eval");
                let served = outcome.get("holds").and_then(|v| v.as_bool());
                if served != Some(expected) {
                    let path = dump_failure(
                        &model,
                        &format!("eval query: {query_src}\nscenario: [{line}]"),
                    );
                    panic!(
                        "served eval diverged from the reference under [{line}] \
                         (served {served:?}, expected {expected}); repro dumped to {}",
                        path.display()
                    );
                }
            }
        }
        client.unload(&session).expect("unloads");
    }
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn served_prob_agrees_with_probability_naive() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connects");
    let mut rng = Prng::seed_from_u64(0xD1FF_0002);
    for case in 0..6u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 6 + (case as usize % 3),
            num_gates: 4 + (case as usize % 3),
            max_children: 3,
            vot_probability: 0.1,
            seed: 0x5EED_1000 + case,
        });
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|i| 0.05 + 0.85 * (i as f64) / (n as f64))
            .collect();
        let annotated: Vec<Option<f64>> = probs.iter().map(|&p| Some(p)).collect();
        let model = galileo::to_galileo(&tree, Some(&annotated));
        let session = client.load(&model).expect("loads");
        let (names, basics) = name_vectors(&tree);
        for _ in 0..5 {
            let phi = random_formula(&mut rng, &names, &basics, 3);
            let phi_src = phi.to_string();
            let expected = quant::probability_naive(&tree, &phi, &probs).expect("naive");

            // Path 1: ad-hoc formula probability through the session.
            let served = client
                .prob_formula(&session, &phi_src, None)
                .expect("prob")
                .expect("unconditional probability is defined");
            if (served - expected).abs() > 1e-9 {
                let path = dump_failure(&model, &format!("prob formula: {phi_src}"));
                panic!(
                    "served prob diverged from probability_naive \
                     (served {served}, expected {expected}); repro dumped to {}",
                    path.display()
                );
            }

            // Path 2: compiled-plan probability under random scenarios,
            // against the naive probability of the specialised formula.
            let plan = client
                .prepare(&session, &Query::exists(phi.clone()).to_string())
                .expect("prepares");
            for _ in 0..3 {
                let line = random_scenario_line(&mut rng, &basics);
                let scenario = scenario_of_line(&line);
                let specialised = scenario.specialise(&phi);
                let expected =
                    quant::probability_naive(&tree, &specialised, &probs).expect("naive");
                let served = client
                    .prob_plan(&session, &plan, Some(&line))
                    .expect("prob")
                    .expect("unconditional probability is defined");
                if (served - expected).abs() > 1e-9 {
                    let path = dump_failure(
                        &model,
                        &format!("prob plan formula: {phi_src}\nscenario: [{line}]"),
                    );
                    panic!(
                        "served plan prob diverged from probability_naive under [{line}] \
                         (served {served}, expected {expected}); repro dumped to {}",
                        path.display()
                    );
                }
            }
        }
        client.unload(&session).expect("unloads");
    }
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn served_cause_agrees_with_actual_causes_naive() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connects");
    let mut rng = Prng::seed_from_u64(0xD1FF_0005);
    for case in 0..5u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 6 + (case as usize % 3),
            num_gates: 4 + (case as usize % 3),
            max_children: 3,
            vot_probability: 0.15,
            seed: 0x5EED_4000 + case,
        });
        let model = galileo::to_galileo(&tree, None);
        // The default witness limit (3) would truncate the enumeration;
        // raise it so the served sets are exhaustive like the reference.
        let session = client
            .load_with(
                &model,
                SessionOptions {
                    witness_limit: Some(1 << 10),
                    ..SessionOptions::default()
                },
            )
            .expect("loads");
        let (names, basics) = name_vectors(&tree);
        for _ in 0..5 {
            let phi = random_formula(&mut rng, &names, &basics, 2);
            let mut evidence: Vec<(String, bool)> = Vec::new();
            for name in &basics {
                if rng.gen_bool(0.6) {
                    evidence.push((name.clone(), rng.gen_bool(0.5)));
                }
            }
            let query = Query::cause(phi.clone(), evidence.clone());
            let query_src = query.to_string();
            let plan = client.prepare(&session, &query_src).expect("prepares");
            for _ in 0..3 {
                let line = random_scenario_line(&mut rng, &basics);
                let scenario = scenario_of_line(&line);
                // The reference observation: query evidence first, then
                // the scenario bindings (first-binding-wins).
                let combined: Vec<(String, bool)> = evidence
                    .iter()
                    .cloned()
                    .chain(scenario.bindings().iter().map(|(n, v)| (n.clone(), *v)))
                    .collect();
                let expected_sets =
                    semantics::actual_causes_naive(&tree, &phi, &combined).expect("naive");
                let mut expected: Vec<Vec<String>> = expected_sets
                    .iter()
                    .map(|s| {
                        let mut names: Vec<String> = s
                            .iter()
                            .map(|&bi| tree.name(tree.basic_events()[bi]).to_string())
                            .collect();
                        names.sort();
                        names
                    })
                    .collect();
                expected.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
                let outcome = client.cause(&session, &plan, &line).expect("cause");
                let report = outcome.get("causes").expect("outcome carries causes");
                let served: Vec<Vec<String>> = report
                    .get("sets")
                    .and_then(|v| v.as_array())
                    .expect("sets array")
                    .iter()
                    .map(|set| {
                        set.get("events")
                            .and_then(|v| v.as_array())
                            .expect("events array")
                            .iter()
                            .map(|e| e.as_str().expect("event name").to_string())
                            .collect()
                    })
                    .collect();
                let total = report.get("total").and_then(|v| v.as_u64());
                if served != expected || total != Some(expected.len() as u64) {
                    let path = dump_failure(
                        &model,
                        &format!("cause query: {query_src}\nscenario: [{line}]"),
                    );
                    panic!(
                        "served cause diverged from actual_causes_naive under [{line}] \
                         (served {served:?} total {total:?}, expected {expected:?}); \
                         repro dumped to {}",
                        path.display()
                    );
                }
                let holds = outcome.get("holds").and_then(|v| v.as_bool());
                let failing = report.get("failing").and_then(|v| v.as_bool());
                assert_eq!(
                    holds,
                    Some(failing == Some(true) && !expected.is_empty()),
                    "verdict is `failing with at least one cause` for {query_src}"
                );
            }
        }
        client.unload(&session).expect("unloads");
    }
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn mc_and_interval_methods_agree_with_exact_on_random_trees() {
    use bfl_core::uncertainty::estimate_probability;
    use bfl_core::{AnalysisSession, BflError, Method, ProbValue};

    let mut rng = Prng::seed_from_u64(0xD1FF_0004);
    for case in 0..4u64 {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: 6 + (case as usize % 3),
            num_gates: 4 + (case as usize % 3),
            max_children: 3,
            vot_probability: 0.1,
            seed: 0x5EED_3000 + case,
        });
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|i| 0.1 + 0.7 * (i as f64) / (n as f64))
            .collect();
        let model = galileo::to_galileo(
            &tree,
            Some(&probs.iter().map(|&p| Some(p)).collect::<Vec<_>>()),
        );
        let session = AnalysisSession::builder()
            .probabilities(probs.iter().map(|&p| Some(p)).collect())
            .build(tree.clone());
        let (names, basics) = name_vectors(&tree);
        for draw in 0..3 {
            let phi = random_formula(&mut rng, &names, &basics, 2);
            let exact = quant::probability_naive(&tree, &phi, &probs).expect("naive");

            // Degenerate intervals: a point-annotated model pushed
            // through the interval walk must reproduce the exact
            // Shannon walk bit for bit, [p, p].
            let exact_walk = session
                .probability_value(&phi, None, Some(Method::Exact))
                .expect("exact walk")
                .expect("unconditional probability is defined");
            let interval_walk = session
                .probability_value(&phi, None, Some(Method::Interval))
                .expect("interval walk")
                .expect("unconditional probability is defined");
            match (&exact_walk, &interval_walk) {
                (ProbValue::Exact(p), ProbValue::Interval(iv)) => {
                    if p.to_bits() != iv.lo.to_bits() || p.to_bits() != iv.hi.to_bits() {
                        let path = dump_failure(&model, &format!("degenerate interval: P({phi})"));
                        panic!(
                            "degenerate interval [{}, {}] is not bit-identical to exact {p}; \
                             repro dumped to {}",
                            iv.lo,
                            iv.hi,
                            path.display()
                        );
                    }
                }
                other => panic!("unexpected method result shapes: {other:?}"),
            }

            // Monte Carlo: the 99% CI must contain the exact value
            // (seeded, so this can never flake), and equal
            // (seed, samples) must be byte-identical at 1/2/8 workers.
            let seed = 0xA5A5_0000 + case * 16 + draw;
            let mc = |threads: usize| {
                estimate_probability(&tree, &probs, &phi, None, &[], 20_000, seed, 0.99, threads)
            };
            let one = match mc(1) {
                Ok(est) => est.expect("unconditional estimate is defined"),
                // Minimality operators are exact-only; skip those draws.
                Err(BflError::UnsupportedMethod { .. }) => continue,
                Err(e) => panic!("estimator failed on P({phi}): {e}"),
            };
            if !(one.ci_lo <= exact && exact <= one.ci_hi) {
                let path = dump_failure(&model, &format!("mc ci: P({phi}), seed {seed}"));
                panic!(
                    "99% CI [{}, {}] misses exact {exact}; repro dumped to {}",
                    one.ci_lo,
                    one.ci_hi,
                    path.display()
                );
            }
            for threads in [2usize, 8] {
                let est = mc(threads)
                    .expect("estimates")
                    .expect("unconditional estimate is defined");
                assert_eq!(
                    one.hits, est.hits,
                    "hit count diverged at {threads} workers"
                );
                assert_eq!(
                    one.point.to_bits(),
                    est.point.to_bits(),
                    "estimate must be byte-identical at {threads} workers"
                );
                assert_eq!(one.ci_lo.to_bits(), est.ci_lo.to_bits());
                assert_eq!(one.ci_hi.to_bits(), est.ci_hi.to_bits());
            }
        }
    }
}

#[test]
fn served_conditional_prob_agrees_with_naive_ratio() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connects");
    let mut rng = Prng::seed_from_u64(0xD1FF_0003);
    let tree = random_tree(&RandomTreeConfig {
        num_basic: 8,
        num_gates: 5,
        max_children: 3,
        vot_probability: 0.1,
        seed: 0x5EED_2000,
    });
    let n = tree.num_basic_events();
    let probs: Vec<f64> = (0..n)
        .map(|i| 0.1 + 0.7 * (i as f64) / (n as f64))
        .collect();
    let annotated: Vec<Option<f64>> = probs.iter().map(|&p| Some(p)).collect();
    let model = galileo::to_galileo(&tree, Some(&annotated));
    let session = client.load(&model).expect("loads");
    let (names, basics) = name_vectors(&tree);
    for _ in 0..12 {
        let phi = random_formula(&mut rng, &names, &basics, 2);
        let given = random_formula(&mut rng, &names, &basics, 2);
        let p_joint = quant::probability_naive(&tree, &phi.clone().and(given.clone()), &probs)
            .expect("naive");
        let p_given = quant::probability_naive(&tree, &given, &probs).expect("naive");
        let served = client
            .prob_formula(&session, &phi.to_string(), Some(&given.to_string()))
            .expect("prob");
        match served {
            Some(served) => {
                let expected = p_joint / p_given;
                if (served - expected).abs() > 1e-9 {
                    let path =
                        dump_failure(&model, &format!("conditional prob: P({phi} | {given})"));
                    panic!(
                        "served conditional diverged (served {served}, expected {expected}); \
                         repro dumped to {}",
                        path.display()
                    );
                }
            }
            // The server reports `null` exactly when the engine deems
            // the condition (effectively) zero-probability.
            None => assert!(
                p_given < 1e-6,
                "served null for P({phi} | {given}) but P(given) = {p_given}"
            ),
        }
    }
    client.shutdown().expect("shutdown");
    handle.join();
}
