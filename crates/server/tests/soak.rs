//! Soak and overload coverage for the sharded serving layer: hundreds
//! of concurrent connections against a small, fixed shard count, with
//! assertions on no lost responses, bounded thread count, LRU session
//! eviction, per-session admission control, the connection cap's
//! structured `overloaded` rejection, idle-connection reaping, response
//! streaming, and a graceful shutdown that drains every shard.

// Test-support helpers outside `#[test]` fns: panicking is the
// correct failure mode here, same as in the tests themselves.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use bfl_core::report::json_str;
use bfl_server::{Client, ErrorCode, Response, ResponseBody, Server, ServerConfig, ServerHandle};

const MODEL: &str = "toplevel T;\nT and A B;\nA prob=0.1;\nB prob=0.2;\n";

fn start_server(config: ServerConfig) -> ServerHandle {
    Server::bind(config).expect("binds")
}

/// Threads of this process whose name starts with `bfl-` (acceptor,
/// shards, workers — every thread the server owns). `None` where
/// `/proc` is unavailable.
fn bfl_thread_count() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        let tasks = std::fs::read_dir("/proc/self/task").ok()?;
        let mut count = 0;
        for task in tasks.flatten() {
            if let Ok(name) = std::fs::read_to_string(task.path().join("comm")) {
                if name.trim().starts_with("bfl-") {
                    count += 1;
                }
            }
        }
        Some(count)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[test]
fn soak_220_connections_on_two_shards_loses_nothing() {
    // 220 concurrent connections multiplexed over 2 shard threads and
    // 2 workers: every request answered with its own id, and the
    // server-side thread count must not grow with the connections.
    let handle = start_server(ServerConfig {
        workers: 2,
        shards: 2,
        queue_capacity: 1024,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut setup = Client::connect(addr).expect("connects");
    let session = setup.load(MODEL).expect("loads");
    let plan = setup.prepare(&session, "exists T").expect("prepares");

    let threads_before = bfl_thread_count();

    const CONNS: usize = 220;
    const DRIVERS: usize = 8;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        let session = &session;
        let plan = &plan;
        let mut joins = Vec::new();
        for d in 0..DRIVERS {
            joins.push(scope.spawn(move || {
                // Each driver owns a subset of the connections, keeps
                // them ALL open at once, and round-robins requests.
                let mine = (CONNS + DRIVERS - 1 - d) / DRIVERS;
                let mut clients: Vec<Client> = (0..mine)
                    .map(|_| Client::connect(addr).expect("connects"))
                    .collect();
                for round in 0..ROUNDS {
                    for (c, client) in clients.iter_mut().enumerate() {
                        let scenario = if (c + round) % 2 == 0 {
                            "A = 1, B = 1"
                        } else {
                            "A = 0"
                        };
                        let holds = client
                            .eval(session, plan, scenario)
                            .expect("evals")
                            .get("holds")
                            .and_then(|v| v.as_bool())
                            .expect("bool");
                        assert_eq!(holds, (c + round) % 2 == 0, "driver {d} conn {c}");
                    }
                }
                // Hold the connections open until every driver is done
                // measuring, so the peak genuinely has 220 sockets.
                clients
            }));
        }
        // All 220 connections are open while drivers run; the server
        // must still be running its fixed thread set.
        if let (Some(before), Some(during)) = (threads_before, bfl_thread_count()) {
            assert!(
                during <= before + 4,
                "server threads grew with connections: {before} -> {during}"
            );
        }
        for join in joins {
            drop(join.join().expect("driver"));
        }
    });

    // Peak connection accounting saw the soak (220 clients + setup).
    let stats = setup.stats(None).expect("stats");
    let peak = stats
        .get("connections")
        .and_then(|c| c.get("peak"))
        .and_then(|v| v.as_u64())
        .expect("peak");
    assert!(
        peak >= 100,
        "peak connections {peak} never reached the soak"
    );
    handle.shutdown();
}

#[test]
fn lru_eviction_is_observable_over_the_wire() {
    let handle = start_server(ServerConfig {
        workers: 2,
        shards: 1,
        max_sessions: Some(2),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connects");
    let s1 = client.load(MODEL).expect("loads s1");
    let s2 = client.load(MODEL).expect("loads s2");
    // Touch s1 so s2 becomes the least-recently-used entry...
    client.stats(Some(&s1)).expect("stats s1");
    // ...then a third load over the cap evicts exactly s2.
    let s3 = client.load(MODEL).expect("loads s3");
    let stats = client.stats(None).expect("stats");
    assert_eq!(
        stats
            .get("counters")
            .and_then(|c| c.get("evictions"))
            .and_then(|v| v.as_u64()),
        Some(1),
        "{stats}"
    );
    assert_eq!(
        stats
            .get("limits")
            .and_then(|l| l.get("max_sessions"))
            .and_then(|v| v.as_u64()),
        Some(2),
        "{stats}"
    );
    let sessions = format!("{}", stats.get("sessions").expect("sessions"));
    assert!(
        sessions.contains(&s1) && sessions.contains(&s3),
        "{sessions}"
    );
    assert!(!sessions.contains(&s2), "{sessions}");
    // The evicted session answers like any unloaded one.
    let err = client.stats(Some(&s2)).expect_err("s2 evicted");
    assert_eq!(err.code(), Some(ErrorCode::UnknownSession));
    handle.shutdown();
}

#[test]
fn session_inflight_cap_answers_busy_at_admission() {
    // One slot per session: a pipelined burst of slow sweeps on one
    // session must get exactly its admitted share served and the rest
    // bounced with `busy` — before they ever touch the worker queue.
    let handle = start_server(ServerConfig {
        workers: 2,
        shards: 1,
        queue_capacity: 256,
        session_inflight: Some(1),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut setup = Client::connect(addr).expect("connects");
    let session = setup.load(MODEL).expect("loads");
    let plan = setup.prepare(&session, "exists MCS(T)").expect("prepares");

    let scenarios: String = (0..2000)
        .map(|i| format!("s{i}: A = {}, B = {}\n", i % 2, (i / 2) % 2))
        .collect();
    let burst: String = (1..=8)
        .map(|i| {
            format!(
                "{{\"id\":{i},\"op\":\"sweep\",\"session\":{},\"plan\":{},\"scenarios\":{}}}\n",
                json_str(&session),
                json_str(&plan),
                json_str(&scenarios)
            )
        })
        .collect();
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    stream.write_all(burst.as_bytes()).expect("write");
    stream.flush().expect("flush");

    let mut reader = BufReader::new(stream);
    let (mut ok, mut busy) = (0usize, 0usize);
    let mut seen_ids = Vec::new();
    for _ in 0..8 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let response = Response::parse(line.trim_end()).expect("parses");
        seen_ids.push(response.id.expect("echoed id"));
        match response.body {
            ResponseBody::Result(_) => ok += 1,
            ResponseBody::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Busy, "{line}");
                busy += 1;
            }
        }
    }
    seen_ids.sort_unstable();
    assert_eq!(seen_ids, (1..=8).collect::<Vec<u64>>(), "lost responses");
    assert!(ok >= 1, "at least the first sweep is admitted");
    assert!(busy >= 1, "the cap must bounce part of the burst");
    let stats = setup.stats(None).expect("stats");
    let rejects = stats
        .get("counters")
        .and_then(|c| c.get("admission_rejects"))
        .and_then(|v| v.as_u64())
        .expect("counter");
    assert_eq!(rejects as usize, busy, "{stats}");
    handle.shutdown();
}

#[test]
fn connection_cap_rejects_with_a_structured_overloaded_error() {
    // Regression for the silently-dropped-connection bug: past the
    // connection cap the client must receive a structured `overloaded`
    // error before the close, never a wordless EOF.
    let handle = start_server(ServerConfig {
        workers: 1,
        shards: 1,
        max_connections: 3,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut held: Vec<Client> = (0..3)
        .map(|_| Client::connect(addr).expect("connects"))
        .collect();
    // A round trip on each proves the acceptor registered all three
    // (connecting alone only fills the listen backlog).
    for client in &mut held {
        client.stats(None).expect("stats");
    }

    let fourth = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(fourth);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let response = Response::parse(line.trim_end()).expect("parses");
    let ResponseBody::Error { code, message } = response.body else {
        panic!("expected an error response, got {line}");
    };
    assert_eq!(code, ErrorCode::Overloaded, "{line}");
    assert!(message.contains("connection limit"), "{message}");
    // ...and then the close.
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("read"), 0, "{line}");

    let stats = held[0].stats(None).expect("stats");
    assert_eq!(
        stats
            .get("counters")
            .and_then(|c| c.get("overload_rejects"))
            .and_then(|v| v.as_u64()),
        Some(1),
        "{stats}"
    );
    assert_eq!(
        stats
            .get("connections")
            .and_then(|c| c.get("max"))
            .and_then(|v| v.as_u64()),
        Some(3),
        "{stats}"
    );

    // A burst of over-cap peers that never read their rejection must
    // not serialize the acceptor: the notices are flushed by the shards'
    // nonblocking loops, so a later well-behaved over-cap client still
    // gets its structured `overloaded` line promptly, admitted
    // connections keep round-tripping, and the rejects never consume
    // `open` connection slots.
    let lagging: Vec<TcpStream> = (0..5)
        .map(|_| TcpStream::connect(addr).expect("connects"))
        .collect();
    let started = std::time::Instant::now();
    let prompt = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(prompt);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let response = Response::parse(line.trim_end()).expect("parses");
    let ResponseBody::Error { code, .. } = response.body else {
        panic!("expected an error response, got {line}");
    };
    assert_eq!(code, ErrorCode::Overloaded, "{line}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "rejection took {:?} behind non-reading peers",
        started.elapsed()
    );
    let stats = held[0].stats(None).expect("stats");
    assert_eq!(
        stats
            .get("connections")
            .and_then(|c| c.get("open"))
            .and_then(|v| v.as_u64()),
        Some(3),
        "rejects must not hold open-connection slots: {stats}"
    );
    drop(lagging);
    handle.shutdown();
}

#[test]
fn idle_connections_are_reaped_with_a_structured_notice() {
    // Regression for idle connections pinning buffers forever: with
    // `--idle-timeout` set, a silent connection gets a structured
    // `idle_timeout` error, the socket closes, and `stats` counts it.
    let handle = start_server(ServerConfig {
        workers: 1,
        shards: 1,
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let stream = TcpStream::connect(addr).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    // The connection works while active...
    let mut stream = stream;
    stream
        .write_all(b"{\"id\":1,\"op\":\"stats\"}\n")
        .expect("write");
    stream.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(Response::parse(line.trim_end()).expect("parses").is_ok());

    // ...then goes silent past the timeout.
    std::thread::sleep(Duration::from_millis(700));
    line.clear();
    reader.read_line(&mut line).expect("read");
    let response = Response::parse(line.trim_end()).expect("parses");
    let ResponseBody::Error { code, message } = response.body else {
        panic!("expected the idle notice, got {line}");
    };
    assert_eq!(code, ErrorCode::IdleTimeout, "{line}");
    assert!(message.contains("idle"), "{message}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("read"), 0, "{line}");

    // A fresh connection sees the reap in the counters.
    let mut admin = Client::connect(addr).expect("connects");
    let stats = admin.stats(None).expect("stats");
    let reaped = stats
        .get("counters")
        .and_then(|c| c.get("idle_reaped"))
        .and_then(|v| v.as_u64())
        .expect("counter");
    assert!(reaped >= 1, "{stats}");
    handle.shutdown();
}

/// Zeroes the per-execution counters (timings, cache hit/miss tallies)
/// that legitimately differ between two runs of the same request, so
/// the rest of the document can be compared byte-for-byte.
fn scrub_run_counters(doc: &str) -> String {
    let mut out = doc.to_string();
    for key in [
        "\"duration_micros\":",
        "\"cache_hits\":",
        "\"cache_misses\":",
        "\"memo_hits\":",
        "\"memo_misses\":",
        "\"translation_misses\":",
    ] {
        let mut scrubbed = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(pos) = rest.find(key) {
            let after = pos + key.len();
            scrubbed.push_str(&rest[..after]);
            scrubbed.push('0');
            rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
        }
        scrubbed.push_str(rest);
        out = scrubbed;
    }
    out
}

#[test]
fn streamed_sweeps_reassemble_byte_identically() {
    let handle = start_server(ServerConfig {
        workers: 2,
        shards: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connects");
    let session = client.load(MODEL).expect("loads");
    let plan = client.prepare(&session, "exists T").expect("prepares");
    // 2000 scenario rows make the report span several 64 KiB chunks.
    let scenarios: String = (0..2000)
        .map(|i| format!("s{i}: A = {}, B = {}\n", i % 2, (i / 2) % 2))
        .collect();
    let plain = client.sweep(&session, &plan, &scenarios).expect("sweep");
    let streamed = client
        .sweep_streamed(&session, &plan, &scenarios)
        .expect("streamed sweep");
    // Canonical rendering: the documents are byte-identical once the
    // per-run counters (timings, cache tallies) are zeroed out.
    assert_eq!(
        scrub_run_counters(&format!("{plain}")),
        scrub_run_counters(&format!("{streamed}"))
    );

    // The raw framing: a `begin` announcing >1 chunks, each chunk in
    // sequence, and an `end` — all sharing the request id.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    let line = format!(
        "{{\"id\":7,\"op\":\"sweep\",\"session\":{},\"plan\":{},\"scenarios\":{},\"stream\":true}}\n",
        json_str(&session),
        json_str(&plan),
        json_str(&scenarios)
    );
    stream.write_all(line.as_bytes()).expect("write");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut raw = String::new();
    reader.read_line(&mut raw).expect("read");
    let begin = Response::parse(raw.trim_end()).expect("parses");
    assert_eq!(begin.id, Some(7));
    let ResponseBody::Result(doc) = &begin.body else {
        panic!("{raw}");
    };
    assert!(doc.contains("\"stream\":\"begin\""), "{doc}");
    let chunks: u64 = doc
        .split("\"chunks\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse().ok())
        .expect("chunk count");
    assert!(chunks >= 2, "large sweep must split: {doc}");
    for seq in 1..=chunks {
        raw.clear();
        reader.read_line(&mut raw).expect("read");
        assert!(raw.contains(&format!("\"seq\":{seq}")), "{raw}");
    }
    raw.clear();
    reader.read_line(&mut raw).expect("read");
    assert!(raw.contains("\"stream\":\"end\""), "{raw}");

    // Streamed causes flow through the same frames.
    let cause_plan = client
        .prepare(&session, "cause(T)")
        .expect("prepares cause");
    let plain = client
        .cause(&session, &cause_plan, "A = 1, B = 1")
        .expect("cause");
    let streamed = client
        .cause_streamed(&session, &cause_plan, "A = 1, B = 1")
        .expect("streamed cause");
    assert_eq!(
        scrub_run_counters(&format!("{plain}")),
        scrub_run_counters(&format!("{streamed}"))
    );
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_shard() {
    // Pipelined work spread over several shards, then `shutdown`: every
    // request accepted before the shutdown is answered, every shard
    // thread exits, and the handle joins.
    let handle = start_server(ServerConfig {
        workers: 2,
        shards: 3,
        queue_capacity: 256,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut setup = Client::connect(addr).expect("connects");
    let session = setup.load(MODEL).expect("loads");
    let plan = setup.prepare(&session, "exists T").expect("prepares");

    // Six connections (two per shard), five strict round trips each.
    let mut clients: Vec<Client> = (0..6)
        .map(|_| Client::connect(addr).expect("connects"))
        .collect();
    for round in 0..5 {
        for (c, client) in clients.iter_mut().enumerate() {
            let outcome = client
                .eval(&session, &plan, "A = 1, B = 1")
                .expect("evals")
                .get("holds")
                .and_then(|v| v.as_bool());
            assert_eq!(outcome, Some(true), "conn {c} round {round}");
        }
    }
    setup.shutdown().expect("shutdown acknowledged");
    handle.join();
    // The listener is gone: nothing serves anymore.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut client) => {
            assert!(client.stats(None).is_err(), "server must be stopped");
        }
    }
}
