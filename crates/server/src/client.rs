//! A blocking client for the `bfl-server` protocol.
//!
//! [`Client`] speaks strict request/response over one connection: each
//! call assigns a fresh `id`, sends one line, reads one line and checks
//! the echoed id. It is both the programmatic API (the load generator in
//! `bfl-bench` and the test suites drive it) and the engine behind
//! `bfl client`.
//!
//! ```no_run
//! use bfl_server::client::Client;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut client = Client::connect("127.0.0.1:7878")?;
//! let session = client.load("toplevel T;\nT and A B;\nA prob=0.1;\nB prob=0.2;\n")?;
//! let plan = client.prepare(&session, "exists T")?;
//! let outcome = client.eval(&session, &plan, "A = 1, B = 1")?;
//! assert_eq!(outcome.get("holds").and_then(|v| v.as_bool()), Some(true));
//! client.shutdown()?;
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::Json;
use crate::protocol::{
    ErrorCode, Op, ProbOptions, ProbTarget, Request, Response, ResponseBody, SessionOptions,
};

/// A client-side failure: transport, protocol or a server-reported
/// error.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server's bytes did not form a valid response.
    Protocol(String),
    /// The server answered with a structured error.
    Server {
        /// The error class.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server-side error code, when the failure is a server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A connected protocol client. See the [module docs](self).
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// The connect/clone error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // One-line requests: Nagle would trade ~40 ms latency for
        // nothing.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 0,
        })
    }

    /// Sends one operation and returns the parsed `result` document.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for structured server errors, otherwise
    /// transport/protocol failures.
    pub fn request(&mut self, op: Op) -> Result<Json, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let line = Request::with_id(id, op).to_json_line();
        let raw = self.round_trip(&line)?;
        let response = Response::parse(&raw).map_err(ClientError::Protocol)?;
        if response.id != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id {:?} does not match request id {id}",
                response.id
            )));
        }
        match response.body {
            ResponseBody::Result(result) => {
                Json::parse(&result).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            ResponseBody::Error { code, message } => Err(ClientError::Server { code, message }),
        }
    }

    /// Sends one raw line and returns the raw response line — the
    /// pass-through mode `bfl client` uses.
    ///
    /// # Errors
    ///
    /// Transport failures; a server-side error still comes back as the
    /// raw error line.
    pub fn round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Reads one response line for request `id` and returns its parsed
    /// result document.
    fn read_frame(&mut self, id: u64) -> Result<Json, ClientError> {
        let mut raw = String::new();
        let n = self.reader.read_line(&mut raw)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection mid-stream".to_string(),
            ));
        }
        let response = Response::parse(raw.trim_end()).map_err(ClientError::Protocol)?;
        if response.id != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id {:?} does not match request id {id}",
                response.id
            )));
        }
        match response.body {
            ResponseBody::Result(result) => {
                Json::parse(&result).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            ResponseBody::Error { code, message } => Err(ClientError::Server { code, message }),
        }
    }

    /// Sends a `stream:true` operation and reassembles its
    /// `begin`/`chunk`/`end` frames back into the full result document.
    /// A server that answers with a plain structured error (unknown
    /// session, busy, …) surfaces it as [`ClientError::Server`] exactly
    /// like an unstreamed request.
    fn streamed_request(&mut self, op: Op) -> Result<Json, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let line = Request::with_id(id, op).to_json_line();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let begin = self.read_frame(id)?;
        if begin.get("stream").and_then(Json::as_str) != Some("begin") {
            return Err(ClientError::Protocol(
                "expected a `begin` stream frame".to_string(),
            ));
        }
        let chunks = begin.get("chunks").and_then(Json::as_u64).ok_or_else(|| {
            ClientError::Protocol("`begin` frame lacks a `chunks` count".to_string())
        })?;
        let bytes = begin.get("bytes").and_then(Json::as_u64).unwrap_or(0);
        let mut doc = String::with_capacity(bytes as usize);
        for seq in 1..=chunks {
            let frame = self.read_frame(id)?;
            if frame.get("stream").and_then(Json::as_str) != Some("chunk")
                || frame.get("seq").and_then(Json::as_u64) != Some(seq)
            {
                return Err(ClientError::Protocol(format!(
                    "expected stream chunk {seq} of {chunks}"
                )));
            }
            let part = frame.get("part").and_then(Json::as_str).ok_or_else(|| {
                ClientError::Protocol("stream chunk lacks a `part` string".to_string())
            })?;
            doc.push_str(part);
        }
        let end = self.read_frame(id)?;
        if end.get("stream").and_then(Json::as_str) != Some("end") {
            return Err(ClientError::Protocol(
                "expected an `end` stream frame".to_string(),
            ));
        }
        if doc.len() as u64 != bytes {
            return Err(ClientError::Protocol(format!(
                "stream delivered {} bytes but `begin` announced {bytes}",
                doc.len()
            )));
        }
        Json::parse(&doc).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    // ------------------------------------------------------------------
    // Convenience wrappers (one method per op).
    // ------------------------------------------------------------------

    /// Loads a Galileo model with default options; returns the session
    /// id.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn load(&mut self, model: &str) -> Result<String, ClientError> {
        self.load_with(model, SessionOptions::default())
    }

    /// Loads a Galileo model with explicit session options; returns the
    /// session id.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn load_with(
        &mut self,
        model: &str,
        options: SessionOptions,
    ) -> Result<String, ClientError> {
        let result = self.request(Op::Load {
            model: model.to_string(),
            options,
        })?;
        field_str(&result, "session")
    }

    /// Compiles a query; returns the plan id.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn prepare(&mut self, session: &str, query: &str) -> Result<String, ClientError> {
        let result = self.request(Op::Prepare {
            session: session.to_string(),
            query: query.to_string(),
        })?;
        field_str(&result, "plan")
    }

    /// Evaluates a spec text; returns the report document.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn check(&mut self, session: &str, query: &str) -> Result<Json, ClientError> {
        self.request(Op::Check {
            session: session.to_string(),
            query: query.to_string(),
        })
    }

    /// Evaluates a plan under a scenario; returns the outcome document.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn eval(&mut self, session: &str, plan: &str, scenario: &str) -> Result<Json, ClientError> {
        self.request(Op::Eval {
            session: session.to_string(),
            plan: plan.to_string(),
            scenario: scenario.to_string(),
        })
    }

    /// Sweeps a plan over a scenario-set text; returns the sweep report.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn sweep(
        &mut self,
        session: &str,
        plan: &str,
        scenarios: &str,
    ) -> Result<Json, ClientError> {
        self.request(Op::Sweep {
            session: session.to_string(),
            plan: plan.to_string(),
            scenarios: scenarios.to_string(),
            stream: false,
        })
    }

    /// Like [`Client::sweep`], but asks the server to deliver the
    /// report as `begin`/`chunk`/`end` stream frames and reassembles
    /// them; the parsed document is byte-identical to the unstreamed
    /// one. Use for sweeps whose reports run to many megabytes.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::Protocol`] when the
    /// stream framing is malformed.
    pub fn sweep_streamed(
        &mut self,
        session: &str,
        plan: &str,
        scenarios: &str,
    ) -> Result<Json, ClientError> {
        self.streamed_request(Op::Sweep {
            session: session.to_string(),
            plan: plan.to_string(),
            scenarios: scenarios.to_string(),
            stream: true,
        })
    }

    /// Actual causes of a `cause(ϕ, evidence)` plan under a scenario
    /// (extra observational evidence; empty = the plan's own evidence
    /// only); returns the outcome document — the `causes` field carries
    /// the observation, the cause sets and their repair witnesses.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn cause(
        &mut self,
        session: &str,
        plan: &str,
        scenario: &str,
    ) -> Result<Json, ClientError> {
        self.request(Op::Cause {
            session: session.to_string(),
            plan: plan.to_string(),
            scenario: scenario.to_string(),
            stream: false,
        })
    }

    /// Like [`Client::cause`], but streamed — see
    /// [`Client::sweep_streamed`].
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::Protocol`] when the
    /// stream framing is malformed.
    pub fn cause_streamed(
        &mut self,
        session: &str,
        plan: &str,
        scenario: &str,
    ) -> Result<Json, ClientError> {
        self.streamed_request(Op::Cause {
            session: session.to_string(),
            plan: plan.to_string(),
            scenario: scenario.to_string(),
            stream: true,
        })
    }

    /// `P(plan | scenario)` on the compiled diagram; `None` when the
    /// condition has probability zero.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn prob_plan(
        &mut self,
        session: &str,
        plan: &str,
        scenario: Option<&str>,
    ) -> Result<Option<f64>, ClientError> {
        let result = self.prob_plan_with(session, plan, scenario, ProbOptions::default())?;
        Ok(result.get("probability").and_then(Json::as_f64))
    }

    /// `P(plan | scenario)` with explicit method options; returns the
    /// full result document (`probability`, or `interval`/`estimate`
    /// plus `method` under the non-exact methods).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn prob_plan_with(
        &mut self,
        session: &str,
        plan: &str,
        scenario: Option<&str>,
        options: ProbOptions,
    ) -> Result<Json, ClientError> {
        self.request(Op::Prob {
            session: session.to_string(),
            target: ProbTarget::Plan {
                plan: plan.to_string(),
                scenario: scenario.map(str::to_string),
            },
            options,
        })
    }

    /// `P(formula [ | given])` through the session; `None` when the
    /// condition has probability zero.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn prob_formula(
        &mut self,
        session: &str,
        formula: &str,
        given: Option<&str>,
    ) -> Result<Option<f64>, ClientError> {
        let result = self.prob_formula_with(session, formula, given, ProbOptions::default())?;
        Ok(result.get("probability").and_then(Json::as_f64))
    }

    /// `P(formula [ | given])` with explicit method options; returns the
    /// full result document (`probability`, or `interval`/`estimate`
    /// plus `method` under the non-exact methods).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn prob_formula_with(
        &mut self,
        session: &str,
        formula: &str,
        given: Option<&str>,
        options: ProbOptions,
    ) -> Result<Json, ClientError> {
        self.request(Op::Prob {
            session: session.to_string(),
            target: ProbTarget::Formula {
                formula: formula.to_string(),
                given: given.map(str::to_string),
            },
            options,
        })
    }

    /// The ranked importance table for a formula.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn importance(&mut self, session: &str, formula: &str) -> Result<Json, ClientError> {
        self.request(Op::Importance {
            session: session.to_string(),
            formula: formula.to_string(),
        })
    }

    /// The compiled plan document of a prepared query.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn explain(&mut self, session: &str, plan: &str) -> Result<Json, ClientError> {
        self.request(Op::Explain {
            session: session.to_string(),
            plan: plan.to_string(),
        })
    }

    /// Server-wide (`None`) or per-session statistics.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn stats(&mut self, session: Option<&str>) -> Result<Json, ClientError> {
        self.request(Op::Stats {
            session: session.map(str::to_string),
        })
    }

    /// Runs maintenance on a session now.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn maintain(&mut self, session: &str) -> Result<Json, ClientError> {
        self.request(Op::Maintain {
            session: session.to_string(),
        })
    }

    /// Lints a session's model — and, when `spec` is given, the spec
    /// against the model — returning typed diagnostics.
    ///
    /// The server answers with the canonical lint document
    /// ([`bfl_core::lint::to_json`]); this method parses its
    /// `diagnostics` array back into [`bfl_core::lint::Diagnostic`]
    /// values, so the round trip is exact by construction.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::Protocol`] when the
    /// response does not carry a well-formed lint document.
    pub fn lint(
        &mut self,
        session: &str,
        spec: Option<&str>,
    ) -> Result<Vec<bfl_core::lint::Diagnostic>, ClientError> {
        let doc = self.request(Op::Lint {
            session: session.to_string(),
            spec: spec.map(str::to_string),
        })?;
        let items = doc
            .get("lint")
            .and_then(|l| l.get("diagnostics"))
            .and_then(Json::as_array)
            .ok_or_else(|| {
                ClientError::Protocol("response lacks a `lint.diagnostics` array".to_string())
            })?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let severity = item
                .get("severity")
                .and_then(Json::as_str)
                .and_then(bfl_core::lint::Severity::parse)
                .ok_or_else(|| {
                    ClientError::Protocol("diagnostic lacks a valid `severity`".to_string())
                })?;
            let text = |name: &str| field_str(item, name);
            let opt = |name: &str| item.get(name).and_then(Json::as_str).map(str::to_string);
            out.push(bfl_core::lint::Diagnostic {
                code: text("code")?,
                severity,
                subject: text("subject")?,
                message: text("message")?,
                suggestion: opt("suggestion"),
                location: opt("location"),
            });
        }
        Ok(out)
    }

    /// Drops a session.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn unload(&mut self, session: &str) -> Result<Json, ClientError> {
        self.request(Op::Unload {
            session: session.to_string(),
        })
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(Op::Shutdown).map(|_| ())
    }
}

fn field_str(doc: &Json, name: &str) -> Result<String, ClientError> {
    doc.get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol(format!("response lacks a `{name}` string field")))
}
