//! The shared session registry: id → [`AnalysisSession`] + its plans.
//!
//! One registry is shared by every connection and worker of a server.
//! Sessions and prepared plans live behind [`Arc`]s, which is the whole
//! concurrency story:
//!
//! * lookups clone the `Arc` and release the registry lock before any
//!   analysis runs, so a slow sweep never blocks `load`/`unload`;
//! * [`Registry::remove`] only unlinks the entry — workers holding a
//!   clone finish their in-flight queries safely, and the session is
//!   dropped when the last one completes (asserted by the concurrency
//!   suite).
//!
//! Plans compiled via `prepare` are owned by their session's entry, so
//! every connection shares one [`PreparedQuery`] per plan id — and with
//! it the scenario/probability memos that make warm served queries pure
//! cache lookups.
//!
//! ## Capacity and admission
//!
//! A registry built with [`Registry::with_capacity`] holds at most
//! `max_sessions` entries: inserting past the cap evicts the
//! least-recently-*used* session (every [`Registry::get`] bumps a
//! logical clock), counted in [`Registry::evictions`]. Eviction is the
//! same safe unlink as `remove` — in-flight queries on the evicted
//! session complete on their own `Arc`.
//!
//! Per-session admission control rides on the entries themselves:
//! [`SessionEntry::try_admit`] atomically claims one of a bounded number
//! of in-flight slots and hands back an [`AdmissionGuard`] that releases
//! the slot on drop, so a session swamped by one client answers a
//! structured `busy` instead of monopolising the worker pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use bfl_core::engine::AnalysisSession;
use bfl_core::PreparedQuery;

/// Numeric rank of a registry id (`s7` → 7, `p12` → 12) for sorting:
/// `p10` must sort after `p9`. Ids with no parseable suffix — including
/// empty or single-character ids, and ids whose first character is
/// multi-byte — rank last instead of panicking.
fn suffix_rank(id: &str) -> u64 {
    id.get(1..)
        .and_then(|suffix| suffix.parse::<u64>().ok())
        .unwrap_or(u64::MAX)
}

/// One loaded session plus its compiled plans.
#[derive(Debug)]
pub struct SessionEntry {
    /// The registry id (`s1`, `s2`, …).
    pub id: String,
    /// The engine session (all methods take `&self`).
    pub session: AnalysisSession,
    plans: RwLock<HashMap<String, Arc<PreparedQuery>>>,
    next_plan: AtomicU64,
    /// Logical-clock tick of the last lookup — the LRU key.
    last_used: AtomicU64,
    /// Requests currently admitted (enqueued or running) against this
    /// session.
    in_flight: AtomicUsize,
}

impl SessionEntry {
    /// Registers a freshly compiled plan, returning its id (`p1`, …).
    pub fn add_plan(&self, plan: PreparedQuery) -> (String, Arc<PreparedQuery>) {
        let id = format!("p{}", self.next_plan.fetch_add(1, Ordering::Relaxed) + 1);
        let plan = Arc::new(plan);
        self.plans
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id.clone(), Arc::clone(&plan));
        (id, plan)
    }

    /// Looks a plan up by id.
    pub fn plan(&self, id: &str) -> Option<Arc<PreparedQuery>> {
        self.plans
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    /// All plan ids with their prepared queries, sorted by id.
    pub fn plans(&self) -> Vec<(String, Arc<PreparedQuery>)> {
        let mut out: Vec<(String, Arc<PreparedQuery>)> = self
            .plans
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        out.sort_by_key(|(id, _)| suffix_rank(id));
        out
    }

    /// Number of compiled plans.
    pub fn plan_count(&self) -> usize {
        self.plans.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Requests currently admitted against this session.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Atomically claims one in-flight slot if fewer than `cap` are
    /// taken; the returned guard releases the slot when dropped. `None`
    /// means the session is at its cap — answer `busy`.
    pub fn try_admit(self: &Arc<Self>, cap: usize) -> Option<AdmissionGuard> {
        self.in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < cap).then_some(n + 1)
            })
            .ok()
            .map(|_| AdmissionGuard {
                entry: Arc::clone(self),
            })
    }
}

/// Releases one admitted in-flight slot of a session when dropped —
/// held by the job through queueing and execution, so the slot frees
/// exactly when the response is on its way.
#[derive(Debug)]
pub struct AdmissionGuard {
    entry: Arc<SessionEntry>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.entry.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The server-wide session table. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Registry {
    sessions: RwLock<HashMap<String, Arc<SessionEntry>>>,
    next_session: AtomicU64,
    /// Monotonic logical clock; every lookup/insert takes a tick.
    clock: AtomicU64,
    /// Resident-session cap; `None` = unbounded.
    max_sessions: Option<usize>,
    evictions: AtomicU64,
}

impl Registry {
    /// An empty, unbounded registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// An empty registry holding at most `max_sessions` entries
    /// (`None` = unbounded); inserting past the cap evicts the
    /// least-recently-used session.
    pub fn with_capacity(max_sessions: Option<usize>) -> Registry {
        Registry {
            max_sessions: max_sessions.map(|m| m.max(1)),
            ..Registry::default()
        }
    }

    /// The configured session cap, if any.
    pub fn max_sessions(&self) -> Option<usize> {
        self.max_sessions
    }

    /// Sessions evicted by the LRU cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Registers a session, assigning it the next id. At the session
    /// cap the least-recently-used resident session is evicted first
    /// (safely: in-flight holders keep their `Arc`).
    pub fn insert(&self, session: AnalysisSession) -> Arc<SessionEntry> {
        let id = format!("s{}", self.next_session.fetch_add(1, Ordering::Relaxed) + 1);
        let entry = Arc::new(SessionEntry {
            id: id.clone(),
            session,
            plans: RwLock::new(HashMap::new()),
            next_plan: AtomicU64::new(0),
            last_used: AtomicU64::new(self.tick()),
            in_flight: AtomicUsize::new(0),
        });
        let mut sessions = self.sessions.write().unwrap_or_else(|e| e.into_inner());
        if let Some(cap) = self.max_sessions {
            while sessions.len() >= cap {
                let Some(lru) = sessions
                    .values()
                    .min_by_key(|e| e.last_used.load(Ordering::Relaxed))
                    .map(|e| e.id.clone())
                else {
                    break;
                };
                sessions.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        sessions.insert(id, Arc::clone(&entry));
        entry
    }

    /// Looks a session up by id (cheap `Arc` clone); marks it
    /// most-recently-used.
    pub fn get(&self, id: &str) -> Option<Arc<SessionEntry>> {
        let entry = self
            .sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()?;
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(entry)
    }

    /// Unlinks a session. Workers holding a clone finish safely; the
    /// session drops with its last holder.
    pub fn remove(&self, id: &str) -> Option<Arc<SessionEntry>> {
        self.sessions
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(id)
    }

    /// The loaded session ids, sorted by id.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        ids.sort_by_key(|id| suffix_rank(id));
        ids
    }

    /// Number of loaded sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Whether no session is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use bfl_fault_tree::corpus;

    #[test]
    fn ids_are_sequential_and_sorted_numerically() {
        let r = Registry::new();
        for _ in 0..11 {
            r.insert(AnalysisSession::new(corpus::or2()));
        }
        let ids = r.ids();
        assert_eq!(ids.first().map(String::as_str), Some("s1"));
        assert_eq!(ids.last().map(String::as_str), Some("s11"));
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
    }

    #[test]
    fn suffix_rank_never_panics_on_degenerate_ids() {
        // The old `id[1..]` slice panicked on "" (out of range) and on a
        // multi-byte first character (not a char boundary).
        assert_eq!(suffix_rank(""), u64::MAX);
        assert_eq!(suffix_rank("s"), u64::MAX);
        assert_eq!(suffix_rank("é7"), u64::MAX);
        assert_eq!(suffix_rank("s10"), 10);
        assert_eq!(suffix_rank("p3"), 3);
        assert_eq!(suffix_rank("sx"), u64::MAX);
        // Sorting a mixed bag of well-formed and degenerate ids is
        // total and panic-free.
        let mut ids = ["s10", "", "s2", "é", "s"].map(String::from);
        ids.sort_by_key(|id| suffix_rank(id));
        assert_eq!(ids[0], "s2");
        assert_eq!(ids[1], "s10");
    }

    #[test]
    fn remove_keeps_in_flight_holders_alive() {
        let r = Registry::new();
        let entry = r.insert(AnalysisSession::new(corpus::covid()));
        let held = r.get(&entry.id).unwrap();
        assert!(r.remove(&entry.id).is_some());
        assert!(r.get(&entry.id).is_none());
        // The held Arc still answers queries.
        let q = bfl_core::parser::parse_query("exists IWoS").unwrap();
        assert!(held.session.check_query(&q).unwrap().holds);
    }

    #[test]
    fn plans_register_and_sort() {
        let r = Registry::new();
        let entry = r.insert(AnalysisSession::new(corpus::covid()));
        let q = bfl_core::parser::parse_query("exists IWoS").unwrap();
        for _ in 0..10 {
            let p = entry.session.prepare(&q).unwrap();
            entry.add_plan(p);
        }
        assert_eq!(entry.plan_count(), 10);
        let plans = entry.plans();
        assert_eq!(plans.first().map(|(id, _)| id.as_str()), Some("p1"));
        assert_eq!(plans.last().map(|(id, _)| id.as_str()), Some("p10"));
        assert!(entry.plan("p3").is_some());
        assert!(entry.plan("p11").is_none());
    }

    #[test]
    fn capacity_evicts_the_least_recently_used_session() {
        let r = Registry::with_capacity(Some(2));
        let s1 = r.insert(AnalysisSession::new(corpus::or2())).id.clone();
        let s2 = r.insert(AnalysisSession::new(corpus::or2())).id.clone();
        // Touch s1 so s2 is the LRU entry.
        assert!(r.get(&s1).is_some());
        let s3 = r.insert(AnalysisSession::new(corpus::or2())).id.clone();
        assert_eq!(r.evictions(), 1);
        assert!(r.get(&s2).is_none(), "LRU entry must be evicted");
        assert!(r.get(&s1).is_some());
        assert!(r.get(&s3).is_some());
        assert_eq!(r.len(), 2);
        assert_eq!(r.max_sessions(), Some(2));
    }

    #[test]
    fn eviction_keeps_in_flight_holders_alive() {
        let r = Registry::with_capacity(Some(1));
        let first = r.insert(AnalysisSession::new(corpus::covid()));
        let held = r.get(&first.id).unwrap();
        let _second = r.insert(AnalysisSession::new(corpus::or2()));
        assert_eq!(r.evictions(), 1);
        assert!(r.get(&first.id).is_none());
        let q = bfl_core::parser::parse_query("exists IWoS").unwrap();
        assert!(held.session.check_query(&q).unwrap().holds);
    }

    #[test]
    fn admission_slots_are_bounded_and_released_on_drop() {
        let r = Registry::new();
        let entry = r.insert(AnalysisSession::new(corpus::or2()));
        let g1 = entry.try_admit(2).expect("first slot");
        let g2 = entry.try_admit(2).expect("second slot");
        assert!(entry.try_admit(2).is_none(), "cap reached");
        assert_eq!(entry.in_flight(), 2);
        drop(g1);
        assert_eq!(entry.in_flight(), 1);
        let g3 = entry.try_admit(2).expect("slot freed by drop");
        drop(g2);
        drop(g3);
        assert_eq!(entry.in_flight(), 0);
    }
}
