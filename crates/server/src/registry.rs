//! The shared session registry: id → [`AnalysisSession`] + its plans.
//!
//! One registry is shared by every connection and worker of a server.
//! Sessions and prepared plans live behind [`Arc`]s, which is the whole
//! concurrency story:
//!
//! * lookups clone the `Arc` and release the registry lock before any
//!   analysis runs, so a slow sweep never blocks `load`/`unload`;
//! * [`Registry::remove`] only unlinks the entry — workers holding a
//!   clone finish their in-flight queries safely, and the session is
//!   dropped when the last one completes (asserted by the concurrency
//!   suite).
//!
//! Plans compiled via `prepare` are owned by their session's entry, so
//! every connection shares one [`PreparedQuery`] per plan id — and with
//! it the scenario/probability memos that make warm served queries pure
//! cache lookups.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use bfl_core::engine::AnalysisSession;
use bfl_core::PreparedQuery;

/// One loaded session plus its compiled plans.
#[derive(Debug)]
pub struct SessionEntry {
    /// The registry id (`s1`, `s2`, …).
    pub id: String,
    /// The engine session (all methods take `&self`).
    pub session: AnalysisSession,
    plans: RwLock<HashMap<String, Arc<PreparedQuery>>>,
    next_plan: AtomicU64,
}

impl SessionEntry {
    /// Registers a freshly compiled plan, returning its id (`p1`, …).
    pub fn add_plan(&self, plan: PreparedQuery) -> (String, Arc<PreparedQuery>) {
        let id = format!("p{}", self.next_plan.fetch_add(1, Ordering::Relaxed) + 1);
        let plan = Arc::new(plan);
        self.plans
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id.clone(), Arc::clone(&plan));
        (id, plan)
    }

    /// Looks a plan up by id.
    pub fn plan(&self, id: &str) -> Option<Arc<PreparedQuery>> {
        self.plans
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    /// All plan ids with their prepared queries, sorted by id.
    pub fn plans(&self) -> Vec<(String, Arc<PreparedQuery>)> {
        let mut out: Vec<(String, Arc<PreparedQuery>)> = self
            .plans
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        // `p10` sorts after `p9`: order by the numeric suffix.
        out.sort_by_key(|(id, _)| id[1..].parse::<u64>().unwrap_or(u64::MAX));
        out
    }

    /// Number of compiled plans.
    pub fn plan_count(&self) -> usize {
        self.plans.read().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// The server-wide session table. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Registry {
    sessions: RwLock<HashMap<String, Arc<SessionEntry>>>,
    next_session: AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a session, assigning it the next id.
    pub fn insert(&self, session: AnalysisSession) -> Arc<SessionEntry> {
        let id = format!("s{}", self.next_session.fetch_add(1, Ordering::Relaxed) + 1);
        let entry = Arc::new(SessionEntry {
            id: id.clone(),
            session,
            plans: RwLock::new(HashMap::new()),
            next_plan: AtomicU64::new(0),
        });
        self.sessions
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, Arc::clone(&entry));
        entry
    }

    /// Looks a session up by id (cheap `Arc` clone).
    pub fn get(&self, id: &str) -> Option<Arc<SessionEntry>> {
        self.sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    /// Unlinks a session. Workers holding a clone finish safely; the
    /// session drops with its last holder.
    pub fn remove(&self, id: &str) -> Option<Arc<SessionEntry>> {
        self.sessions
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(id)
    }

    /// The loaded session ids, sorted by id.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        ids.sort_by_key(|id| id[1..].parse::<u64>().unwrap_or(u64::MAX));
        ids
    }

    /// Number of loaded sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Whether no session is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use bfl_fault_tree::corpus;

    #[test]
    fn ids_are_sequential_and_sorted_numerically() {
        let r = Registry::new();
        for _ in 0..11 {
            r.insert(AnalysisSession::new(corpus::or2()));
        }
        let ids = r.ids();
        assert_eq!(ids.first().map(String::as_str), Some("s1"));
        assert_eq!(ids.last().map(String::as_str), Some("s11"));
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
    }

    #[test]
    fn remove_keeps_in_flight_holders_alive() {
        let r = Registry::new();
        let entry = r.insert(AnalysisSession::new(corpus::covid()));
        let held = r.get(&entry.id).unwrap();
        assert!(r.remove(&entry.id).is_some());
        assert!(r.get(&entry.id).is_none());
        // The held Arc still answers queries.
        let q = bfl_core::parser::parse_query("exists IWoS").unwrap();
        assert!(held.session.check_query(&q).unwrap().holds);
    }

    #[test]
    fn plans_register_and_sort() {
        let r = Registry::new();
        let entry = r.insert(AnalysisSession::new(corpus::covid()));
        let q = bfl_core::parser::parse_query("exists IWoS").unwrap();
        for _ in 0..10 {
            let p = entry.session.prepare(&q).unwrap();
            entry.add_plan(p);
        }
        assert_eq!(entry.plan_count(), 10);
        let plans = entry.plans();
        assert_eq!(plans.first().map(|(id, _)| id.as_str()), Some("p1"));
        assert_eq!(plans.last().map(|(id, _)| id.as_str()), Some("p10"));
        assert!(entry.plan("p3").is_some());
        assert!(entry.plan("p11").is_none());
    }
}
