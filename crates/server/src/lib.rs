//! # `bfl-server` — the concurrent BFL analysis service
//!
//! A long-running, multithreaded TCP server (std-only, like the rest of
//! the suite) that keeps [`AnalysisSession`]s and their compiled
//! [`PreparedQuery`] plans **resident**, so every connection shares the
//! warm BDD translation caches and scenario/probability memos — the
//! deployment surface for the warm-path speedups the bench artifacts
//! measure (`BENCH_quant.json`, `BENCH_serve.json`).
//!
//! The wire protocol is line-oriented JSON ([`protocol`]; full reference
//! in `docs/server.md`): `load` a Galileo model into a session,
//! `prepare` a query into a shared plan, then `check`/`eval`/`sweep`/
//! `prob`/`importance`/`explain`/`stats`/`maintain`/`unload` against it,
//! and `shutdown` to drain gracefully. Connections are multiplexed over
//! a **fixed** number of nonblocking shard threads ([`server`]), so
//! hundreds of concurrent clients never grow the thread count.
//! Backpressure is explicit at every layer — a full request queue, a
//! session at its in-flight cap and a server at its connection cap all
//! answer structured `busy`/`overloaded` errors — and malformed input
//! always gets a structured error, never a dropped connection. Large
//! `sweep`/`cause` results can be streamed in bounded chunks
//! (`"stream":true`), and idle connections are reaped when
//! `--idle-timeout` is set.
//!
//! ```no_run
//! use bfl_server::client::Client;
//! use bfl_server::server::{Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let handle = Server::bind(ServerConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! let session = client.load("toplevel T;\nT or A B;\nA prob=0.1;\nB prob=0.2;\n")?;
//! let plan = client.prepare(&session, "exists T")?;
//! assert_eq!(
//!     client.eval(&session, &plan, "A = 0, B = 0")?
//!         .get("holds").and_then(|v| v.as_bool()),
//!     Some(false)
//! );
//! client.shutdown()?;
//! handle.join();
//! # Ok(())
//! # }
//! ```
//!
//! [`AnalysisSession`]: bfl_core::engine::AnalysisSession
//! [`PreparedQuery`]: bfl_core::plan::PreparedQuery

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The whole crate serves untrusted input on long-lived threads: no
// reachable panic from request data. The unwrap/expect ban now comes
// from `[workspace.lints]`, inherited by every crate.

pub mod client;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod server;
mod shard;

pub use client::{Client, ClientError};
pub use protocol::{
    ErrorCode, Op, ProbOptions, ProbTarget, Request, Response, ResponseBody, SessionOptions,
};
pub use registry::{AdmissionGuard, Registry, SessionEntry};
pub use server::{Server, ServerConfig, ServerHandle};
