//! A bounded multi-producer/multi-consumer job queue (std-only).
//!
//! `std::sync::mpsc` is single-consumer; the server's worker pool needs
//! many consumers, explicit backpressure and drain-on-close semantics:
//!
//! * [`BoundedQueue::try_push`] never blocks — a full queue is an
//!   immediate [`TryPushError::Full`], which the connection reader turns
//!   into the protocol's `busy` error (bounded memory, no silent
//!   buffering);
//! * [`BoundedQueue::pop`] blocks until an item arrives, and returns
//!   `None` only once the queue is **closed and drained** — so a
//!   graceful shutdown processes every request accepted before it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a [`BoundedQueue::try_push`] was refused; the rejected item is
/// handed back.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity — backpressure.
    Full(T),
    /// The queue was closed (server shutting down).
    Closed(T),
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. See the [module docs](self).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        // Poisoning only means a worker panicked mid-push/pop; the deque
        // itself is still structurally sound.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Full`] at capacity, [`TryPushError::Closed`]
    /// after [`BoundedQueue::close`]; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is empty and open. Returns
    /// `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: further pushes fail, poppers drain the backlog
    /// and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_is_immediate() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(TryPushError::Full(3)) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        match q.try_push("c") {
            Err(TryPushError::Closed("c")) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn many_consumers_see_every_item() {
        let q = Arc::new(BoundedQueue::new(64));
        let total = 50usize;
        let seen = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                scope.spawn(move || {
                    while let Some(i) = q.pop() {
                        seen.lock().unwrap().push(i);
                    }
                });
            }
            for i in 0..total {
                while q.try_push(i).is_err() {
                    std::thread::yield_now();
                }
            }
            q.close();
        });
        let mut seen = seen.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }
}
