//! The sharded nonblocking connection layer (std-only).
//!
//! The server runs a **fixed** number of shard threads; every accepted
//! connection is handed to one shard and stays there for its lifetime.
//! A shard owns its connections outright and runs a readiness loop over
//! their nonblocking sockets:
//!
//! 1. adopt connections handed off by the acceptor;
//! 2. read-accumulate bytes into bounded line buffers
//!    ([`LineAccumulator`] — oversized lines are discarded and answered
//!    with a structured `oversized` error, exactly like the previous
//!    per-connection reader);
//! 3. hand complete lines to the server (parse → admission → enqueue);
//! 4. write-drain every connection's bounded output buffer
//!    ([`ConnOut`]);
//! 5. reap idle connections and close finished ones.
//!
//! Thread count is therefore **constant in the connection count**:
//! hundreds of concurrent connections are multiplexed over a handful of
//! shard threads with bounded memory per connection. With no readiness
//! syscall in std, the loop parks briefly when a full pass makes no
//! progress ([`PARK_INTERVAL`]); workers and the acceptor `unpark` the
//! shard the moment new output or a new connection is ready, so the
//! loaded path never sleeps and the idle path costs a few wakeups per
//! millisecond.
//!
//! Flow control is explicit in both directions. A worker pushing a
//! response blocks (with a stall timeout) once the connection's output
//! buffer crosses its high-water mark, so one slow client throttles at
//! most the workers answering *its* requests, never a shard. A single
//! line larger than the mark is admitted whenever the buffer has
//! drained empty — memory per connection is bounded by
//! `max(high_water, one line)`, and a giant unstreamed response still
//! reaches its client. A shard stops *reading* from a connection whose
//! output buffer is above the high-water mark, so a pipelining client
//! that refuses to read its responses cannot grow server memory
//! without bound.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::Thread;
use std::time::{Duration, Instant};

use crate::protocol::{ErrorCode, Response};

/// How long a shard parks when a full pass over its connections made no
/// progress. Short enough that fresh request bytes (which cannot unpark
/// the shard — there is no readiness syscall in std) are picked up at
/// sub-millisecond latency; long enough that an idle shard burns ~0.1%
/// of a core.
pub(crate) const PARK_INTERVAL: Duration = Duration::from_micros(250);

/// How long a worker may wait for a connection's output buffer to drain
/// below its high-water mark before the connection is declared dead —
/// the successor of the old per-write 10 s socket timeout.
pub(crate) const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Default for [`ShardOptions::drain_grace`]: how long a finishing
/// connection (peer EOF, idle reap, shutdown) with **no jobs in
/// flight** may keep unflushed output before it is force-closed. The
/// grace covers flushing only — a connection whose requests are still
/// computing is not on the clock.
pub(crate) const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Read chunk size per `read` call, and the per-connection fairness cap
/// (at most `READ_BURST` chunks per pass, so one firehose connection
/// cannot starve its shard siblings).
const READ_CHUNK: usize = 16 * 1024;
const READ_BURST: usize = 4;

// ---------------------------------------------------------------------------
// Accept backoff.
// ---------------------------------------------------------------------------

/// Exponential backoff for `accept` errors (EMFILE/ENFILE under fd
/// exhaustion): without it the acceptor hot-spins at 100% CPU on a
/// persistent error. Delays double from [`AcceptBackoff::INITIAL`] to
/// [`AcceptBackoff::CAP`] and reset on the next successful accept.
#[derive(Debug)]
pub(crate) struct AcceptBackoff {
    next_delay: Duration,
}

impl AcceptBackoff {
    pub(crate) const INITIAL: Duration = Duration::from_millis(1);
    pub(crate) const CAP: Duration = Duration::from_millis(100);

    pub(crate) fn new() -> AcceptBackoff {
        AcceptBackoff {
            next_delay: Self::INITIAL,
        }
    }

    /// A successful accept resets the backoff.
    pub(crate) fn on_success(&mut self) {
        self.next_delay = Self::INITIAL;
    }

    /// An accept error: returns how long to sleep before retrying, and
    /// doubles the next delay up to the cap.
    pub(crate) fn on_error(&mut self) -> Duration {
        let delay = self.next_delay;
        self.next_delay = (self.next_delay * 2).min(Self::CAP);
        delay
    }
}

// ---------------------------------------------------------------------------
// Line accumulation.
// ---------------------------------------------------------------------------

/// One event produced by feeding bytes into a [`LineAccumulator`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum LineEvent {
    /// A complete line (newline stripped).
    Line(Vec<u8>),
    /// A line exceeded the byte limit; it was discarded up to (and
    /// including) its newline.
    Oversized,
}

/// Incremental bounded line splitter: the nonblocking twin of the old
/// blocking `read_bounded_line`. Bytes arrive in arbitrary chunks; the
/// accumulator buffers at most `max` bytes of the current line, streams
/// past anything longer (reporting it as one [`LineEvent::Oversized`]
/// per offending line) and treats a trailing unterminated fragment at
/// EOF as a line — netcat without a final newline still gets answered.
#[derive(Debug)]
pub(crate) struct LineAccumulator {
    max: usize,
    buf: Vec<u8>,
    oversized: bool,
}

impl LineAccumulator {
    pub(crate) fn new(max: usize) -> LineAccumulator {
        LineAccumulator {
            max,
            buf: Vec::new(),
            oversized: false,
        }
    }

    /// Feeds one chunk, invoking `on_event` for every completed line.
    pub(crate) fn feed(&mut self, chunk: &[u8], mut on_event: impl FnMut(LineEvent)) {
        let mut rest = chunk;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let part = &rest[..pos];
            if self.oversized || self.buf.len() + part.len() > self.max {
                self.buf.clear();
                self.oversized = false;
                on_event(LineEvent::Oversized);
            } else {
                self.buf.extend_from_slice(part);
                on_event(LineEvent::Line(std::mem::take(&mut self.buf)));
            }
            rest = &rest[pos + 1..];
        }
        if !rest.is_empty() {
            if self.oversized || self.buf.len() + rest.len() > self.max {
                self.oversized = true;
                self.buf.clear();
            } else {
                self.buf.extend_from_slice(rest);
            }
        }
    }

    /// EOF: the trailing unterminated fragment, if any.
    pub(crate) fn finish(&mut self) -> Option<LineEvent> {
        if self.oversized {
            self.oversized = false;
            self.buf.clear();
            Some(LineEvent::Oversized)
        } else if self.buf.is_empty() {
            None
        } else {
            Some(LineEvent::Line(std::mem::take(&mut self.buf)))
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection output buffer.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct OutBuf {
    bytes: Vec<u8>,
    written: usize,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.bytes.len() - self.written
    }

    /// Reclaims the consumed prefix: a cheap `clear` once fully
    /// drained, and a memmove compaction once the prefix alone reaches
    /// `threshold` — without the latter, a connection that stays
    /// backlogged (workers refilling as fast as the client reads)
    /// would grow `bytes` toward the full response size even though
    /// `pending()` stays bounded.
    fn compact(&mut self, threshold: usize) {
        if self.written == 0 {
            return;
        }
        if self.pending() == 0 {
            self.bytes.clear();
            self.written = 0;
        } else if self.written >= threshold {
            self.bytes.drain(..self.written);
            self.written = 0;
        }
    }
}

/// The write half of one connection, shared between its shard (which
/// drains it to the nonblocking socket) and every worker answering its
/// jobs (which append response lines).
///
/// Appends by workers are flow-controlled: past `high_water` pending
/// bytes the worker blocks on a condvar until the shard drains the
/// buffer, with [`WRITE_STALL_TIMEOUT`] as the overall deadline after
/// which the connection is marked dead — a client that stops reading
/// its socket stalls the workers answering its own requests for at most
/// that long, and never wedges a shard (shards only ever take the lock
/// for nonblocking byte shuffling).
#[derive(Debug)]
pub(crate) struct ConnOut {
    state: Mutex<OutBuf>,
    space: Condvar,
    dead: AtomicBool,
    /// Jobs enqueued for this connection and not yet answered.
    in_flight: AtomicUsize,
    /// The owning shard's thread, unparked whenever output is appended
    /// or a job completes.
    shard: Thread,
    high_water: usize,
}

impl ConnOut {
    pub(crate) fn new(shard: Thread, high_water: usize) -> ConnOut {
        ConnOut {
            state: Mutex::new(OutBuf::default()),
            space: Condvar::new(),
            dead: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            shard,
            high_water: high_water.max(1),
        }
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    pub(crate) fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
        // Free any worker waiting for buffer space.
        self.space.notify_all();
    }

    pub(crate) fn pending(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending()
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    pub(crate) fn job_started(&self) {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn job_finished(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.shard.unpark();
    }

    /// Appends a response line from a worker, blocking above the
    /// high-water mark until the shard drains the buffer (or the stall
    /// timeout declares the connection dead). A line larger than the
    /// high-water mark on its own is admitted once the buffer is empty
    /// — waiting for `pending + line` to fit would be unsatisfiable
    /// and would kill the connection after the stall timeout — so
    /// memory stays bounded at `max(high_water, one line)` and large
    /// unstreamed responses drain incrementally.
    pub(crate) fn send(&self, response: &Response) {
        let mut line = response.to_json_line();
        line.push('\n');
        if self.is_dead() {
            return;
        }
        let deadline = Instant::now() + WRITE_STALL_TIMEOUT;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.pending() > 0
            && state.pending() + line.len() > self.high_water
            && !self.is_dead()
        {
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                self.mark_dead();
                self.shard.unpark();
                return;
            }
            let (guard, _) = self
                .space
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        if self.is_dead() {
            return;
        }
        state.bytes.extend_from_slice(line.as_bytes());
        drop(state);
        self.shard.unpark();
    }

    /// Appends a response line from the shard itself — immediate
    /// protocol errors (`busy`, `oversized`, parse errors). Never
    /// blocks: the shard enforces flow control by not *reading* from a
    /// connection whose buffer is above the high-water mark, so these
    /// appends are bounded too.
    pub(crate) fn push_line(&self, response: &Response) {
        if self.is_dead() {
            return;
        }
        let mut line = response.to_json_line();
        line.push('\n');
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.bytes.extend_from_slice(line.as_bytes());
    }

    /// Drains buffered bytes into the nonblocking socket. Returns
    /// whether any bytes moved; a hard write error marks the connection
    /// dead.
    fn write_to(&self, stream: &mut TcpStream) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut progress = false;
        while state.pending() > 0 {
            let at = state.written;
            match stream.write(&state.bytes[at..]) {
                Ok(0) => {
                    drop(state);
                    self.mark_dead();
                    return progress;
                }
                Ok(n) => {
                    state.written += n;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    drop(state);
                    self.mark_dead();
                    return progress;
                }
            }
        }
        state.compact(self.high_water);
        let below_high_water = state.pending() < self.high_water;
        drop(state);
        if below_high_water {
            self.space.notify_all();
        }
        progress
    }
}

// ---------------------------------------------------------------------------
// The shard itself.
// ---------------------------------------------------------------------------

/// Serving-layer counters surfaced in the global `stats` document.
#[derive(Debug, Default)]
pub(crate) struct ServeCounters {
    pub accept_errors: AtomicU64,
    pub overload_rejects: AtomicU64,
    pub idle_reaped: AtomicU64,
    pub admission_rejects: AtomicU64,
    pub open_connections: AtomicUsize,
    pub peak_connections: AtomicUsize,
}

/// Static configuration a shard loop needs.
#[derive(Debug, Clone)]
pub(crate) struct ShardOptions {
    pub max_line_bytes: usize,
    pub high_water: usize,
    pub idle_timeout: Option<Duration>,
    /// Flush grace for finishing connections with nothing in flight;
    /// [`SHUTDOWN_DRAIN_GRACE`] in production, shrunk by tests.
    pub drain_grace: Duration,
}

/// One stream the acceptor hands to a shard.
#[derive(Debug)]
pub(crate) struct Handoff {
    pub stream: TcpStream,
    /// `Some`: an over-cap connection the acceptor rejected. The shard
    /// writes this one notice nonblockingly and closes — rejection
    /// never blocks the acceptor, and the stream is not counted in
    /// `open_connections`.
    pub reject: Option<Response>,
}

/// The acceptor's handoff slot for one shard: accepted streams land in
/// the inbox, then the shard's thread is unparked to adopt them.
#[derive(Debug, Default)]
pub(crate) struct ShardInbox {
    pub handoffs: Mutex<Vec<Handoff>>,
}

/// One connection owned by a shard.
struct Conn {
    stream: TcpStream,
    accum: LineAccumulator,
    out: Arc<ConnOut>,
    last_activity: Instant,
    /// Peer closed its write half; drain our output, then close.
    eof: bool,
    /// We decided to close (idle reap, overload reject); drain the
    /// notice, then close.
    closing: bool,
    /// Whether this connection holds an `open_connections` slot
    /// (overload rejects don't — they were never admitted).
    counted: bool,
    /// Force-close deadline once the connection is finishing *and* has
    /// no jobs in flight, so a peer that never reads its final bytes
    /// cannot pin the slot. The grace covers flushing output only —
    /// requests still computing keep the connection alive, preserving
    /// the "drains every accepted job" shutdown contract.
    drain_deadline: Option<Instant>,
}

impl Conn {
    fn quiesced(&self) -> bool {
        self.out.in_flight() == 0 && self.out.pending() == 0
    }
}

/// Runs one shard until shutdown completes. `on_line` receives every
/// complete request line (parse → admission → enqueue lives with the
/// caller); oversized lines are answered here.
pub(crate) fn shard_loop<F>(
    inbox: &ShardInbox,
    shutdown: &AtomicBool,
    opts: &ShardOptions,
    counters: &ServeCounters,
    mut on_line: F,
) where
    F: FnMut(&Arc<ConnOut>, &[u8]),
{
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    loop {
        let mut progress = false;

        // Adopt connections handed off by the acceptor.
        {
            let mut incoming = inbox.handoffs.lock().unwrap_or_else(|e| e.into_inner());
            for handoff in incoming.drain(..) {
                progress = true;
                let counted = handoff.reject.is_none();
                if handoff.stream.set_nonblocking(true).is_err() {
                    if counted {
                        counters.open_connections.fetch_sub(1, Ordering::AcqRel);
                    }
                    continue;
                }
                let out = Arc::new(ConnOut::new(std::thread::current(), opts.high_water));
                let closing = match &handoff.reject {
                    Some(notice) => {
                        out.push_line(notice);
                        true
                    }
                    None => false,
                };
                conns.push(Conn {
                    stream: handoff.stream,
                    accum: LineAccumulator::new(opts.max_line_bytes),
                    out,
                    last_activity: Instant::now(),
                    eof: false,
                    closing,
                    counted,
                    drain_deadline: None,
                });
            }
        }

        let shutting_down = shutdown.load(Ordering::Acquire);

        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];

            // Read + split lines, unless the peer is done or its output
            // buffer is over the high-water mark (read-side flow
            // control: a client that won't read its responses stops
            // being read from).
            if !conn.eof
                && !conn.closing
                && !conn.out.is_dead()
                && conn.out.pending() < conn.out.high_water
            {
                for _ in 0..READ_BURST {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            conn.eof = true;
                            if let Some(event) = conn.accum.finish() {
                                handle_event(conn, event, opts, &mut on_line);
                            }
                            progress = true;
                            break;
                        }
                        Ok(n) => {
                            progress = true;
                            conn.last_activity = now;
                            let mut events = Vec::new();
                            conn.accum.feed(&scratch[..n], |ev| events.push(ev));
                            for event in events {
                                handle_event(conn, event, opts, &mut on_line);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.out.mark_dead();
                            break;
                        }
                    }
                }
            }

            // Write-drain the output buffer.
            if !conn.out.is_dead() {
                progress |= conn.out.write_to(&mut conn.stream);
            }

            // Idle reaping: a connection with nothing in flight, nothing
            // buffered and no read activity for the timeout gets a
            // structured notice and is closed.
            if let Some(idle) = opts.idle_timeout {
                if !conn.eof
                    && !conn.closing
                    && !conn.out.is_dead()
                    && conn.quiesced()
                    && now.duration_since(conn.last_activity) >= idle
                {
                    counters.idle_reaped.fetch_add(1, Ordering::Relaxed);
                    conn.out.push_line(&Response::error(
                        None,
                        ErrorCode::IdleTimeout,
                        format!(
                            "connection idle for more than {} ms, closing",
                            idle.as_millis()
                        ),
                    ));
                    conn.out.write_to(&mut conn.stream);
                    conn.closing = true;
                    progress = true;
                }
            }

            // Close bookkeeping: once a connection is finishing (peer
            // EOF, reaped, or server shutdown) *and* its jobs have all
            // completed, give it a bounded grace period to flush and
            // then drop it. The clock starts only when nothing is in
            // flight: a request still computing when its client
            // half-closes (a normal send-then-shutdown(WR) client) or
            // when shutdown begins is never on the clock — the grace
            // bounds flushing to a non-reading peer, not analysis time.
            let finishing = conn.eof || conn.closing || shutting_down;
            if finishing && conn.drain_deadline.is_none() && conn.out.in_flight() == 0 {
                conn.drain_deadline = Some(now + opts.drain_grace);
            }
            let overdue = conn.drain_deadline.is_some_and(|d| now >= d);
            if conn.out.is_dead() || (finishing && (conn.quiesced() || overdue)) {
                conn.out.mark_dead();
                if conn.counted {
                    counters.open_connections.fetch_sub(1, Ordering::AcqRel);
                }
                conns.swap_remove(i);
                progress = true;
            } else {
                i += 1;
            }
        }

        if shutting_down && conns.is_empty() {
            return;
        }

        if !progress {
            std::thread::park_timeout(PARK_INTERVAL);
        }
    }
}

fn handle_event<F>(conn: &mut Conn, event: LineEvent, opts: &ShardOptions, on_line: &mut F)
where
    F: FnMut(&Arc<ConnOut>, &[u8]),
{
    match event {
        LineEvent::Oversized => conn.out.push_line(&Response::error(
            None,
            ErrorCode::Oversized,
            format!(
                "request line exceeds the {} byte limit",
                opts.max_line_bytes
            ),
        )),
        LineEvent::Line(bytes) => on_line(&conn.out, &bytes),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_grows_to_cap_and_resets_on_success() {
        let mut b = AcceptBackoff::new();
        // Injected failure burst: delays double from the initial value…
        assert_eq!(b.on_error(), Duration::from_millis(1));
        assert_eq!(b.on_error(), Duration::from_millis(2));
        assert_eq!(b.on_error(), Duration::from_millis(4));
        // …and saturate at the cap instead of growing without bound.
        for _ in 0..16 {
            b.on_error();
        }
        assert_eq!(b.on_error(), AcceptBackoff::CAP);
        assert_eq!(b.on_error(), AcceptBackoff::CAP);
        // One successful accept resets the schedule.
        b.on_success();
        assert_eq!(b.on_error(), Duration::from_millis(1));
    }

    #[test]
    fn accept_backoff_total_sleep_is_bounded_per_error() {
        // The hot-spin bug: a persistent EMFILE must cost sleeps, not
        // CPU. Sum of delays over N errors is Θ(N · cap) — i.e. the
        // loop runs at most ~10 accept attempts per second once
        // saturated, not millions.
        let mut b = AcceptBackoff::new();
        let total: Duration = (0..50).map(|_| b.on_error()).sum();
        assert!(total >= Duration::from_secs(4), "{total:?}");
        assert!(total <= Duration::from_secs(5), "{total:?}");
    }

    fn collect(acc: &mut LineAccumulator, chunk: &[u8]) -> Vec<LineEvent> {
        let mut events = Vec::new();
        acc.feed(chunk, |e| events.push(e));
        events
    }

    #[test]
    fn accumulator_splits_lines_across_chunks() {
        let mut acc = LineAccumulator::new(64);
        assert_eq!(collect(&mut acc, b"hel"), vec![]);
        assert_eq!(
            collect(&mut acc, b"lo\nwor"),
            vec![LineEvent::Line(b"hello".to_vec())]
        );
        assert_eq!(collect(&mut acc, b"ld"), vec![]);
        // EOF: the trailing fragment still counts as a line.
        assert_eq!(acc.finish(), Some(LineEvent::Line(b"world".to_vec())));
        assert_eq!(acc.finish(), None);
    }

    #[test]
    fn accumulator_discards_oversized_lines_and_recovers() {
        let mut acc = LineAccumulator::new(8);
        // One oversized line arriving in many chunks is one event, and
        // the following line still parses.
        assert_eq!(collect(&mut acc, b"xxxxxxx"), vec![]);
        assert_eq!(collect(&mut acc, b"xxxxxxx"), vec![]);
        assert_eq!(
            collect(&mut acc, b"x\nok\n"),
            vec![LineEvent::Oversized, LineEvent::Line(b"ok".to_vec())]
        );
        // A line of exactly the limit is kept.
        assert_eq!(
            collect(&mut acc, b"12345678\n"),
            vec![LineEvent::Line(b"12345678".to_vec())]
        );
        // An oversized trailing fragment at EOF is reported too.
        assert_eq!(collect(&mut acc, b"yyyyyyyyyyyy"), vec![]);
        assert_eq!(acc.finish(), Some(LineEvent::Oversized));
    }

    #[test]
    fn send_admits_a_line_larger_than_high_water_into_an_empty_buffer() {
        // Regression: `send` used to wait for `pending + line` to fit
        // under the high-water mark — unsatisfiable for a single line
        // larger than the mark, so the worker stalled the full
        // WRITE_STALL_TIMEOUT and then killed the connection, silently
        // dropping any unstreamed response bigger than the mark. An
        // oversized line must be admitted immediately when the buffer
        // is empty.
        let out = ConnOut::new(std::thread::current(), 64);
        let doc = "x".repeat(4096);
        let started = Instant::now();
        out.send(&Response::ok(Some(1), doc));
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "oversized line stalled: {:?}",
            started.elapsed()
        );
        assert!(!out.is_dead(), "oversized line killed the connection");
        assert!(out.pending() > 4096, "line was not buffered");
    }

    #[test]
    fn out_buf_reclaims_consumed_prefix_under_backlog() {
        // Regression: the consumed prefix was only reclaimed once the
        // buffer fully drained, so a connection that stayed backlogged
        // grew `bytes` toward the full response size.
        let mut buf = OutBuf::default();
        buf.bytes.extend_from_slice(&[7u8; 1000]);
        buf.written = 900;
        // Below the threshold nothing moves (no memmove churn on every
        // partial write)...
        buf.compact(1024);
        assert_eq!(buf.bytes.len(), 1000);
        assert_eq!(buf.written, 900);
        // ...past it the prefix is dropped and pending is preserved...
        buf.compact(512);
        assert_eq!(buf.bytes.len(), 100);
        assert_eq!(buf.written, 0);
        assert_eq!(buf.pending(), 100);
        // ...and a fully drained buffer clears outright, whatever the
        // threshold.
        buf.written = 100;
        buf.compact(1 << 20);
        assert!(buf.bytes.is_empty());
        assert_eq!(buf.written, 0);
    }

    /// Spawns `shard_loop` over one adopted handoff with a tiny drain
    /// grace; returns the client-side stream, the shutdown flag, the
    /// counters and the join handle.
    fn one_conn_shard<F>(
        handoff_reject: Option<Response>,
        drain_grace: Duration,
        on_line: F,
    ) -> (
        TcpStream,
        Arc<AtomicBool>,
        Arc<ServeCounters>,
        std::thread::JoinHandle<()>,
    )
    where
        F: FnMut(&Arc<ConnOut>, &[u8]) + Send + 'static,
    {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (served, _) = listener.accept().unwrap();
        let counted = handoff_reject.is_none();
        let inbox = Arc::new(ShardInbox::default());
        inbox.handoffs.lock().unwrap().push(Handoff {
            stream: served,
            reject: handoff_reject,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServeCounters::default());
        if counted {
            counters.open_connections.store(1, Ordering::Release);
        }
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let opts = ShardOptions {
                max_line_bytes: 1024,
                high_water: 1 << 20,
                idle_timeout: None,
                drain_grace,
            };
            let mut on_line = on_line;
            std::thread::spawn(move || {
                shard_loop(&inbox, &shutdown, &opts, &counters, |out, line| {
                    on_line(out, line);
                });
            })
        };
        (client, shutdown, counters, handle)
    }

    #[test]
    fn half_close_drain_waits_for_jobs_still_computing() {
        // Regression: the drain grace used to start the moment the peer
        // half-closed, covering computation as well as flushing — any
        // request whose analysis outlived the grace after a normal
        // send-then-shutdown(WR) client closed its write half was
        // force-closed and its response lost. The deadline must start
        // only once the connection has no jobs in flight.
        use std::io::BufRead;
        let grace = Duration::from_millis(25);
        let (mut client, shutdown, _counters, handle) =
            one_conn_shard(None, grace, move |out, _line| {
                // "Worker": answers after 8x the drain grace, holding
                // the in-flight slot the whole time (mirrors JobTicket).
                out.job_started();
                let out = Arc::clone(out);
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(200));
                    out.send(&Response::ok(Some(1), "{\"slow\":true}"));
                    out.job_finished();
                });
            });
        client.write_all(b"{\"id\":1}\n").unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = std::io::BufReader::new(client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"slow\":true"),
            "slow response lost after half-close: {line:?}"
        );
        shutdown.store(true, Ordering::Release);
        handle.thread().unpark();
        handle.join().unwrap();
    }

    #[test]
    fn reject_handoffs_get_the_notice_without_an_open_slot() {
        // An over-cap reject is flushed by the shard's nonblocking loop
        // and closed, and never touches `open_connections` (it was
        // never admitted).
        use std::io::BufRead;
        let notice = Response::error(None, ErrorCode::Overloaded, "server is at its limit");
        let (client, shutdown, counters, handle) =
            one_conn_shard(Some(notice), Duration::from_millis(25), |_out, _line| {
                panic!("a rejected connection must not serve requests");
            });
        let mut reader = std::io::BufReader::new(client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("overloaded"), "{line:?}");
        // ...then the close.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "{line:?}");
        assert_eq!(counters.open_connections.load(Ordering::Acquire), 0);
        shutdown.store(true, Ordering::Release);
        handle.thread().unpark();
        handle.join().unwrap();
    }

    #[test]
    fn conn_out_appends_and_tracks_in_flight() {
        let out = ConnOut::new(std::thread::current(), 1 << 20);
        assert_eq!(out.pending(), 0);
        out.push_line(&Response::ok(Some(1), "{}"));
        assert!(out.pending() > 0);
        assert_eq!(out.in_flight(), 0);
        out.job_started();
        out.job_started();
        assert_eq!(out.in_flight(), 2);
        out.job_finished();
        assert_eq!(out.in_flight(), 1);
        out.mark_dead();
        assert!(out.is_dead());
        // Dead connections ignore further sends.
        out.send(&Response::ok(Some(2), "{}"));
    }
}
