//! The sharded nonblocking connection layer (std-only).
//!
//! The server runs a **fixed** number of shard threads; every accepted
//! connection is handed to one shard and stays there for its lifetime.
//! A shard owns its connections outright and runs a readiness loop over
//! their nonblocking sockets:
//!
//! 1. adopt connections handed off by the acceptor;
//! 2. read-accumulate bytes into bounded line buffers
//!    ([`LineAccumulator`] — oversized lines are discarded and answered
//!    with a structured `oversized` error, exactly like the previous
//!    per-connection reader);
//! 3. hand complete lines to the server (parse → admission → enqueue);
//! 4. write-drain every connection's bounded output buffer
//!    ([`ConnOut`]);
//! 5. reap idle connections and close finished ones.
//!
//! Thread count is therefore **constant in the connection count**:
//! hundreds of concurrent connections are multiplexed over a handful of
//! shard threads with bounded memory per connection. With no readiness
//! syscall in std, the loop parks briefly when a full pass makes no
//! progress ([`PARK_INTERVAL`]); workers and the acceptor `unpark` the
//! shard the moment new output or a new connection is ready, so the
//! loaded path never sleeps and the idle path costs a few wakeups per
//! millisecond.
//!
//! Flow control is explicit in both directions. A worker pushing a
//! response blocks (with a stall timeout) once the connection's output
//! buffer crosses its high-water mark, so one slow client throttles at
//! most the workers answering *its* requests, never a shard. A shard
//! stops *reading* from a connection whose output buffer is above the
//! high-water mark, so a pipelining client that refuses to read its
//! responses cannot grow server memory without bound.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::Thread;
use std::time::{Duration, Instant};

use crate::protocol::{ErrorCode, Response};

/// How long a shard parks when a full pass over its connections made no
/// progress. Short enough that fresh request bytes (which cannot unpark
/// the shard — there is no readiness syscall in std) are picked up at
/// sub-millisecond latency; long enough that an idle shard burns ~0.1%
/// of a core.
pub(crate) const PARK_INTERVAL: Duration = Duration::from_micros(250);

/// How long a worker may wait for a connection's output buffer to drain
/// below its high-water mark before the connection is declared dead —
/// the successor of the old per-write 10 s socket timeout.
pub(crate) const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// How long after shutdown a shard keeps trying to flush drained
/// responses to clients that have stopped reading before force-closing
/// them.
pub(crate) const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Read chunk size per `read` call, and the per-connection fairness cap
/// (at most `READ_BURST` chunks per pass, so one firehose connection
/// cannot starve its shard siblings).
const READ_CHUNK: usize = 16 * 1024;
const READ_BURST: usize = 4;

// ---------------------------------------------------------------------------
// Accept backoff.
// ---------------------------------------------------------------------------

/// Exponential backoff for `accept` errors (EMFILE/ENFILE under fd
/// exhaustion): without it the acceptor hot-spins at 100% CPU on a
/// persistent error. Delays double from [`AcceptBackoff::INITIAL`] to
/// [`AcceptBackoff::CAP`] and reset on the next successful accept.
#[derive(Debug)]
pub(crate) struct AcceptBackoff {
    next_delay: Duration,
}

impl AcceptBackoff {
    pub(crate) const INITIAL: Duration = Duration::from_millis(1);
    pub(crate) const CAP: Duration = Duration::from_millis(100);

    pub(crate) fn new() -> AcceptBackoff {
        AcceptBackoff {
            next_delay: Self::INITIAL,
        }
    }

    /// A successful accept resets the backoff.
    pub(crate) fn on_success(&mut self) {
        self.next_delay = Self::INITIAL;
    }

    /// An accept error: returns how long to sleep before retrying, and
    /// doubles the next delay up to the cap.
    pub(crate) fn on_error(&mut self) -> Duration {
        let delay = self.next_delay;
        self.next_delay = (self.next_delay * 2).min(Self::CAP);
        delay
    }
}

// ---------------------------------------------------------------------------
// Line accumulation.
// ---------------------------------------------------------------------------

/// One event produced by feeding bytes into a [`LineAccumulator`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum LineEvent {
    /// A complete line (newline stripped).
    Line(Vec<u8>),
    /// A line exceeded the byte limit; it was discarded up to (and
    /// including) its newline.
    Oversized,
}

/// Incremental bounded line splitter: the nonblocking twin of the old
/// blocking `read_bounded_line`. Bytes arrive in arbitrary chunks; the
/// accumulator buffers at most `max` bytes of the current line, streams
/// past anything longer (reporting it as one [`LineEvent::Oversized`]
/// per offending line) and treats a trailing unterminated fragment at
/// EOF as a line — netcat without a final newline still gets answered.
#[derive(Debug)]
pub(crate) struct LineAccumulator {
    max: usize,
    buf: Vec<u8>,
    oversized: bool,
}

impl LineAccumulator {
    pub(crate) fn new(max: usize) -> LineAccumulator {
        LineAccumulator {
            max,
            buf: Vec::new(),
            oversized: false,
        }
    }

    /// Feeds one chunk, invoking `on_event` for every completed line.
    pub(crate) fn feed(&mut self, chunk: &[u8], mut on_event: impl FnMut(LineEvent)) {
        let mut rest = chunk;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let part = &rest[..pos];
            if self.oversized || self.buf.len() + part.len() > self.max {
                self.buf.clear();
                self.oversized = false;
                on_event(LineEvent::Oversized);
            } else {
                self.buf.extend_from_slice(part);
                on_event(LineEvent::Line(std::mem::take(&mut self.buf)));
            }
            rest = &rest[pos + 1..];
        }
        if !rest.is_empty() {
            if self.oversized || self.buf.len() + rest.len() > self.max {
                self.oversized = true;
                self.buf.clear();
            } else {
                self.buf.extend_from_slice(rest);
            }
        }
    }

    /// EOF: the trailing unterminated fragment, if any.
    pub(crate) fn finish(&mut self) -> Option<LineEvent> {
        if self.oversized {
            self.oversized = false;
            self.buf.clear();
            Some(LineEvent::Oversized)
        } else if self.buf.is_empty() {
            None
        } else {
            Some(LineEvent::Line(std::mem::take(&mut self.buf)))
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection output buffer.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct OutBuf {
    bytes: Vec<u8>,
    written: usize,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.bytes.len() - self.written
    }
}

/// The write half of one connection, shared between its shard (which
/// drains it to the nonblocking socket) and every worker answering its
/// jobs (which append response lines).
///
/// Appends by workers are flow-controlled: past `high_water` pending
/// bytes the worker blocks on a condvar until the shard drains the
/// buffer, with [`WRITE_STALL_TIMEOUT`] as the overall deadline after
/// which the connection is marked dead — a client that stops reading
/// its socket stalls the workers answering its own requests for at most
/// that long, and never wedges a shard (shards only ever take the lock
/// for nonblocking byte shuffling).
#[derive(Debug)]
pub(crate) struct ConnOut {
    state: Mutex<OutBuf>,
    space: Condvar,
    dead: AtomicBool,
    /// Jobs enqueued for this connection and not yet answered.
    in_flight: AtomicUsize,
    /// The owning shard's thread, unparked whenever output is appended
    /// or a job completes.
    shard: Thread,
    high_water: usize,
}

impl ConnOut {
    pub(crate) fn new(shard: Thread, high_water: usize) -> ConnOut {
        ConnOut {
            state: Mutex::new(OutBuf::default()),
            space: Condvar::new(),
            dead: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            shard,
            high_water: high_water.max(1),
        }
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    pub(crate) fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
        // Free any worker waiting for buffer space.
        self.space.notify_all();
    }

    pub(crate) fn pending(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending()
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    pub(crate) fn job_started(&self) {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn job_finished(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.shard.unpark();
    }

    /// Appends a response line from a worker, blocking above the
    /// high-water mark until the shard drains the buffer (or the stall
    /// timeout declares the connection dead).
    pub(crate) fn send(&self, response: &Response) {
        let mut line = response.to_json_line();
        line.push('\n');
        if self.is_dead() {
            return;
        }
        let deadline = Instant::now() + WRITE_STALL_TIMEOUT;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.pending() + line.len() > self.high_water && !self.is_dead() {
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                self.mark_dead();
                self.shard.unpark();
                return;
            }
            let (guard, _) = self
                .space
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        if self.is_dead() {
            return;
        }
        state.bytes.extend_from_slice(line.as_bytes());
        drop(state);
        self.shard.unpark();
    }

    /// Appends a response line from the shard itself — immediate
    /// protocol errors (`busy`, `oversized`, parse errors). Never
    /// blocks: the shard enforces flow control by not *reading* from a
    /// connection whose buffer is above the high-water mark, so these
    /// appends are bounded too.
    pub(crate) fn push_line(&self, response: &Response) {
        if self.is_dead() {
            return;
        }
        let mut line = response.to_json_line();
        line.push('\n');
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.bytes.extend_from_slice(line.as_bytes());
    }

    /// Drains buffered bytes into the nonblocking socket. Returns
    /// whether any bytes moved; a hard write error marks the connection
    /// dead.
    fn write_to(&self, stream: &mut TcpStream) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut progress = false;
        while state.pending() > 0 {
            let at = state.written;
            match stream.write(&state.bytes[at..]) {
                Ok(0) => {
                    drop(state);
                    self.mark_dead();
                    return progress;
                }
                Ok(n) => {
                    state.written += n;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    drop(state);
                    self.mark_dead();
                    return progress;
                }
            }
        }
        if state.pending() == 0 && !state.bytes.is_empty() {
            state.bytes.clear();
            state.written = 0;
        }
        let below_high_water = state.pending() < self.high_water;
        drop(state);
        if below_high_water {
            self.space.notify_all();
        }
        progress
    }
}

// ---------------------------------------------------------------------------
// The shard itself.
// ---------------------------------------------------------------------------

/// Serving-layer counters surfaced in the global `stats` document.
#[derive(Debug, Default)]
pub(crate) struct ServeCounters {
    pub accept_errors: AtomicU64,
    pub overload_rejects: AtomicU64,
    pub idle_reaped: AtomicU64,
    pub admission_rejects: AtomicU64,
    pub open_connections: AtomicUsize,
    pub peak_connections: AtomicUsize,
}

/// Static configuration a shard loop needs.
#[derive(Debug, Clone)]
pub(crate) struct ShardOptions {
    pub max_line_bytes: usize,
    pub high_water: usize,
    pub idle_timeout: Option<Duration>,
}

/// The acceptor's handoff slot for one shard: accepted streams land in
/// the inbox, then the shard's thread is unparked to adopt them.
#[derive(Debug, Default)]
pub(crate) struct ShardInbox {
    pub streams: Mutex<Vec<TcpStream>>,
}

/// One connection owned by a shard.
struct Conn {
    stream: TcpStream,
    accum: LineAccumulator,
    out: Arc<ConnOut>,
    last_activity: Instant,
    /// Peer closed its write half; drain our output, then close.
    eof: bool,
    /// We decided to close (idle reap); drain the notice, then close.
    closing: bool,
    /// Force-close deadline once `eof`/`closing`/shutdown applies, so a
    /// peer that never reads its final bytes cannot pin the slot.
    drain_deadline: Option<Instant>,
}

impl Conn {
    fn quiesced(&self) -> bool {
        self.out.in_flight() == 0 && self.out.pending() == 0
    }
}

/// Runs one shard until shutdown completes. `on_line` receives every
/// complete request line (parse → admission → enqueue lives with the
/// caller); oversized lines are answered here.
pub(crate) fn shard_loop<F>(
    inbox: &ShardInbox,
    shutdown: &AtomicBool,
    opts: &ShardOptions,
    counters: &ServeCounters,
    mut on_line: F,
) where
    F: FnMut(&Arc<ConnOut>, &[u8]),
{
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut shutdown_since: Option<Instant> = None;
    loop {
        let mut progress = false;

        // Adopt connections handed off by the acceptor.
        {
            let mut incoming = inbox.streams.lock().unwrap_or_else(|e| e.into_inner());
            for stream in incoming.drain(..) {
                progress = true;
                if stream.set_nonblocking(true).is_err() {
                    counters.open_connections.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                conns.push(Conn {
                    stream,
                    accum: LineAccumulator::new(opts.max_line_bytes),
                    out: Arc::new(ConnOut::new(std::thread::current(), opts.high_water)),
                    last_activity: Instant::now(),
                    eof: false,
                    closing: false,
                    drain_deadline: None,
                });
            }
        }

        let shutting_down = shutdown.load(Ordering::Acquire);
        if shutting_down && shutdown_since.is_none() {
            shutdown_since = Some(Instant::now());
        }

        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];

            // Read + split lines, unless the peer is done or its output
            // buffer is over the high-water mark (read-side flow
            // control: a client that won't read its responses stops
            // being read from).
            if !conn.eof
                && !conn.closing
                && !conn.out.is_dead()
                && conn.out.pending() < conn.out.high_water
            {
                for _ in 0..READ_BURST {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            conn.eof = true;
                            if let Some(event) = conn.accum.finish() {
                                handle_event(conn, event, opts, &mut on_line);
                            }
                            progress = true;
                            break;
                        }
                        Ok(n) => {
                            progress = true;
                            conn.last_activity = now;
                            let mut events = Vec::new();
                            conn.accum.feed(&scratch[..n], |ev| events.push(ev));
                            for event in events {
                                handle_event(conn, event, opts, &mut on_line);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.out.mark_dead();
                            break;
                        }
                    }
                }
            }

            // Write-drain the output buffer.
            if !conn.out.is_dead() {
                progress |= conn.out.write_to(&mut conn.stream);
            }

            // Idle reaping: a connection with nothing in flight, nothing
            // buffered and no read activity for the timeout gets a
            // structured notice and is closed.
            if let Some(idle) = opts.idle_timeout {
                if !conn.eof
                    && !conn.closing
                    && !conn.out.is_dead()
                    && conn.quiesced()
                    && now.duration_since(conn.last_activity) >= idle
                {
                    counters.idle_reaped.fetch_add(1, Ordering::Relaxed);
                    conn.out.push_line(&Response::error(
                        None,
                        ErrorCode::IdleTimeout,
                        format!(
                            "connection idle for more than {} ms, closing",
                            idle.as_millis()
                        ),
                    ));
                    conn.out.write_to(&mut conn.stream);
                    conn.closing = true;
                    progress = true;
                }
            }

            // Close bookkeeping: once a connection is finishing (peer
            // EOF, reaped, or server shutdown), give it a bounded grace
            // period to drain and then drop it.
            let finishing = conn.eof || conn.closing || shutting_down;
            if finishing && conn.drain_deadline.is_none() {
                conn.drain_deadline = Some(now + SHUTDOWN_DRAIN_GRACE);
            }
            let overdue = conn.drain_deadline.is_some_and(|d| now >= d);
            if conn.out.is_dead() || (finishing && (conn.quiesced() || overdue)) {
                conn.out.mark_dead();
                counters.open_connections.fetch_sub(1, Ordering::AcqRel);
                conns.swap_remove(i);
                progress = true;
            } else {
                i += 1;
            }
        }

        if shutting_down && conns.is_empty() {
            return;
        }

        if !progress {
            std::thread::park_timeout(PARK_INTERVAL);
        }
    }
}

fn handle_event<F>(conn: &mut Conn, event: LineEvent, opts: &ShardOptions, on_line: &mut F)
where
    F: FnMut(&Arc<ConnOut>, &[u8]),
{
    match event {
        LineEvent::Oversized => conn.out.push_line(&Response::error(
            None,
            ErrorCode::Oversized,
            format!(
                "request line exceeds the {} byte limit",
                opts.max_line_bytes
            ),
        )),
        LineEvent::Line(bytes) => on_line(&conn.out, &bytes),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_grows_to_cap_and_resets_on_success() {
        let mut b = AcceptBackoff::new();
        // Injected failure burst: delays double from the initial value…
        assert_eq!(b.on_error(), Duration::from_millis(1));
        assert_eq!(b.on_error(), Duration::from_millis(2));
        assert_eq!(b.on_error(), Duration::from_millis(4));
        // …and saturate at the cap instead of growing without bound.
        for _ in 0..16 {
            b.on_error();
        }
        assert_eq!(b.on_error(), AcceptBackoff::CAP);
        assert_eq!(b.on_error(), AcceptBackoff::CAP);
        // One successful accept resets the schedule.
        b.on_success();
        assert_eq!(b.on_error(), Duration::from_millis(1));
    }

    #[test]
    fn accept_backoff_total_sleep_is_bounded_per_error() {
        // The hot-spin bug: a persistent EMFILE must cost sleeps, not
        // CPU. Sum of delays over N errors is Θ(N · cap) — i.e. the
        // loop runs at most ~10 accept attempts per second once
        // saturated, not millions.
        let mut b = AcceptBackoff::new();
        let total: Duration = (0..50).map(|_| b.on_error()).sum();
        assert!(total >= Duration::from_secs(4), "{total:?}");
        assert!(total <= Duration::from_secs(5), "{total:?}");
    }

    fn collect(acc: &mut LineAccumulator, chunk: &[u8]) -> Vec<LineEvent> {
        let mut events = Vec::new();
        acc.feed(chunk, |e| events.push(e));
        events
    }

    #[test]
    fn accumulator_splits_lines_across_chunks() {
        let mut acc = LineAccumulator::new(64);
        assert_eq!(collect(&mut acc, b"hel"), vec![]);
        assert_eq!(
            collect(&mut acc, b"lo\nwor"),
            vec![LineEvent::Line(b"hello".to_vec())]
        );
        assert_eq!(collect(&mut acc, b"ld"), vec![]);
        // EOF: the trailing fragment still counts as a line.
        assert_eq!(acc.finish(), Some(LineEvent::Line(b"world".to_vec())));
        assert_eq!(acc.finish(), None);
    }

    #[test]
    fn accumulator_discards_oversized_lines_and_recovers() {
        let mut acc = LineAccumulator::new(8);
        // One oversized line arriving in many chunks is one event, and
        // the following line still parses.
        assert_eq!(collect(&mut acc, b"xxxxxxx"), vec![]);
        assert_eq!(collect(&mut acc, b"xxxxxxx"), vec![]);
        assert_eq!(
            collect(&mut acc, b"x\nok\n"),
            vec![LineEvent::Oversized, LineEvent::Line(b"ok".to_vec())]
        );
        // A line of exactly the limit is kept.
        assert_eq!(
            collect(&mut acc, b"12345678\n"),
            vec![LineEvent::Line(b"12345678".to_vec())]
        );
        // An oversized trailing fragment at EOF is reported too.
        assert_eq!(collect(&mut acc, b"yyyyyyyyyyyy"), vec![]);
        assert_eq!(acc.finish(), Some(LineEvent::Oversized));
    }

    #[test]
    fn conn_out_appends_and_tracks_in_flight() {
        let out = ConnOut::new(std::thread::current(), 1 << 20);
        assert_eq!(out.pending(), 0);
        out.push_line(&Response::ok(Some(1), "{}"));
        assert!(out.pending() > 0);
        assert_eq!(out.in_flight(), 0);
        out.job_started();
        out.job_started();
        assert_eq!(out.in_flight(), 2);
        out.job_finished();
        assert_eq!(out.in_flight(), 1);
        out.mark_dead();
        assert!(out.is_dead());
        // Dead connections ignore further sends.
        out.send(&Response::ok(Some(2), "{}"));
    }
}
