//! The concurrent analysis server: TCP acceptor, a fixed set of
//! connection *shards*, a fixed worker pool over a bounded job queue,
//! and the op handlers.
//!
//! ## Threading model
//!
//! * **acceptor** — one thread accepting connections, with exponential
//!   backoff on accept errors (EMFILE under fd exhaustion must cost
//!   sleeps, not a hot-spinning core) and a hard connection cap
//!   (excess connections get a structured `overloaded` error, never a
//!   silent drop);
//! * **shards** — `shards` threads, each owning a bounded set of
//!   *nonblocking* connections multiplexed by a readiness loop
//!   (the private `shard` module): read-accumulate lines → parse/admit →
//!   enqueue → write-drain per-connection output buffers. Thread count
//!   is fixed regardless of connection count;
//! * **workers** — a fixed pool of `workers` threads popping jobs off
//!   one bounded [`BoundedQueue`]; all analysis runs here, over the
//!   shared [`Registry`].
//!
//! Backpressure is explicit at every layer: a full queue answers
//! `busy`, a session past its in-flight cap answers `busy`, a server
//! past its connection cap answers `overloaded`, and a connection whose
//! client stops reading has its output buffer capped (workers stall
//! briefly, then the connection is declared dead). Graceful shutdown
//! (`shutdown` op or [`ServerHandle::shutdown`]) stops intake,
//! **drains** every job already accepted — no lost responses — and then
//! joins acceptor, workers and shards.
//!
//! ## Sharing
//!
//! Sessions and plans live in the [`Registry`] behind `Arc`s, so every
//! connection shares one `AnalysisSession` per model and one
//! `PreparedQuery` (with its scenario/probability memos) per plan id:
//! a scenario any connection has evaluated is a pure cache lookup for
//! all of them. A `--max-sessions` cap turns the registry into an LRU:
//! loading past the cap evicts the least-recently-used session
//! (counted in `stats`), safely — in-flight queries finish on their
//! own `Arc`.
//!
//! ## Streaming
//!
//! `sweep` and `cause` accept `"stream":true`: the (possibly huge)
//! result document is then delivered as bounded `begin`/`chunk`/`end`
//! frames sharing the request id, so one giant reply flows through the
//! per-connection output buffer in pieces instead of sitting in memory
//! whole — see [`docs/server.md`](https://example.invalid) for the
//! frame shapes.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

use bfl_core::engine::{AnalysisSession, MaintenanceReport};
use bfl_core::error::BflError;
use bfl_core::report::{
    json_estimate, json_importance, json_interval, json_outcome, json_stats, json_str, Spec,
};
use bfl_core::scenario::{Scenario, ScenarioSet};
use bfl_core::uncertainty::{Method, ProbValue};
use bfl_fault_tree::galileo;

use crate::protocol::{ErrorCode, Op, ProbOptions, ProbTarget, Request, Response, SessionOptions};
use crate::queue::{BoundedQueue, TryPushError};
use crate::registry::{AdmissionGuard, Registry, SessionEntry};
use crate::shard::{
    shard_loop, AcceptBackoff, ConnOut, Handoff, ServeCounters, ShardInbox, ShardOptions,
    SHUTDOWN_DRAIN_GRACE,
};

/// Response bytes per streamed `chunk` frame (before JSON escaping).
const STREAM_CHUNK_BYTES: usize = 64 * 1024;

/// Server configuration; every field has a serving-friendly default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads (analysis parallelism).
    pub workers: usize,
    /// Shard threads (connection multiplexing); thread count stays
    /// fixed no matter how many connections are open.
    pub shards: usize,
    /// Bounded request-queue capacity; a full queue answers `busy`.
    pub queue_capacity: usize,
    /// Maximum accepted request-line length in bytes; longer lines
    /// answer `oversized` (and are discarded without buffering).
    pub max_line_bytes: usize,
    /// Maximum concurrently open connections; excess connections are
    /// answered with a structured `overloaded` error and closed.
    pub max_connections: usize,
    /// Resident-session cap (`None` = unbounded): loading past it
    /// evicts the least-recently-used session.
    pub max_sessions: Option<usize>,
    /// Per-session in-flight request cap (`None` = unbounded): a
    /// session at its cap answers `busy` at admission time.
    pub session_inflight: Option<usize>,
    /// Reap connections with no read activity and no pending work for
    /// this long (`None` = never): each gets a structured
    /// `idle_timeout` error before the close, counted in `stats`.
    pub idle_timeout: Option<Duration>,
    /// Per-connection output-buffer high-water mark in bytes: above it
    /// the shard stops reading from the connection and workers stall
    /// (bounded memory per slow client).
    pub write_high_water: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: parallelism,
            shards: parallelism.clamp(1, 4),
            queue_capacity: 64,
            max_line_bytes: 4 << 20,
            max_connections: 1024,
            max_sessions: None,
            session_inflight: None,
            idle_timeout: None,
            write_high_water: 8 << 20,
        }
    }
}

/// The acceptor's handle to one shard: where to drop accepted streams,
/// and which thread to wake afterwards.
#[derive(Debug, Clone)]
struct ShardLink {
    inbox: Arc<ShardInbox>,
    thread: Thread,
}

/// Shared state of one running server.
#[derive(Debug)]
pub(crate) struct Shared {
    registry: Registry,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    workers: usize,
    shard_count: usize,
    queue_capacity: usize,
    max_line_bytes: usize,
    max_connections: usize,
    session_inflight: Option<usize>,
    idle_timeout: Option<Duration>,
    counters: ServeCounters,
    /// Set once in [`Server::bind`] after the shards spawn, before the
    /// acceptor does; the acceptor and `begin_shutdown` read it.
    shards: OnceLock<Vec<ShardLink>>,
}

/// Holds one slot of a connection's in-flight count from enqueue to
/// response, so shards know when a connection has quiesced (safe to
/// close on EOF/shutdown) — released on drop, whatever path the job
/// takes.
#[derive(Debug)]
struct JobTicket {
    out: Arc<ConnOut>,
}

impl JobTicket {
    fn new(out: Arc<ConnOut>) -> JobTicket {
        out.job_started();
        JobTicket { out }
    }
}

impl Drop for JobTicket {
    fn drop(&mut self) {
        self.out.job_finished();
    }
}

/// One enqueued request.
#[derive(Debug)]
struct Job {
    id: Option<u64>,
    op: Op,
    out: Arc<ConnOut>,
    /// Connection in-flight accounting (drop = done); never read, held
    /// for its `Drop`.
    _ticket: JobTicket,
    /// Session in-flight slot, when admission control is on; held for
    /// its `Drop`.
    _admission: Option<AdmissionGuard>,
}

/// The server entry point.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds the listener and starts the acceptor, shard and worker
    /// threads. Returns immediately; use the handle to learn the bound
    /// address and to wait or shut down.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is unavailable.
    pub fn bind(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: Registry::with_capacity(config.max_sessions),
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            shutdown: AtomicBool::new(false),
            addr,
            workers: config.workers.max(1),
            shard_count: config.shards.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_line_bytes: config.max_line_bytes.max(1024),
            max_connections: config.max_connections.max(1),
            session_inflight: config.session_inflight.map(|c| c.max(1)),
            idle_timeout: config.idle_timeout,
            counters: ServeCounters::default(),
            shards: OnceLock::new(),
        });
        let mut workers = Vec::with_capacity(shared.workers);
        for i in 0..shared.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bfl-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let opts = ShardOptions {
            max_line_bytes: shared.max_line_bytes,
            high_water: config.write_high_water.max(64 * 1024),
            idle_timeout: shared.idle_timeout,
            drain_grace: SHUTDOWN_DRAIN_GRACE,
        };
        let mut shard_handles = Vec::with_capacity(shared.shard_count);
        let mut links = Vec::with_capacity(shared.shard_count);
        for i in 0..shared.shard_count {
            let inbox = Arc::new(ShardInbox::default());
            let handle = {
                let inbox = Arc::clone(&inbox);
                let shared = Arc::clone(&shared);
                let opts = opts.clone();
                std::thread::Builder::new()
                    .name(format!("bfl-shard-{i}"))
                    .spawn(move || {
                        shard_loop(
                            &inbox,
                            &shared.shutdown,
                            &opts,
                            &shared.counters,
                            |out, line| process_request_line(&shared, out, line),
                        );
                    })?
            };
            links.push(ShardLink {
                inbox,
                thread: handle.thread().clone(),
            });
            shard_handles.push(handle);
        }
        let _ = shared.shards.set(links);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("bfl-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, &listener))?
        };
        Ok(ServerHandle {
            shared,
            acceptor: Some(acceptor),
            workers,
            shards: shard_handles,
        })
    }
}

/// A running server: bound address plus join/shutdown control.
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until the server stops (a client sent `shutdown`), then
    /// joins every worker and shard — all accepted requests have been
    /// answered and flushed when this returns.
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Initiates a graceful shutdown programmatically (equivalent to
    /// the `shutdown` op): stops intake, drains the queue and every
    /// shard's output buffers, joins.
    pub fn shutdown(mut self) {
        begin_shutdown(&self.shared);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers first: their final responses land in shard output
        // buffers, which the shards flush before exiting.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

/// Flags the shutdown, closes the queue (poppers drain it), unparks
/// every shard so it observes the flag, and pokes the acceptor awake.
/// The poke targets the loopback of the *bound family* — an IPv6
/// listener may not accept IPv4-mapped connections.
fn begin_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    shared.queue.close();
    if let Some(links) = shared.shards.get() {
        for link in links {
            link.thread.unpark();
        }
    }
    let poke = if shared.addr.ip().is_unspecified() {
        match shared.addr {
            SocketAddr::V4(_) => SocketAddr::from(([127, 0, 0, 1], shared.addr.port())),
            SocketAddr::V6(_) => {
                SocketAddr::from((std::net::Ipv6Addr::LOCALHOST, shared.addr.port()))
            }
        }
    } else {
        shared.addr
    };
    let _ = TcpStream::connect(poke);
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let Some(links) = shared.shards.get() else {
        return;
    };
    let mut backoff = AcceptBackoff::new();
    let mut next_shard = 0usize;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                backoff.on_success();
                stream
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // EMFILE/ENFILE and friends persist across retries:
                // back off exponentially instead of hot-spinning a
                // core, and account for the error in `stats`.
                shared
                    .counters
                    .accept_errors
                    .fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff.on_error());
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Responses are one small line each; Nagle + delayed ACK would
        // add ~40 ms to every round trip.
        let _ = stream.set_nodelay(true);
        let open = shared.counters.open_connections.load(Ordering::Acquire);
        let reject = if open >= shared.max_connections {
            // Never drop a connection silently: past the cap the client
            // gets a structured `overloaded` error before the close.
            // The notice is written by a shard's nonblocking loop, not
            // here — a burst of rejects from peers that don't read must
            // never serialize the acceptor behind blocking writes.
            shared
                .counters
                .overload_rejects
                .fetch_add(1, Ordering::Relaxed);
            Some(Response::error(
                None,
                ErrorCode::Overloaded,
                format!(
                    "server is at its connection limit ({}), retry later",
                    shared.max_connections
                ),
            ))
        } else {
            shared
                .counters
                .open_connections
                .fetch_add(1, Ordering::AcqRel);
            shared
                .counters
                .peak_connections
                .fetch_max(open + 1, Ordering::AcqRel);
            None
        };
        let link = &links[next_shard % links.len()];
        next_shard = next_shard.wrapping_add(1);
        link.inbox
            .handoffs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Handoff { stream, reject });
        link.thread.unpark();
    }
}

/// Handles one complete request line on its shard thread: parse,
/// admission, enqueue. Never blocks — immediate answers (`busy`,
/// parse errors, `shutting_down`) go straight into the connection's
/// output buffer.
fn process_request_line(shared: &Shared, out: &Arc<ConnOut>, bytes: &[u8]) {
    let Ok(text) = std::str::from_utf8(bytes) else {
        out.push_line(&Response::error(
            None,
            ErrorCode::ParseError,
            "request line is not valid UTF-8",
        ));
        return;
    };
    let line = text.trim();
    if line.is_empty() {
        return;
    }
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err((id, code, message)) => {
            out.push_line(&Response::error(id, code, message));
            return;
        }
    };
    if shared.shutdown.load(Ordering::Acquire) {
        out.push_line(&Response::error(
            request.id,
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
        return;
    }
    let admission = match admit(shared, &request) {
        Ok(admission) => admission,
        Err(response) => {
            out.push_line(&response);
            return;
        }
    };
    let job = Job {
        id: request.id,
        op: request.op,
        out: Arc::clone(out),
        _ticket: JobTicket::new(Arc::clone(out)),
        _admission: admission,
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(TryPushError::Full(job)) => job.out.push_line(&Response::error(
            job.id,
            ErrorCode::Busy,
            "request queue is full, retry later",
        )),
        Err(TryPushError::Closed(job)) => job.out.push_line(&Response::error(
            job.id,
            ErrorCode::ShuttingDown,
            "server is draining",
        )),
    }
}

/// Per-session admission control: with `--session-inflight` set and the
/// request addressing a loaded session, claim one of its in-flight
/// slots (released when the job drops). A session at its cap answers
/// `busy` without touching the queue, so one swamped session cannot
/// monopolise the worker pool.
fn admit(shared: &Shared, request: &Request) -> Result<Option<AdmissionGuard>, Response> {
    let Some(cap) = shared.session_inflight else {
        return Ok(None);
    };
    let Some(session) = request.op.session_id() else {
        return Ok(None);
    };
    // An unknown session is not an admission matter: let the job fail
    // downstream with the structured `unknown_session` error.
    let Some(entry) = shared.registry.get(session) else {
        return Ok(None);
    };
    match entry.try_admit(cap) {
        Some(guard) => Ok(Some(guard)),
        None => {
            shared
                .counters
                .admission_rejects
                .fetch_add(1, Ordering::Relaxed);
            Err(Response::error(
                request.id,
                ErrorCode::Busy,
                format!("session `{session}` is at its in-flight limit ({cap}), retry later"),
            ))
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if matches!(job.op, Op::Shutdown) {
            // Flag first so shards reject new work, answer, then close
            // the queue: poppers drain what was already accepted.
            shared.shutdown.store(true, Ordering::Release);
            job.out.send(&Response::ok(job.id, "{\"stopping\":true}"));
            begin_shutdown(shared);
            continue;
        }
        // A handler panic must never take the worker (and with it the
        // whole pool's capacity) down; every shared lock recovers from
        // poisoning via `into_inner`. The panicking request's *session*,
        // however, may have been left half-mutated (e.g. mid-maintenance
        // arena remap), so it is quarantined: unloaded from the registry
        // so later requests fail loudly instead of serving corrupt state.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| handle_op(shared, &job.op)))
            .unwrap_or_else(|panic| {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".to_string());
                let quarantined = job
                    .op
                    .session_id()
                    .and_then(|id| shared.registry.remove(id).map(|_| id));
                match quarantined {
                    Some(id) => Err((
                        ErrorCode::Internal,
                        format!("handler panicked: {what}; session `{id}` quarantined"),
                    )),
                    None => Err((ErrorCode::Internal, format!("handler panicked: {what}"))),
                }
            });
        let streaming = matches!(
            &job.op,
            Op::Sweep { stream: true, .. } | Op::Cause { stream: true, .. }
        );
        match result {
            Ok(doc) if streaming => send_streamed(&job.out, job.id, &doc),
            Ok(doc) => job.out.send(&Response::ok(job.id, doc)),
            Err((code, message)) => job.out.send(&Response::error(job.id, code, message)),
        }
        // `job` drops here: the ticket marks the connection quiescent
        // (after the response is buffered) and any admission slot frees.
    }
}

/// Splits a result document at `size`-byte boundaries, never inside a
/// UTF-8 character.
fn stream_chunks(doc: &str, size: usize) -> Vec<&str> {
    // Floor of 4 so a multi-byte character can never stall the cut
    // below 1 (a UTF-8 scalar is at most 4 bytes).
    let size = size.max(4);
    let mut parts = Vec::with_capacity(doc.len() / size + 1);
    let mut rest = doc;
    while rest.len() > size {
        let mut cut = size;
        while !rest.is_char_boundary(cut) {
            cut -= 1;
        }
        let (head, tail) = rest.split_at(cut);
        parts.push(head);
        rest = tail;
    }
    parts.push(rest);
    parts
}

/// Delivers a large result as `begin`/`chunk`/`end` frames sharing the
/// request id. Each frame is a normal ok-response whose result carries
/// a `"stream"` tag; chunks are 1-based and the concatenated `part`s
/// reproduce the unstreamed document byte-for-byte. Flow control is the
/// connection's ordinary output buffer — the worker stalls between
/// chunks while the client catches up, and aborts if the connection
/// dies mid-stream.
fn send_streamed(out: &ConnOut, id: Option<u64>, doc: &str) {
    let parts = stream_chunks(doc, STREAM_CHUNK_BYTES);
    out.send(&Response::ok(
        id,
        format!(
            "{{\"stream\":\"begin\",\"chunks\":{},\"bytes\":{}}}",
            parts.len(),
            doc.len()
        ),
    ));
    for (seq, part) in parts.iter().enumerate() {
        if out.is_dead() {
            return;
        }
        out.send(&Response::ok(
            id,
            format!(
                "{{\"stream\":\"chunk\",\"seq\":{},\"part\":{}}}",
                seq + 1,
                json_str(part)
            ),
        ));
    }
    out.send(&Response::ok(
        id,
        format!("{{\"stream\":\"end\",\"chunks\":{}}}", parts.len()),
    ));
}

// ---------------------------------------------------------------------------
// Op handlers.
// ---------------------------------------------------------------------------

type OpError = (ErrorCode, String);

fn eval_error(e: &BflError) -> OpError {
    let code = match e {
        BflError::Internal { .. } => ErrorCode::Internal,
        _ => ErrorCode::EvalError,
    };
    (code, e.to_string())
}

fn handle_op(shared: &Shared, op: &Op) -> Result<String, OpError> {
    match op {
        Op::Load { model, options } => handle_load(shared, model, options),
        Op::Prepare { session, query } => {
            let entry = session_entry(shared, session)?;
            let q = bfl_core::parser::parse_query(query)
                .map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            let prepared = entry.session.prepare(&q).map_err(|e| eval_error(&e))?;
            let explain = prepared.explain().to_json();
            let (plan_id, _) = entry.add_plan(prepared);
            Ok(format!(
                "{{\"session\":{},\"plan\":{},\"explain\":{explain}}}",
                json_str(&entry.id),
                json_str(&plan_id)
            ))
        }
        Op::Check { session, query } => {
            let entry = session_entry(shared, session)?;
            let spec = Spec::parse(query).map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            if spec.is_empty() {
                return Err((
                    ErrorCode::QueryError,
                    "the spec contains no questions".to_string(),
                ));
            }
            let report = entry.session.run(&spec).map_err(|e| eval_error(&e))?;
            Ok(report.to_json())
        }
        Op::Eval {
            session,
            plan,
            scenario,
        } => {
            let entry = session_entry(shared, session)?;
            let prepared = plan_of(&entry, plan)?;
            let scenario = parse_scenario(scenario)?;
            let outcome = prepared.eval(&scenario).map_err(|e| eval_error(&e))?;
            Ok(json_outcome(prepared.tree(), &outcome))
        }
        Op::Cause {
            session,
            plan,
            scenario,
            ..
        } => {
            let entry = session_entry(shared, session)?;
            let prepared = plan_of(&entry, plan)?;
            let scenario = parse_scenario(scenario)?;
            let outcome = prepared.cause(&scenario).map_err(|e| eval_error(&e))?;
            Ok(json_outcome(prepared.tree(), &outcome))
        }
        Op::Sweep {
            session,
            plan,
            scenarios,
            ..
        } => {
            let entry = session_entry(shared, session)?;
            let prepared = plan_of(&entry, plan)?;
            let set = ScenarioSet::parse(scenarios)
                .map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            if set.is_empty() {
                return Err((
                    ErrorCode::QueryError,
                    "the scenario set is empty".to_string(),
                ));
            }
            let report = prepared.sweep(&set).map_err(|e| eval_error(&e))?;
            Ok(report.to_json())
        }
        Op::Prob {
            session,
            target,
            options,
        } => handle_prob(shared, session, target, options),
        Op::Importance { session, formula } => {
            let entry = session_entry(shared, session)?;
            let phi = bfl_core::parser::parse_formula(formula)
                .map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            let rows = entry
                .session
                .rank_events(&phi)
                .map_err(|e| eval_error(&e))?;
            Ok(format!(
                "{{\"formula\":{},\"importance\":{}}}",
                json_str(formula),
                json_importance(&rows)
            ))
        }
        Op::Explain { session, plan } => {
            let entry = session_entry(shared, session)?;
            let prepared = plan_of(&entry, plan)?;
            Ok(prepared.explain().to_json())
        }
        Op::Stats { session } => match session {
            None => Ok(global_stats(shared)),
            Some(id) => {
                let entry = session_entry(shared, id)?;
                Ok(session_stats(&entry))
            }
        },
        Op::Maintain { session } => {
            let entry = session_entry(shared, session)?;
            let report = entry.session.maintain();
            let totals = entry.session.maintenance_stats();
            Ok(format!(
                "{{\"session\":{},\"report\":{},\"totals\":{{\"gc_runs\":{},\"sift_runs\":{},\"nodes_collected\":{},\"swaps\":{},\"audits_run\":{},\"audit_violations\":{}}}}}",
                json_str(&entry.id),
                maintenance_json(&report),
                totals.gc_runs,
                totals.sift_runs,
                totals.nodes_collected,
                totals.swaps,
                totals.audits_run,
                totals.audit_violations
            ))
        }
        Op::Lint { session, spec } => {
            let entry = session_entry(shared, session)?;
            let diagnostics = match spec {
                None => entry.session.lint(),
                Some(source) => {
                    let spec =
                        Spec::parse(source).map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
                    entry.session.lint_spec(&spec)
                }
            };
            Ok(format!(
                "{{\"session\":{},\"lint\":{}}}",
                json_str(&entry.id),
                bfl_core::lint::to_json(&diagnostics)
            ))
        }
        Op::Unload { session } => {
            let entry = shared.registry.remove(session).ok_or_else(|| {
                (
                    ErrorCode::UnknownSession,
                    format!("no session `{session}` is loaded"),
                )
            })?;
            Ok(format!(
                "{{\"unloaded\":{},\"plans\":{}}}",
                json_str(&entry.id),
                entry.plan_count()
            ))
        }
        // Intercepted by the worker loop before dispatch; reaching this
        // arm is a dispatch bug, not a servable request.
        Op::Shutdown => Err((
            ErrorCode::Internal,
            "shutdown must be handled by the worker loop".to_string(),
        )),
    }
}

fn session_entry(shared: &Shared, id: &str) -> Result<Arc<SessionEntry>, OpError> {
    shared.registry.get(id).ok_or_else(|| {
        (
            ErrorCode::UnknownSession,
            format!("no session `{id}` is loaded"),
        )
    })
}

fn plan_of(entry: &SessionEntry, id: &str) -> Result<Arc<bfl_core::PreparedQuery>, OpError> {
    entry.plan(id).ok_or_else(|| {
        (
            ErrorCode::UnknownPlan,
            format!("no plan `{id}` in session `{}`", entry.id),
        )
    })
}

fn parse_scenario(text: &str) -> Result<Scenario, OpError> {
    if text.trim().is_empty() {
        return Ok(Scenario::new());
    }
    Scenario::parse(text).map_err(|e| (ErrorCode::QueryError, e.to_string()))
}

fn handle_load(shared: &Shared, model: &str, options: &SessionOptions) -> Result<String, OpError> {
    let parsed = galileo::parse(model).map_err(|e| (ErrorCode::ModelError, e.to_string()))?;
    let has_intervals = parsed.has_intervals();
    let mut builder = AnalysisSession::builder().probabilities(parsed.probabilities);
    if has_intervals {
        builder = builder.intervals(parsed.intervals);
    }
    if let Some(ordering) = options.ordering {
        builder = builder.ordering(ordering);
    }
    if let Some(scope) = options.scope {
        builder = builder.minimality_scope(scope);
    }
    if let Some(backend) = options.backend {
        builder = builder.backend(backend);
    }
    if let Some(limit) = options.witness_limit {
        builder = builder.witness_limit(limit as usize);
    }
    if let Some(reorder) = options.reorder {
        builder = builder.reorder(reorder);
    }
    if let Some(gc) = options.gc {
        builder = builder.gc(gc);
    }
    let session = builder.build(parsed.tree);
    let tree_name = session.tree().name(session.tree().top()).to_string();
    let (basic, gates) = (
        session.tree().num_basic_events(),
        session.tree().num_gates(),
    );
    let entry = shared.registry.insert(session);
    Ok(format!(
        "{{\"session\":{},\"tree\":{},\"basic_events\":{basic},\"gates\":{gates}}}",
        json_str(&entry.id),
        json_str(&tree_name)
    ))
}

/// Renders the value fields of a `prob` response after the `head`
/// (`"query":…` / `"formula":…`). Exact answers keep the pre-method
/// `"probability":p` shape byte-for-byte; interval and Monte Carlo
/// answers carry `"interval"` / `"estimate"` plus a `"method"` tag.
fn prob_value_json(head: &str, value: Option<&ProbValue>, method: Method) -> String {
    let mut out = format!("{{{head}");
    match value {
        Some(ProbValue::Exact(p)) => out.push_str(&format!(",\"probability\":{p}")),
        Some(ProbValue::Interval(iv)) => out.push_str(&format!(
            ",\"probability\":null,\"interval\":{},\"method\":\"interval\"",
            json_interval(iv)
        )),
        Some(ProbValue::Estimate(e)) => out.push_str(&format!(
            ",\"probability\":null,\"estimate\":{},\"method\":\"mc\"",
            json_estimate(e)
        )),
        None => {
            out.push_str(",\"probability\":null");
            if !matches!(method, Method::Exact) {
                out.push_str(&format!(",\"method\":{}", json_str(method.name())));
            }
        }
    }
    out.push('}');
    out
}

fn handle_prob(
    shared: &Shared,
    session: &str,
    target: &ProbTarget,
    options: &ProbOptions,
) -> Result<String, OpError> {
    let entry = session_entry(shared, session)?;
    // Parse-time validation makes this infallible for queued requests;
    // programmatic `Op` values still get the structured error.
    let method = options.resolve().map_err(|e| (ErrorCode::BadField, e))?;
    let effective = method.unwrap_or_else(|| entry.session.method());
    match target {
        ProbTarget::Plan { plan, scenario } => {
            let prepared = plan_of(&entry, plan)?;
            let scenario = parse_scenario(scenario.as_deref().unwrap_or(""))?;
            let head = format!("\"query\":{}", json_str(prepared.source()));
            match prepared.probability_value(&scenario, method) {
                Ok(v) => Ok(prob_value_json(&head, v.as_ref(), effective)),
                // A zero-probability condition is a well-defined "no
                // answer", matching the CLI and the sweep outcomes.
                Err(BflError::DivisionByZero { .. }) => Ok(prob_value_json(&head, None, effective)),
                Err(e) => Err(eval_error(&e)),
            }
        }
        ProbTarget::Formula { formula, given } => {
            let phi = bfl_core::parser::parse_formula(formula)
                .map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            let given = match given {
                None => None,
                Some(g) => Some(
                    bfl_core::parser::parse_formula(g)
                        .map_err(|e| (ErrorCode::QueryError, e.to_string()))?,
                ),
            };
            let value = entry
                .session
                .probability_value(&phi, given.as_ref(), method)
                .map_err(|e| eval_error(&e))?;
            let head = format!("\"formula\":{}", json_str(formula));
            Ok(prob_value_json(&head, value.as_ref(), effective))
        }
    }
}

fn json_opt_usize(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn global_stats(shared: &Shared) -> String {
    let ids: Vec<String> = shared
        .registry
        .ids()
        .iter()
        .map(|id| json_str(id))
        .collect();
    let c = &shared.counters;
    format!(
        "{{\"sessions\":[{}],\"workers\":{},\"queue_capacity\":{},\"queue_depth\":{},\"shards\":{},\"connections\":{{\"open\":{},\"peak\":{},\"max\":{}}},\"counters\":{{\"accept_errors\":{},\"overload_rejects\":{},\"idle_reaped\":{},\"admission_rejects\":{},\"evictions\":{}}},\"limits\":{{\"max_sessions\":{},\"session_inflight\":{},\"idle_timeout_ms\":{}}}}}",
        ids.join(","),
        shared.workers,
        shared.queue_capacity,
        shared.queue.len(),
        shared.shard_count,
        c.open_connections.load(Ordering::Acquire),
        c.peak_connections.load(Ordering::Acquire),
        shared.max_connections,
        c.accept_errors.load(Ordering::Relaxed),
        c.overload_rejects.load(Ordering::Relaxed),
        c.idle_reaped.load(Ordering::Relaxed),
        c.admission_rejects.load(Ordering::Relaxed),
        shared.registry.evictions(),
        json_opt_usize(shared.registry.max_sessions()),
        json_opt_usize(shared.session_inflight),
        shared
            .idle_timeout
            .map_or_else(|| "null".to_string(), |d| d.as_millis().to_string())
    )
}

fn session_stats(entry: &SessionEntry) -> String {
    let stats = entry.session.stats();
    let m = entry.session.maintenance_stats();
    let mut plans = String::new();
    for (id, plan) in entry.plans() {
        if !plans.is_empty() {
            plans.push(',');
        }
        let p = plan.stats();
        plans.push_str(&format!(
            "{}:{{\"query\":{},\"evals\":{},\"memo_hits\":{},\"memo_misses\":{},\"distinct_scenarios\":{}}}",
            json_str(&id),
            json_str(plan.source()),
            p.evals,
            p.memo_hits,
            p.memo_misses,
            p.distinct_scenarios
        ));
    }
    let tree_name = entry.session.tree().name(entry.session.tree().top());
    let sampler = entry.session.sampler_stats();
    format!(
        "{{\"session\":{},\"tree\":{},\"stats\":{},\"maintenance\":{{\"gc_runs\":{},\"sift_runs\":{},\"nodes_collected\":{},\"swaps\":{},\"audits_run\":{},\"audit_violations\":{}}},\"sampler\":{{\"runs\":{},\"samples\":{}}},\"plans\":{{{plans}}}}}",
        json_str(&entry.id),
        json_str(tree_name),
        json_stats(&stats),
        m.gc_runs,
        m.sift_runs,
        m.nodes_collected,
        m.swaps,
        m.audits_run,
        m.audit_violations,
        sampler.runs,
        sampler.samples
    )
}

fn maintenance_json(m: &MaintenanceReport) -> String {
    let gc = match m.gc {
        Some(gc) => format!(
            "{{\"arena_before\":{},\"arena_after\":{},\"collected\":{}}}",
            gc.arena_before, gc.arena_after, gc.collected
        ),
        None => "null".to_string(),
    };
    let sift = match m.sift {
        Some(s) => format!(
            "{{\"live_before\":{},\"live_after\":{},\"swaps\":{},\"blocks_sifted\":{}}}",
            s.live_before, s.live_after, s.swaps, s.blocks_sifted
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"live_before\":{},\"live_after\":{},\"gc\":{gc},\"sift\":{sift}}}",
        m.live_before, m.live_after
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn stream_chunks_reassemble_byte_identically() {
        let doc = "a".repeat(200_000);
        let parts = stream_chunks(&doc, STREAM_CHUNK_BYTES);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.concat(), doc);
        // Every chunk but the last is exactly the chunk size for pure
        // ASCII documents.
        assert!(parts[..3].iter().all(|p| p.len() == STREAM_CHUNK_BYTES));
    }

    #[test]
    fn stream_chunks_never_split_inside_a_character() {
        // Multi-byte characters straddling the cut must move the
        // boundary back, and a tiny chunk size must not loop forever
        // (the regression this test guards).
        let doc = "é".repeat(1000);
        for size in [1usize, 2, 3, 4, 5, 7, 64] {
            let parts = stream_chunks(&doc, size);
            assert_eq!(parts.concat(), doc, "size {size}");
            assert!(parts
                .iter()
                .all(|p| std::str::from_utf8(p.as_bytes()).is_ok()));
        }
        // Empty documents still produce one (empty) chunk.
        assert_eq!(stream_chunks("", 8), vec![""]);
    }
}
