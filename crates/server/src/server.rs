//! The concurrent analysis server: TCP acceptor, connection readers, a
//! fixed worker pool over a bounded job queue, and the op handlers.
//!
//! ## Threading model
//!
//! * **acceptor** — one thread accepting connections;
//! * **readers** — one lightweight thread per connection, parsing lines
//!   into jobs; they never run analysis, only enqueue (or answer
//!   `busy`/`shutting_down`/`oversized`/parse errors immediately);
//! * **workers** — a fixed pool of `workers` threads popping jobs off
//!   one bounded [`BoundedQueue`]; all analysis runs here, over the
//!   shared [`Registry`].
//!
//! Backpressure is explicit: a full queue answers `busy` instead of
//! buffering without bound. Graceful shutdown (`shutdown` op or
//! [`ServerHandle::shutdown`]) stops intake, **drains** every job
//! already accepted — no lost responses — and then joins the pool.
//!
//! ## Sharing
//!
//! Sessions and plans live in the [`Registry`] behind `Arc`s, so every
//! connection shares one `AnalysisSession` per model and one
//! `PreparedQuery` (with its scenario/probability memos) per plan id:
//! a scenario any connection has evaluated is a pure cache lookup for
//! all of them.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bfl_core::engine::{AnalysisSession, MaintenanceReport};
use bfl_core::error::BflError;
use bfl_core::report::{
    json_estimate, json_importance, json_interval, json_outcome, json_stats, json_str, Spec,
};
use bfl_core::scenario::{Scenario, ScenarioSet};
use bfl_core::uncertainty::{Method, ProbValue};
use bfl_fault_tree::galileo;

use crate::protocol::{ErrorCode, Op, ProbOptions, ProbTarget, Request, Response, SessionOptions};
use crate::queue::{BoundedQueue, TryPushError};
use crate::registry::{Registry, SessionEntry};

/// Server configuration; every field has a serving-friendly default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads (analysis parallelism).
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue answers `busy`.
    pub queue_capacity: usize,
    /// Maximum accepted request-line length in bytes; longer lines
    /// answer `oversized` (and are discarded without buffering).
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_capacity: 64,
            max_line_bytes: 4 << 20,
        }
    }
}

/// Shared state of one running server.
#[derive(Debug)]
struct Shared {
    registry: Registry,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    workers: usize,
    queue_capacity: usize,
    max_line_bytes: usize,
}

/// One enqueued request.
#[derive(Debug)]
struct Job {
    id: Option<u64>,
    op: Op,
    conn: Arc<ConnWriter>,
}

/// The write half of a connection, shared by the reader (immediate
/// errors) and every worker answering its jobs.
///
/// Writes carry a timeout (set at accept time) and the first failure
/// marks the connection dead: a client that stops reading its socket
/// can stall a worker for at most one timeout, never pin the pool.
#[derive(Debug)]
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ConnWriter {
    fn send(&self, response: &Response) {
        if self.dead.load(Ordering::Acquire) {
            return;
        }
        let mut line = response.to_json_line();
        line.push('\n');
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        // A vanished (or wedged — write timeout) client is not a server
        // error; drop its responses from here on.
        if stream.write_all(line.as_bytes()).is_err() || stream.flush().is_err() {
            self.dead.store(true, Ordering::Release);
        }
    }
}

/// The server entry point.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds the listener and starts the acceptor + worker threads.
    /// Returns immediately; use the handle to learn the bound address
    /// and to wait or shut down.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is unavailable.
    pub fn bind(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: Registry::new(),
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            shutdown: AtomicBool::new(false),
            addr,
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_line_bytes: config.max_line_bytes.max(1024),
        });
        let mut workers = Vec::with_capacity(shared.workers);
        for i in 0..shared.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bfl-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("bfl-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, &listener))?
        };
        Ok(ServerHandle {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// A running server: bound address plus join/shutdown control.
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until the server stops (a client sent `shutdown`), then
    /// joins every worker — all accepted requests have been answered
    /// when this returns.
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Initiates a graceful shutdown programmatically (equivalent to
    /// the `shutdown` op): stops intake, drains the queue, joins.
    pub fn shutdown(mut self) {
        begin_shutdown(&self.shared);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Flags the shutdown, closes the queue (poppers drain it) and pokes
/// the acceptor awake so it observes the flag. The poke targets the
/// loopback of the *bound family* — an IPv6 listener may not accept
/// IPv4-mapped connections.
fn begin_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    shared.queue.close();
    let poke = if shared.addr.ip().is_unspecified() {
        match shared.addr {
            SocketAddr::V4(_) => SocketAddr::from(([127, 0, 0, 1], shared.addr.port())),
            SocketAddr::V6(_) => {
                SocketAddr::from((std::net::Ipv6Addr::LOCALHOST, shared.addr.port()))
            }
        }
    } else {
        shared.addr
    };
    let _ = TcpStream::connect(poke);
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are one small line each; Nagle + delayed ACK would
        // add ~40 ms to every round trip.
        let _ = stream.set_nodelay(true);
        // Bound the damage a non-reading client can do: a worker blocks
        // in a response write for at most this long, after which the
        // connection is marked dead (see `ConnWriter`).
        let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(10)));
        let shared = Arc::clone(shared);
        // Readers are deliberately detached: they die with their
        // connection (EOF) and hold only Arcs.
        let _ = std::thread::Builder::new()
            .name("bfl-conn".to_string())
            .spawn(move || serve_connection(&shared, stream));
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The line exceeded the limit; it was discarded up to its newline.
    Oversized,
    /// The peer closed the connection.
    Eof,
}

/// Reads one `\n`-terminated line into `buf`, never buffering more than
/// `max` bytes: an overlong line is discarded (streamed past) and
/// reported as [`LineRead::Oversized`], keeping the connection usable.
fn read_bounded_line(
    reader: &mut impl BufRead,
    max: usize,
    buf: &mut Vec<u8>,
) -> io::Result<LineRead> {
    buf.clear();
    let mut oversized = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            // EOF. A trailing unterminated fragment still parses as a
            // line (netcat without a final newline).
            return Ok(if oversized {
                LineRead::Oversized
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            if !oversized && buf.len() + pos <= max {
                buf.extend_from_slice(&available[..pos]);
            } else {
                oversized = true;
            }
            reader.consume(pos + 1);
            return Ok(if oversized {
                LineRead::Oversized
            } else {
                LineRead::Line
            });
        }
        if !oversized {
            if buf.len() + available.len() > max {
                oversized = true;
                buf.clear();
            } else {
                buf.extend_from_slice(available);
            }
        }
        let n = available.len();
        reader.consume(n);
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ConnWriter {
        stream: Mutex::new(write_half),
        dead: AtomicBool::new(false),
    });
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        match read_bounded_line(&mut reader, shared.max_line_bytes, &mut buf) {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::Oversized) => {
                conn.send(&Response::error(
                    None,
                    ErrorCode::Oversized,
                    format!(
                        "request line exceeds the {} byte limit",
                        shared.max_line_bytes
                    ),
                ));
            }
            Ok(LineRead::Line) => {
                let Ok(text) = std::str::from_utf8(&buf) else {
                    conn.send(&Response::error(
                        None,
                        ErrorCode::ParseError,
                        "request line is not valid UTF-8",
                    ));
                    continue;
                };
                let line = text.trim();
                if line.is_empty() {
                    continue;
                }
                let request = match Request::parse(line) {
                    Ok(request) => request,
                    Err((id, code, message)) => {
                        conn.send(&Response::error(id, code, message));
                        continue;
                    }
                };
                if shared.shutdown.load(Ordering::Acquire) {
                    conn.send(&Response::error(
                        request.id,
                        ErrorCode::ShuttingDown,
                        "server is draining",
                    ));
                    continue;
                }
                let job = Job {
                    id: request.id,
                    op: request.op,
                    conn: Arc::clone(&conn),
                };
                match shared.queue.try_push(job) {
                    Ok(()) => {}
                    Err(TryPushError::Full(job)) => job.conn.send(&Response::error(
                        job.id,
                        ErrorCode::Busy,
                        "request queue is full, retry later",
                    )),
                    Err(TryPushError::Closed(job)) => job.conn.send(&Response::error(
                        job.id,
                        ErrorCode::ShuttingDown,
                        "server is draining",
                    )),
                }
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if matches!(job.op, Op::Shutdown) {
            // Flag first so readers reject new work, answer, then close
            // the queue: poppers drain what was already accepted.
            shared.shutdown.store(true, Ordering::Release);
            job.conn.send(&Response::ok(job.id, "{\"stopping\":true}"));
            begin_shutdown(shared);
            continue;
        }
        // A handler panic must never take the worker (and with it the
        // whole pool's capacity) down; every shared lock recovers from
        // poisoning via `into_inner`. The panicking request's *session*,
        // however, may have been left half-mutated (e.g. mid-maintenance
        // arena remap), so it is quarantined: unloaded from the registry
        // so later requests fail loudly instead of serving corrupt state.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| handle_op(shared, &job.op)))
            .unwrap_or_else(|panic| {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".to_string());
                let quarantined = job
                    .op
                    .session_id()
                    .and_then(|id| shared.registry.remove(id).map(|_| id));
                match quarantined {
                    Some(id) => Err((
                        ErrorCode::Internal,
                        format!("handler panicked: {what}; session `{id}` quarantined"),
                    )),
                    None => Err((ErrorCode::Internal, format!("handler panicked: {what}"))),
                }
            });
        let response = match result {
            Ok(result) => Response::ok(job.id, result),
            Err((code, message)) => Response::error(job.id, code, message),
        };
        job.conn.send(&response);
    }
}

// ---------------------------------------------------------------------------
// Op handlers.
// ---------------------------------------------------------------------------

type OpError = (ErrorCode, String);

fn eval_error(e: &BflError) -> OpError {
    let code = match e {
        BflError::Internal { .. } => ErrorCode::Internal,
        _ => ErrorCode::EvalError,
    };
    (code, e.to_string())
}

fn handle_op(shared: &Shared, op: &Op) -> Result<String, OpError> {
    match op {
        Op::Load { model, options } => handle_load(shared, model, options),
        Op::Prepare { session, query } => {
            let entry = session_entry(shared, session)?;
            let q = bfl_core::parser::parse_query(query)
                .map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            let prepared = entry.session.prepare(&q).map_err(|e| eval_error(&e))?;
            let explain = prepared.explain().to_json();
            let (plan_id, _) = entry.add_plan(prepared);
            Ok(format!(
                "{{\"session\":{},\"plan\":{},\"explain\":{explain}}}",
                json_str(&entry.id),
                json_str(&plan_id)
            ))
        }
        Op::Check { session, query } => {
            let entry = session_entry(shared, session)?;
            let spec = Spec::parse(query).map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            if spec.is_empty() {
                return Err((
                    ErrorCode::QueryError,
                    "the spec contains no questions".to_string(),
                ));
            }
            let report = entry.session.run(&spec).map_err(|e| eval_error(&e))?;
            Ok(report.to_json())
        }
        Op::Eval {
            session,
            plan,
            scenario,
        } => {
            let entry = session_entry(shared, session)?;
            let prepared = plan_of(&entry, plan)?;
            let scenario = parse_scenario(scenario)?;
            let outcome = prepared.eval(&scenario).map_err(|e| eval_error(&e))?;
            Ok(json_outcome(prepared.tree(), &outcome))
        }
        Op::Cause {
            session,
            plan,
            scenario,
        } => {
            let entry = session_entry(shared, session)?;
            let prepared = plan_of(&entry, plan)?;
            let scenario = parse_scenario(scenario)?;
            let outcome = prepared.cause(&scenario).map_err(|e| eval_error(&e))?;
            Ok(json_outcome(prepared.tree(), &outcome))
        }
        Op::Sweep {
            session,
            plan,
            scenarios,
        } => {
            let entry = session_entry(shared, session)?;
            let prepared = plan_of(&entry, plan)?;
            let set = ScenarioSet::parse(scenarios)
                .map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            if set.is_empty() {
                return Err((
                    ErrorCode::QueryError,
                    "the scenario set is empty".to_string(),
                ));
            }
            let report = prepared.sweep(&set).map_err(|e| eval_error(&e))?;
            Ok(report.to_json())
        }
        Op::Prob {
            session,
            target,
            options,
        } => handle_prob(shared, session, target, options),
        Op::Importance { session, formula } => {
            let entry = session_entry(shared, session)?;
            let phi = bfl_core::parser::parse_formula(formula)
                .map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            let rows = entry
                .session
                .rank_events(&phi)
                .map_err(|e| eval_error(&e))?;
            Ok(format!(
                "{{\"formula\":{},\"importance\":{}}}",
                json_str(formula),
                json_importance(&rows)
            ))
        }
        Op::Explain { session, plan } => {
            let entry = session_entry(shared, session)?;
            let prepared = plan_of(&entry, plan)?;
            Ok(prepared.explain().to_json())
        }
        Op::Stats { session } => match session {
            None => Ok(global_stats(shared)),
            Some(id) => {
                let entry = session_entry(shared, id)?;
                Ok(session_stats(&entry))
            }
        },
        Op::Maintain { session } => {
            let entry = session_entry(shared, session)?;
            let report = entry.session.maintain();
            let totals = entry.session.maintenance_stats();
            Ok(format!(
                "{{\"session\":{},\"report\":{},\"totals\":{{\"gc_runs\":{},\"sift_runs\":{},\"nodes_collected\":{},\"swaps\":{},\"audits_run\":{},\"audit_violations\":{}}}}}",
                json_str(&entry.id),
                maintenance_json(&report),
                totals.gc_runs,
                totals.sift_runs,
                totals.nodes_collected,
                totals.swaps,
                totals.audits_run,
                totals.audit_violations
            ))
        }
        Op::Lint { session, spec } => {
            let entry = session_entry(shared, session)?;
            let diagnostics = match spec {
                None => entry.session.lint(),
                Some(source) => {
                    let spec =
                        Spec::parse(source).map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
                    entry.session.lint_spec(&spec)
                }
            };
            Ok(format!(
                "{{\"session\":{},\"lint\":{}}}",
                json_str(&entry.id),
                bfl_core::lint::to_json(&diagnostics)
            ))
        }
        Op::Unload { session } => {
            let entry = shared.registry.remove(session).ok_or_else(|| {
                (
                    ErrorCode::UnknownSession,
                    format!("no session `{session}` is loaded"),
                )
            })?;
            Ok(format!(
                "{{\"unloaded\":{},\"plans\":{}}}",
                json_str(&entry.id),
                entry.plan_count()
            ))
        }
        // Intercepted by the worker loop before dispatch; reaching this
        // arm is a dispatch bug, not a servable request.
        Op::Shutdown => Err((
            ErrorCode::Internal,
            "shutdown must be handled by the worker loop".to_string(),
        )),
    }
}

fn session_entry(shared: &Shared, id: &str) -> Result<Arc<SessionEntry>, OpError> {
    shared.registry.get(id).ok_or_else(|| {
        (
            ErrorCode::UnknownSession,
            format!("no session `{id}` is loaded"),
        )
    })
}

fn plan_of(entry: &SessionEntry, id: &str) -> Result<Arc<bfl_core::PreparedQuery>, OpError> {
    entry.plan(id).ok_or_else(|| {
        (
            ErrorCode::UnknownPlan,
            format!("no plan `{id}` in session `{}`", entry.id),
        )
    })
}

fn parse_scenario(text: &str) -> Result<Scenario, OpError> {
    if text.trim().is_empty() {
        return Ok(Scenario::new());
    }
    Scenario::parse(text).map_err(|e| (ErrorCode::QueryError, e.to_string()))
}

fn handle_load(shared: &Shared, model: &str, options: &SessionOptions) -> Result<String, OpError> {
    let parsed = galileo::parse(model).map_err(|e| (ErrorCode::ModelError, e.to_string()))?;
    let has_intervals = parsed.has_intervals();
    let mut builder = AnalysisSession::builder().probabilities(parsed.probabilities);
    if has_intervals {
        builder = builder.intervals(parsed.intervals);
    }
    if let Some(ordering) = options.ordering {
        builder = builder.ordering(ordering);
    }
    if let Some(scope) = options.scope {
        builder = builder.minimality_scope(scope);
    }
    if let Some(backend) = options.backend {
        builder = builder.backend(backend);
    }
    if let Some(limit) = options.witness_limit {
        builder = builder.witness_limit(limit as usize);
    }
    if let Some(reorder) = options.reorder {
        builder = builder.reorder(reorder);
    }
    if let Some(gc) = options.gc {
        builder = builder.gc(gc);
    }
    let session = builder.build(parsed.tree);
    let tree_name = session.tree().name(session.tree().top()).to_string();
    let (basic, gates) = (
        session.tree().num_basic_events(),
        session.tree().num_gates(),
    );
    let entry = shared.registry.insert(session);
    Ok(format!(
        "{{\"session\":{},\"tree\":{},\"basic_events\":{basic},\"gates\":{gates}}}",
        json_str(&entry.id),
        json_str(&tree_name)
    ))
}

/// Renders the value fields of a `prob` response after the `head`
/// (`"query":…` / `"formula":…`). Exact answers keep the pre-method
/// `"probability":p` shape byte-for-byte; interval and Monte Carlo
/// answers carry `"interval"` / `"estimate"` plus a `"method"` tag.
fn prob_value_json(head: &str, value: Option<&ProbValue>, method: Method) -> String {
    let mut out = format!("{{{head}");
    match value {
        Some(ProbValue::Exact(p)) => out.push_str(&format!(",\"probability\":{p}")),
        Some(ProbValue::Interval(iv)) => out.push_str(&format!(
            ",\"probability\":null,\"interval\":{},\"method\":\"interval\"",
            json_interval(iv)
        )),
        Some(ProbValue::Estimate(e)) => out.push_str(&format!(
            ",\"probability\":null,\"estimate\":{},\"method\":\"mc\"",
            json_estimate(e)
        )),
        None => {
            out.push_str(",\"probability\":null");
            if !matches!(method, Method::Exact) {
                out.push_str(&format!(",\"method\":{}", json_str(method.name())));
            }
        }
    }
    out.push('}');
    out
}

fn handle_prob(
    shared: &Shared,
    session: &str,
    target: &ProbTarget,
    options: &ProbOptions,
) -> Result<String, OpError> {
    let entry = session_entry(shared, session)?;
    // Parse-time validation makes this infallible for queued requests;
    // programmatic `Op` values still get the structured error.
    let method = options.resolve().map_err(|e| (ErrorCode::BadField, e))?;
    let effective = method.unwrap_or_else(|| entry.session.method());
    match target {
        ProbTarget::Plan { plan, scenario } => {
            let prepared = plan_of(&entry, plan)?;
            let scenario = parse_scenario(scenario.as_deref().unwrap_or(""))?;
            let head = format!("\"query\":{}", json_str(prepared.source()));
            match prepared.probability_value(&scenario, method) {
                Ok(v) => Ok(prob_value_json(&head, v.as_ref(), effective)),
                // A zero-probability condition is a well-defined "no
                // answer", matching the CLI and the sweep outcomes.
                Err(BflError::DivisionByZero { .. }) => Ok(prob_value_json(&head, None, effective)),
                Err(e) => Err(eval_error(&e)),
            }
        }
        ProbTarget::Formula { formula, given } => {
            let phi = bfl_core::parser::parse_formula(formula)
                .map_err(|e| (ErrorCode::QueryError, e.to_string()))?;
            let given = match given {
                None => None,
                Some(g) => Some(
                    bfl_core::parser::parse_formula(g)
                        .map_err(|e| (ErrorCode::QueryError, e.to_string()))?,
                ),
            };
            let value = entry
                .session
                .probability_value(&phi, given.as_ref(), method)
                .map_err(|e| eval_error(&e))?;
            let head = format!("\"formula\":{}", json_str(formula));
            Ok(prob_value_json(&head, value.as_ref(), effective))
        }
    }
}

fn global_stats(shared: &Shared) -> String {
    let ids: Vec<String> = shared
        .registry
        .ids()
        .iter()
        .map(|id| json_str(id))
        .collect();
    format!(
        "{{\"sessions\":[{}],\"workers\":{},\"queue_capacity\":{},\"queue_depth\":{}}}",
        ids.join(","),
        shared.workers,
        shared.queue_capacity,
        shared.queue.len()
    )
}

fn session_stats(entry: &SessionEntry) -> String {
    let stats = entry.session.stats();
    let m = entry.session.maintenance_stats();
    let mut plans = String::new();
    for (id, plan) in entry.plans() {
        if !plans.is_empty() {
            plans.push(',');
        }
        let p = plan.stats();
        plans.push_str(&format!(
            "{}:{{\"query\":{},\"evals\":{},\"memo_hits\":{},\"memo_misses\":{},\"distinct_scenarios\":{}}}",
            json_str(&id),
            json_str(plan.source()),
            p.evals,
            p.memo_hits,
            p.memo_misses,
            p.distinct_scenarios
        ));
    }
    let tree_name = entry.session.tree().name(entry.session.tree().top());
    let sampler = entry.session.sampler_stats();
    format!(
        "{{\"session\":{},\"tree\":{},\"stats\":{},\"maintenance\":{{\"gc_runs\":{},\"sift_runs\":{},\"nodes_collected\":{},\"swaps\":{},\"audits_run\":{},\"audit_violations\":{}}},\"sampler\":{{\"runs\":{},\"samples\":{}}},\"plans\":{{{plans}}}}}",
        json_str(&entry.id),
        json_str(tree_name),
        json_stats(&stats),
        m.gc_runs,
        m.sift_runs,
        m.nodes_collected,
        m.swaps,
        m.audits_run,
        m.audit_violations,
        sampler.runs,
        sampler.samples
    )
}

fn maintenance_json(m: &MaintenanceReport) -> String {
    let gc = match m.gc {
        Some(gc) => format!(
            "{{\"arena_before\":{},\"arena_after\":{},\"collected\":{}}}",
            gc.arena_before, gc.arena_after, gc.collected
        ),
        None => "null".to_string(),
    };
    let sift = match m.sift {
        Some(s) => format!(
            "{{\"live_before\":{},\"live_after\":{},\"swaps\":{},\"blocks_sifted\":{}}}",
            s.live_before, s.live_after, s.swaps, s.blocks_sifted
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"live_before\":{},\"live_after\":{},\"gc\":{gc},\"sift\":{sift}}}",
        m.live_before, m.live_after
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_line_reader_handles_limits_and_eof() {
        let mut buf = Vec::new();
        // Normal lines.
        let mut r = BufReader::new(Cursor::new(b"hello\nworld".to_vec()));
        assert!(matches!(
            read_bounded_line(&mut r, 16, &mut buf).unwrap(),
            LineRead::Line
        ));
        assert_eq!(buf, b"hello");
        // Unterminated trailing fragment still counts as a line.
        assert!(matches!(
            read_bounded_line(&mut r, 16, &mut buf).unwrap(),
            LineRead::Line
        ));
        assert_eq!(buf, b"world");
        assert!(matches!(
            read_bounded_line(&mut r, 16, &mut buf).unwrap(),
            LineRead::Eof
        ));
        // Oversized line is discarded; the next line still parses.
        let mut r = BufReader::new(Cursor::new(b"xxxxxxxxxxxxxxxxxxxxxx\nok\n".to_vec()));
        assert!(matches!(
            read_bounded_line(&mut r, 8, &mut buf).unwrap(),
            LineRead::Oversized
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 8, &mut buf).unwrap(),
            LineRead::Line
        ));
        assert_eq!(buf, b"ok");
    }

    #[test]
    fn oversized_exactly_at_boundary_is_kept() {
        let mut buf = Vec::new();
        let mut r = BufReader::new(Cursor::new(b"12345678\n".to_vec()));
        assert!(matches!(
            read_bounded_line(&mut r, 8, &mut buf).unwrap(),
            LineRead::Line
        ));
        assert_eq!(buf, b"12345678");
    }
}
