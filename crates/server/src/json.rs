//! A minimal, dependency-free JSON value: parser and writer.
//!
//! The suite renders its reports as JSON already (`bfl_core::report`);
//! what the *server* additionally needs is the other direction — parsing
//! request lines — plus a value type the protocol layer can inspect.
//! [`Json`] is that type, with two properties the protocol tests rely
//! on:
//!
//! * **round-trip fidelity** — objects preserve key order and numbers
//!   keep their original text, so `parse → to_string` reproduces any
//!   document this suite writes byte-identically;
//! * **strictness** — trailing garbage, unterminated strings, bad
//!   escapes and malformed numbers are [`JsonError`]s with a byte
//!   offset, never panics.
//!
//! ```
//! use bfl_server::json::Json;
//! let v = Json::parse(r#"{"op":"load","workers":4}"#)?;
//! assert_eq!(v.get("op").and_then(Json::as_str), Some("load"));
//! assert_eq!(v.to_string(), r#"{"op":"load","workers":4}"#);
//! # Ok::<(), bfl_server::json::JsonError>(())
//! ```

use std::fmt;

/// A parsed JSON value. Numbers keep their source text (see the module
/// docs); objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its original (validated) text.
    Number(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in key order.
    Object(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it was noticed
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A number value from anything `Display`-able as a JSON number
    /// (callers pass Rust integer/float formatting, which is valid
    /// JSON except for non-finite floats — map those to `null` first).
    pub fn number(n: impl fmt::Display) -> Json {
        Json::Number(n.to_string())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset, on any syntax violation.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first occurrence); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The Boolean payload, if this is a Boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Compact rendering with the same escaping rules as
    /// [`bfl_core::report::json_str`] — the property behind byte-exact
    /// round trips of this suite's documents.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => f.write_str(n),
            Json::Str(s) => f.write_str(&bfl_core::report::json_str(s)),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", bfl_core::report::json_str(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Recursion limit for nested arrays/objects: deep enough for any
/// report this suite emits, shallow enough that a hostile request line
/// cannot blow the worker's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-attach the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8 byte"))?;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by `\u` and
        // a low surrogate.
        if (0xD800..=0xDBFF).contains(&first) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u', "expected low surrogate after high surrogate")?;
                let second = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&second) {
                    return Err(self.err("invalid low surrogate"));
                }
                let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a non-zero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        Ok(Json::Number(text.to_string()))
    }
}

/// Length of the UTF-8 sequence introduced by `first`, `None` for
/// continuation/invalid lead bytes.
fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc2..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number("42".into()));
        assert_eq!(
            Json::parse("-1.5e-3").unwrap(),
            Json::Number("-1.5e-3".into())
        );
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn preserves_number_text_and_key_order() {
        let doc = r#"{"b":0.020000000000000004,"a":1e10,"c":[1,2,3]}"#;
        assert_eq!(Json::parse(doc).unwrap().to_string(), doc);
    }

    #[test]
    fn unescapes_and_reescapes() {
        let doc = r#"{"s":"a\"b\\c\nd\te"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd\te"));
        assert_eq!(v.to_string(), doc);
        // Control characters round-trip through the \uXXXX form.
        let ctl = "\"\\u0001\"";
        let v = Json::parse(ctl).unwrap();
        assert_eq!(v.as_str(), Some("\u{1}"));
        assert_eq!(v.to_string(), ctl);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Non-ASCII re-renders raw (same policy as report::json_str).
        assert_eq!(v.to_string(), "\"😀\"");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "-",
            "nulltrailing",
            "{\"a\":1} extra",
            "\"bad \\q escape\"",
            "\"\\ud800 unpaired\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        let ok = format!("{}1{}", "[".repeat(10), "]".repeat(10));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"f":1.5,"b":true,"a":["x"],"s":"y"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("s").unwrap().as_str(), Some("y"));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
