//! The `bfl-server` wire protocol: line-oriented JSON messages.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests carry an optional numeric `"id"`
//! that the response echoes, so clients may pipeline. The full message
//! reference (with a `netcat` transcript) lives in `docs/server.md`;
//! the type-level summary:
//!
//! ```text
//! {"id":1,"op":"load","model":"toplevel T;\n..."}      -> session id
//! {"id":2,"op":"prepare","session":"s1","query":"..."} -> plan id
//! {"id":3,"op":"eval","session":"s1","plan":"p1","scenario":"IW = 1"}
//! {"id":4,"op":"sweep","session":"s1","plan":"p1","scenarios":"..."}
//! {"id":4,"op":"cause","session":"s1","plan":"p1","scenario":"IW = 1"}
//! {"id":5,"op":"check","session":"s1","query":"P1: forall IS => MoT"}
//! {"id":6,"op":"prob","session":"s1","formula":"IWoS","given":"H1"}
//!            (+ optional "method":"exact|interval|mc", "samples",
//!               "seed", "confidence" — the uncertainty engine)
//! {"id":7,"op":"importance","session":"s1","formula":"IWoS"}
//! {"id":8,"op":"explain","session":"s1","plan":"p1"}
//! {"id":9,"op":"stats","session":"s1"}   (session optional)
//! {"id":10,"op":"maintain","session":"s1"}
//! {"id":11,"op":"unload","session":"s1"}
//! {"id":12,"op":"shutdown"}
//! ```
//!
//! Responses are `{"id":N,"ok":true,"result":…}` or
//! `{"id":N,"ok":false,"error":{"code":"…","message":"…"}}`.
//!
//! Serialisation is **canonical**: fixed field order, compact rendering,
//! report-style string escaping. The protocol suite asserts that
//! `serialize → parse → serialize` reproduces every message
//! byte-identically.

use std::fmt;

use bfl_core::engine::ReorderPolicy;
use bfl_core::report::json_str;
use bfl_core::uncertainty::{Method, DEFAULT_MC_CONFIDENCE, DEFAULT_MC_SAMPLES, DEFAULT_MC_SEED};
use bfl_core::MinimalityScope;
use bfl_fault_tree::VariableOrdering;

use crate::json::Json;

/// Machine-readable error classes, carried in the `"code"` field of an
/// error response. `docs/server.md` documents when each is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The line is not a well-formed protocol request (bad JSON, no
    /// object, bad `id`).
    ParseError,
    /// The `"op"` field is missing or names no known operation.
    UnknownOp,
    /// A field the operation requires is absent.
    MissingField,
    /// A field is present but malformed (wrong type, unknown enum name).
    BadField,
    /// The named session is not (or no longer) loaded.
    UnknownSession,
    /// The named plan does not exist in the session.
    UnknownPlan,
    /// The Galileo model failed to parse or validate.
    ModelError,
    /// The BFL query/formula/spec/scenario text failed to parse.
    QueryError,
    /// Evaluation failed (unknown element, missing probabilities, …).
    EvalError,
    /// The bounded request queue is full — back off and retry.
    Busy,
    /// The server is draining after a `shutdown` request.
    ShuttingDown,
    /// The request line exceeded the configured size limit.
    Oversized,
    /// The server is at its connection limit; the connection is closed
    /// after this response.
    Overloaded,
    /// The connection was idle past the configured timeout and is being
    /// closed after this response.
    IdleTimeout,
    /// An engine invariant was violated; the connection survives.
    Internal,
}

impl ErrorCode {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::MissingField => "missing_field",
            ErrorCode::BadField => "bad_field",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::UnknownPlan => "unknown_plan",
            ErrorCode::ModelError => "model_error",
            ErrorCode::QueryError => "query_error",
            ErrorCode::EvalError => "eval_error",
            ErrorCode::Busy => "busy",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire name back into a code.
    pub fn parse(name: &str) -> Option<ErrorCode> {
        Some(match name {
            "parse_error" => ErrorCode::ParseError,
            "unknown_op" => ErrorCode::UnknownOp,
            "missing_field" => ErrorCode::MissingField,
            "bad_field" => ErrorCode::BadField,
            "unknown_session" => ErrorCode::UnknownSession,
            "unknown_plan" => ErrorCode::UnknownPlan,
            "model_error" => ErrorCode::ModelError,
            "query_error" => ErrorCode::QueryError,
            "eval_error" => ErrorCode::EvalError,
            "busy" => ErrorCode::Busy,
            "shutting_down" => ErrorCode::ShuttingDown,
            "oversized" => ErrorCode::Oversized,
            "overloaded" => ErrorCode::Overloaded,
            "idle_timeout" => ErrorCode::IdleTimeout,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A request-shaped failure: the (best-effort) request id plus the code
/// and message that will be sent back.
pub type RequestError = (Option<u64>, ErrorCode, String);

/// Session configuration carried by a `load` request; every knob is
/// optional and defaults to the [`SessionBuilder`] default.
///
/// [`SessionBuilder`]: bfl_core::engine::SessionBuilder
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionOptions {
    /// BDD variable ordering: `dfs` `bfs` `declaration` `bouissou`
    /// `sifted`.
    pub ordering: Option<VariableOrdering>,
    /// Minimality scope: `global` or `support`.
    pub scope: Option<MinimalityScope>,
    /// Cut-set backend: `minsol` `paper` `zdd`.
    pub backend: Option<bfl_core::engine::Backend>,
    /// Witness/counterexample cap per outcome.
    pub witness_limit: Option<u64>,
    /// Dynamic reordering policy: `none` `prepare` `auto` `auto:F`.
    pub reorder: Option<ReorderPolicy>,
    /// Garbage collection at maintenance points.
    pub gc: Option<bool>,
}

/// The probability target of a `prob` request: a compiled plan under a
/// scenario, or an ad-hoc (conditional) formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbTarget {
    /// `P(plan | scenario)` on the compiled diagram.
    Plan {
        /// The plan id.
        plan: String,
        /// Scenario bindings (`A = 1, B = 0`), empty/absent = baseline.
        scenario: Option<String>,
    },
    /// `P(formula [ | given])` through the session.
    Formula {
        /// The formula.
        formula: String,
        /// Optional conditioning formula.
        given: Option<String>,
    },
}

/// Method selection of a `prob` request; every field is optional and
/// the exact wire presence is preserved (canonical serialisation emits
/// exactly the fields that were sent, in `method`, `samples`, `seed`,
/// `confidence` order). [`ProbOptions::resolve`] combines them into a
/// typed [`Method`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProbOptions {
    /// `exact`, `interval` or `mc`; validated at parse time.
    pub method: Option<String>,
    /// `mc`: status vectors to draw.
    pub samples: Option<u64>,
    /// `mc`: base seed; equal `(seed, samples)` reproduce the estimate
    /// bit-for-bit regardless of worker count.
    pub seed: Option<u64>,
    /// `mc`: Wilson confidence level in `(0, 1)`.
    pub confidence: Option<f64>,
}

impl ProbOptions {
    /// Whether any method field was sent at all.
    pub fn is_default(&self) -> bool {
        *self == ProbOptions::default()
    }

    /// Combines the fields into a [`Method`] override (`None` = use the
    /// session default). Sampler fields alone imply `mc`; combined with
    /// an explicit non-`mc` method they are an error.
    ///
    /// # Errors
    ///
    /// A message naming the unknown method or the invalid combination.
    pub fn resolve(&self) -> Result<Option<Method>, String> {
        let sampler = self.samples.is_some() || self.seed.is_some() || self.confidence.is_some();
        let method = match self.method.as_deref() {
            Some(name) => Some(name.parse::<Method>()?),
            None if sampler => Some(Method::mc()),
            None => None,
        };
        match method {
            Some(Method::Mc { .. }) => Ok(Some(Method::Mc {
                samples: self.samples.unwrap_or(DEFAULT_MC_SAMPLES),
                seed: self.seed.unwrap_or(DEFAULT_MC_SEED),
                confidence: self.confidence.unwrap_or(DEFAULT_MC_CONFIDENCE),
            })),
            Some(other) if sampler => Err(format!(
                "`samples`/`seed`/`confidence` apply to method `mc`, not `{other}`"
            )),
            other => Ok(other),
        }
    }
}

/// One protocol operation (the `"op"` field plus its arguments).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Parse a Galileo model and open an [`AnalysisSession`] for it.
    ///
    /// [`AnalysisSession`]: bfl_core::engine::AnalysisSession
    Load {
        /// Galileo source text.
        model: String,
        /// Session configuration.
        options: SessionOptions,
    },
    /// Compile a layer-2 query into a shared `PreparedQuery`.
    Prepare {
        /// Session id.
        session: String,
        /// BFL query source.
        query: String,
    },
    /// Evaluate a spec (one or many lines) through the session.
    Check {
        /// Session id.
        session: String,
        /// Spec text (`label: query` lines, `[A,B] formula` vectors).
        query: String,
    },
    /// Evaluate a compiled plan under one scenario.
    Eval {
        /// Session id.
        session: String,
        /// Plan id.
        plan: String,
        /// Scenario bindings (`A = 1, B = 0`); empty = baseline.
        scenario: String,
    },
    /// Actual causes of a compiled `cause(ϕ, evidence)` plan under one
    /// scenario (extra observational evidence).
    Cause {
        /// Session id.
        session: String,
        /// Plan id (must be a cause plan).
        plan: String,
        /// Scenario bindings (`A = 1, B = 0`); empty = the plan's own
        /// evidence only.
        scenario: String,
        /// Deliver the result as `begin`/`chunk`/`end` stream frames
        /// instead of one response line.
        stream: bool,
    },
    /// Sweep a compiled plan over a scenario-set text.
    Sweep {
        /// Session id.
        session: String,
        /// Plan id.
        plan: String,
        /// Scenario file text (one scenario per line).
        scenarios: String,
        /// Deliver the result as `begin`/`chunk`/`end` stream frames
        /// instead of one response line.
        stream: bool,
    },
    /// Probability of a plan-under-scenario or an ad-hoc formula.
    Prob {
        /// Session id.
        session: String,
        /// What to take the probability of.
        target: ProbTarget,
        /// Method selection (`method`/`samples`/`seed`/`confidence`);
        /// all-absent = the session default.
        options: ProbOptions,
    },
    /// Rank every basic event by quantitative importance.
    Importance {
        /// Session id.
        session: String,
        /// The formula to rank against.
        formula: String,
    },
    /// The compiled plan of a prepared query.
    Explain {
        /// Session id.
        session: String,
        /// Plan id.
        plan: String,
    },
    /// Server-wide (no session) or per-session statistics.
    Stats {
        /// Session id; absent = server-wide.
        session: Option<String>,
    },
    /// Run GC + sifting maintenance over the session now.
    Maintain {
        /// Session id.
        session: String,
    },
    /// Lint the session's model (and optionally a spec) for defects.
    Lint {
        /// Session id.
        session: String,
        /// Spec source to lint against the model; absent = model only.
        spec: Option<String>,
    },
    /// Drop a session (in-flight queries holding it complete safely).
    Unload {
        /// Session id.
        session: String,
    },
    /// Stop accepting work, drain in-flight requests, exit.
    Shutdown,
}

impl Op {
    /// The session the operation targets, when it targets one.
    pub fn session_id(&self) -> Option<&str> {
        match self {
            Op::Load { .. } | Op::Shutdown => None,
            Op::Stats { session } => session.as_deref(),
            Op::Prepare { session, .. }
            | Op::Check { session, .. }
            | Op::Eval { session, .. }
            | Op::Cause { session, .. }
            | Op::Sweep { session, .. }
            | Op::Prob { session, .. }
            | Op::Importance { session, .. }
            | Op::Explain { session, .. }
            | Op::Maintain { session }
            | Op::Lint { session, .. }
            | Op::Unload { session } => Some(session),
        }
    }

    /// The wire name of the operation.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Load { .. } => "load",
            Op::Prepare { .. } => "prepare",
            Op::Check { .. } => "check",
            Op::Eval { .. } => "eval",
            Op::Cause { .. } => "cause",
            Op::Sweep { .. } => "sweep",
            Op::Prob { .. } => "prob",
            Op::Importance { .. } => "importance",
            Op::Explain { .. } => "explain",
            Op::Stats { .. } => "stats",
            Op::Maintain { .. } => "maintain",
            Op::Lint { .. } => "lint",
            Op::Unload { .. } => "unload",
            Op::Shutdown => "shutdown",
        }
    }
}

/// One protocol request: optional id plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response, when present.
    pub id: Option<u64>,
    /// The operation.
    pub op: Op,
}

impl Request {
    /// Wraps an operation without an id.
    pub fn new(op: Op) -> Request {
        Request { id: None, op }
    }

    /// Wraps an operation with an id.
    pub fn with_id(id: u64, op: Op) -> Request {
        Request { id: Some(id), op }
    }

    /// Canonical one-line serialisation (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        if let Some(id) = self.id {
            out.push_str(&format!("\"id\":{id},"));
        }
        out.push_str(&format!("\"op\":{}", json_str(self.op.name())));
        fn field(out: &mut String, name: &str, value: &str) {
            out.push_str(&format!(",{}:{}", json_str(name), json_str(value)));
        }
        match &self.op {
            Op::Load { model, options } => {
                field(&mut out, "model", model);
                if let Some(o) = options.ordering {
                    field(&mut out, "ordering", ordering_name(o));
                }
                if let Some(s) = options.scope {
                    field(&mut out, "scope", scope_name(s));
                }
                if let Some(b) = options.backend {
                    field(&mut out, "backend", backend_name(b));
                }
                if let Some(w) = options.witness_limit {
                    out.push_str(&format!(",\"witness_limit\":{w}"));
                }
                if let Some(r) = options.reorder {
                    field(&mut out, "reorder", &reorder_name(r));
                }
                if let Some(gc) = options.gc {
                    out.push_str(&format!(",\"gc\":{gc}"));
                }
            }
            Op::Prepare { session, query } | Op::Check { session, query } => {
                field(&mut out, "session", session);
                field(&mut out, "query", query);
            }
            Op::Eval {
                session,
                plan,
                scenario,
            } => {
                field(&mut out, "session", session);
                field(&mut out, "plan", plan);
                field(&mut out, "scenario", scenario);
            }
            Op::Cause {
                session,
                plan,
                scenario,
                stream,
            } => {
                field(&mut out, "session", session);
                field(&mut out, "plan", plan);
                field(&mut out, "scenario", scenario);
                // Canonical form omits the default, so pre-streaming
                // request lines round-trip byte-identically.
                if *stream {
                    out.push_str(",\"stream\":true");
                }
            }
            Op::Sweep {
                session,
                plan,
                scenarios,
                stream,
            } => {
                field(&mut out, "session", session);
                field(&mut out, "plan", plan);
                field(&mut out, "scenarios", scenarios);
                if *stream {
                    out.push_str(",\"stream\":true");
                }
            }
            Op::Prob {
                session,
                target,
                options,
            } => {
                field(&mut out, "session", session);
                match target {
                    ProbTarget::Plan { plan, scenario } => {
                        field(&mut out, "plan", plan);
                        if let Some(s) = scenario {
                            field(&mut out, "scenario", s);
                        }
                    }
                    ProbTarget::Formula { formula, given } => {
                        field(&mut out, "formula", formula);
                        if let Some(g) = given {
                            field(&mut out, "given", g);
                        }
                    }
                }
                if let Some(m) = &options.method {
                    field(&mut out, "method", m);
                }
                if let Some(n) = options.samples {
                    out.push_str(&format!(",\"samples\":{n}"));
                }
                if let Some(n) = options.seed {
                    out.push_str(&format!(",\"seed\":{n}"));
                }
                if let Some(c) = options.confidence {
                    out.push_str(&format!(",\"confidence\":{c}"));
                }
            }
            Op::Importance { session, formula } => {
                field(&mut out, "session", session);
                field(&mut out, "formula", formula);
            }
            Op::Explain { session, plan } => {
                field(&mut out, "session", session);
                field(&mut out, "plan", plan);
            }
            Op::Stats { session } => {
                if let Some(s) = session {
                    field(&mut out, "session", s);
                }
            }
            Op::Maintain { session } | Op::Unload { session } => {
                field(&mut out, "session", session);
            }
            Op::Lint { session, spec } => {
                field(&mut out, "session", session);
                if let Some(s) = spec {
                    field(&mut out, "spec", s);
                }
            }
            Op::Shutdown => {}
        }
        out.push('}');
        out
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A [`RequestError`] carrying the request id when it could be
    /// extracted (so the error response still correlates), the error
    /// code and a message.
    pub fn parse(line: &str) -> Result<Request, RequestError> {
        let doc = Json::parse(line)
            .map_err(|e| (None, ErrorCode::ParseError, format!("invalid JSON: {e}")))?;
        if !matches!(doc, Json::Object(_)) {
            return Err((
                None,
                ErrorCode::ParseError,
                "request must be a JSON object".to_string(),
            ));
        }
        let id = match doc.get("id") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or((
                None,
                ErrorCode::ParseError,
                "`id` must be a non-negative integer".to_string(),
            ))?),
        };
        let fail = |code: ErrorCode, message: String| (id, code, message);
        let op_name = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| fail(ErrorCode::UnknownOp, "missing `op` field".to_string()))?;
        let required = |name: &str| -> Result<String, RequestError> {
            match doc.get(name) {
                Some(Json::Str(s)) => Ok(s.clone()),
                Some(_) => Err(fail(
                    ErrorCode::BadField,
                    format!("`{name}` must be a string"),
                )),
                None => Err(fail(
                    ErrorCode::MissingField,
                    format!("`{op_name}` requires a `{name}` field"),
                )),
            }
        };
        let optional = |name: &str| -> Result<Option<String>, RequestError> {
            match doc.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(fail(
                    ErrorCode::BadField,
                    format!("`{name}` must be a string"),
                )),
            }
        };
        let op = match op_name {
            "load" => {
                let model = required("model")?;
                let options = SessionOptions {
                    ordering: optional("ordering")?
                        .map(|s| {
                            parse_ordering(&s).ok_or_else(|| {
                                fail(ErrorCode::BadField, format!("unknown ordering `{s}`"))
                            })
                        })
                        .transpose()?,
                    scope: optional("scope")?
                        .map(|s| {
                            parse_scope(&s).ok_or_else(|| {
                                fail(ErrorCode::BadField, format!("unknown scope `{s}`"))
                            })
                        })
                        .transpose()?,
                    backend: optional("backend")?
                        .map(|s| {
                            parse_backend(&s).ok_or_else(|| {
                                fail(ErrorCode::BadField, format!("unknown backend `{s}`"))
                            })
                        })
                        .transpose()?,
                    witness_limit: match doc.get("witness_limit") {
                        None | Some(Json::Null) => None,
                        Some(v) => Some(v.as_u64().ok_or_else(|| {
                            fail(
                                ErrorCode::BadField,
                                "`witness_limit` must be a non-negative integer".to_string(),
                            )
                        })?),
                    },
                    reorder: optional("reorder")?
                        .map(|s| {
                            parse_reorder(&s).ok_or_else(|| {
                                fail(ErrorCode::BadField, format!("unknown reorder policy `{s}`"))
                            })
                        })
                        .transpose()?,
                    gc: match doc.get("gc") {
                        None | Some(Json::Null) => None,
                        Some(Json::Bool(b)) => Some(*b),
                        Some(_) => {
                            return Err(fail(
                                ErrorCode::BadField,
                                "`gc` must be a Boolean".to_string(),
                            ))
                        }
                    },
                };
                Op::Load { model, options }
            }
            "prepare" => Op::Prepare {
                session: required("session")?,
                query: required("query")?,
            },
            "check" => Op::Check {
                session: required("session")?,
                query: required("query")?,
            },
            "eval" => Op::Eval {
                session: required("session")?,
                plan: required("plan")?,
                scenario: optional("scenario")?.unwrap_or_default(),
            },
            "cause" => Op::Cause {
                session: required("session")?,
                plan: required("plan")?,
                scenario: optional("scenario")?.unwrap_or_default(),
                stream: bool_field(&doc, "stream", &fail)?,
            },
            "sweep" => Op::Sweep {
                session: required("session")?,
                plan: required("plan")?,
                scenarios: required("scenarios")?,
                stream: bool_field(&doc, "stream", &fail)?,
            },
            "prob" => {
                let session = required("session")?;
                let target = match (optional("plan")?, optional("formula")?) {
                    (Some(plan), None) => ProbTarget::Plan {
                        plan,
                        scenario: optional("scenario")?,
                    },
                    (None, Some(formula)) => ProbTarget::Formula {
                        formula,
                        given: optional("given")?,
                    },
                    (Some(_), Some(_)) => {
                        return Err(fail(
                            ErrorCode::BadField,
                            "`prob` takes `plan` or `formula`, not both".to_string(),
                        ))
                    }
                    (None, None) => {
                        return Err(fail(
                            ErrorCode::MissingField,
                            "`prob` requires a `plan` or a `formula` field".to_string(),
                        ))
                    }
                };
                let u64_field = |name: &str| -> Result<Option<u64>, RequestError> {
                    match doc.get(name) {
                        None | Some(Json::Null) => Ok(None),
                        Some(v) => Ok(Some(v.as_u64().ok_or_else(|| {
                            fail(
                                ErrorCode::BadField,
                                format!("`{name}` must be a non-negative integer"),
                            )
                        })?)),
                    }
                };
                let options = ProbOptions {
                    method: match optional("method")? {
                        Some(name) => {
                            // Validate eagerly: a malformed method is a
                            // structured bad_field, with the core
                            // parser's message.
                            name.parse::<Method>()
                                .map_err(|e| fail(ErrorCode::BadField, e))?;
                            Some(name)
                        }
                        None => None,
                    },
                    samples: u64_field("samples")?,
                    seed: u64_field("seed")?,
                    confidence: match doc.get("confidence") {
                        None | Some(Json::Null) => None,
                        Some(v) => Some(v.as_f64().ok_or_else(|| {
                            fail(
                                ErrorCode::BadField,
                                "`confidence` must be a number".to_string(),
                            )
                        })?),
                    },
                };
                // Reject invalid combinations at the protocol boundary
                // so they never reach a worker.
                options
                    .resolve()
                    .map_err(|e| fail(ErrorCode::BadField, e))?;
                Op::Prob {
                    session,
                    target,
                    options,
                }
            }
            "importance" => Op::Importance {
                session: required("session")?,
                formula: required("formula")?,
            },
            "explain" => Op::Explain {
                session: required("session")?,
                plan: required("plan")?,
            },
            "stats" => Op::Stats {
                session: optional("session")?,
            },
            "maintain" => Op::Maintain {
                session: required("session")?,
            },
            "lint" => Op::Lint {
                session: required("session")?,
                spec: optional("spec")?,
            },
            "unload" => Op::Unload {
                session: required("session")?,
            },
            "shutdown" => Op::Shutdown,
            other => {
                return Err(fail(
                    ErrorCode::UnknownOp,
                    format!("unknown operation `{other}`"),
                ))
            }
        };
        Ok(Request { id, op })
    }
}

/// One protocol response: the echoed id plus a result document or a
/// structured error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id, echoed.
    pub id: Option<u64>,
    /// Result or error.
    pub body: ResponseBody,
}

/// The two response shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Success; the payload is a pre-rendered JSON document.
    Result(String),
    /// Failure.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// A success response around a pre-rendered JSON payload.
    pub fn ok(id: Option<u64>, result: impl Into<String>) -> Response {
        Response {
            id,
            body: ResponseBody::Result(result.into()),
        }
    }

    /// An error response.
    pub fn error(id: Option<u64>, code: ErrorCode, message: impl Into<String>) -> Response {
        Response {
            id,
            body: ResponseBody::Error {
                code,
                message: message.into(),
            },
        }
    }

    /// Whether this is a success response.
    pub fn is_ok(&self) -> bool {
        matches!(self.body, ResponseBody::Result(_))
    }

    /// Canonical one-line serialisation (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        if let Some(id) = self.id {
            out.push_str(&format!("\"id\":{id},"));
        }
        match &self.body {
            ResponseBody::Result(result) => {
                out.push_str(&format!("\"ok\":true,\"result\":{result}"));
            }
            ResponseBody::Error { code, message } => {
                out.push_str(&format!(
                    "\"ok\":false,\"error\":{{\"code\":{},\"message\":{}}}",
                    json_str(code.as_str()),
                    json_str(message)
                ));
            }
        }
        out.push('}');
        out
    }

    /// Parses one response line (the client side of the protocol).
    ///
    /// # Errors
    ///
    /// A description of the malformation.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        if !matches!(doc, Json::Object(_)) {
            return Err("response must be a JSON object".to_string());
        }
        let id = match doc.get("id") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "`id` must be a non-negative integer".to_string())?,
            ),
        };
        let ok = doc
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| "missing Boolean `ok` field".to_string())?;
        if ok {
            let result = doc
                .get("result")
                .ok_or_else(|| "missing `result` field".to_string())?;
            Ok(Response::ok(id, result.to_string()))
        } else {
            let error = doc
                .get("error")
                .ok_or_else(|| "missing `error` field".to_string())?;
            let code_name = error
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing `error.code` field".to_string())?;
            let code = ErrorCode::parse(code_name)
                .ok_or_else(|| format!("unknown error code `{code_name}`"))?;
            let message = error
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            Ok(Response::error(id, code, message))
        }
    }
}

// ---------------------------------------------------------------------------
// Parse helpers.
// ---------------------------------------------------------------------------

/// Parses an optional Boolean request field; absent/`null` = `false`.
fn bool_field(
    doc: &Json,
    name: &str,
    fail: &impl Fn(ErrorCode, String) -> RequestError,
) -> Result<bool, RequestError> {
    match doc.get(name) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(fail(
            ErrorCode::BadField,
            format!("`{name}` must be a Boolean"),
        )),
    }
}

// ---------------------------------------------------------------------------
// Enum-name tables (wire names for the session knobs).
// ---------------------------------------------------------------------------

pub(crate) fn ordering_name(o: VariableOrdering) -> &'static str {
    match o {
        VariableOrdering::DfsPreorder => "dfs",
        VariableOrdering::BfsLevel => "bfs",
        VariableOrdering::Declaration => "declaration",
        VariableOrdering::BouissouWeight => "bouissou",
        VariableOrdering::Sifted => "sifted",
        // `VariableOrdering` is non_exhaustive; new orderings must be
        // added to the wire tables before the protocol can carry them.
        _ => "dfs",
    }
}

pub(crate) fn parse_ordering(name: &str) -> Option<VariableOrdering> {
    Some(match name {
        "dfs" => VariableOrdering::DfsPreorder,
        "bfs" => VariableOrdering::BfsLevel,
        "declaration" => VariableOrdering::Declaration,
        "bouissou" => VariableOrdering::BouissouWeight,
        "sifted" => VariableOrdering::Sifted,
        _ => return None,
    })
}

pub(crate) fn scope_name(s: MinimalityScope) -> &'static str {
    match s {
        MinimalityScope::GlobalUniverse => "global",
        MinimalityScope::FormulaSupport => "support",
    }
}

pub(crate) fn parse_scope(name: &str) -> Option<MinimalityScope> {
    Some(match name {
        "global" => MinimalityScope::GlobalUniverse,
        "support" => MinimalityScope::FormulaSupport,
        _ => return None,
    })
}

pub(crate) fn backend_name(b: bfl_core::engine::Backend) -> &'static str {
    match b {
        bfl_core::engine::Backend::Minsol => "minsol",
        bfl_core::engine::Backend::Paper => "paper",
        bfl_core::engine::Backend::Zdd => "zdd",
    }
}

pub(crate) fn parse_backend(name: &str) -> Option<bfl_core::engine::Backend> {
    Some(match name {
        "minsol" => bfl_core::engine::Backend::Minsol,
        "paper" => bfl_core::engine::Backend::Paper,
        "zdd" => bfl_core::engine::Backend::Zdd,
        _ => return None,
    })
}

pub(crate) fn reorder_name(r: ReorderPolicy) -> String {
    match r {
        ReorderPolicy::None => "none".to_string(),
        ReorderPolicy::OnPrepare => "prepare".to_string(),
        ReorderPolicy::Auto { growth_factor } => format!("auto:{growth_factor}"),
    }
}

pub(crate) fn parse_reorder(name: &str) -> Option<ReorderPolicy> {
    match name {
        "none" => Some(ReorderPolicy::None),
        "prepare" => Some(ReorderPolicy::OnPrepare),
        "auto" => Some(ReorderPolicy::auto()),
        other => {
            let factor = other.strip_prefix("auto:")?;
            let growth_factor: f64 = factor.parse().ok()?;
            if growth_factor > 1.0 && growth_factor.is_finite() {
                Some(ReorderPolicy::Auto { growth_factor })
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn request_parse_extracts_id_even_on_bad_op() {
        let err = Request::parse(r#"{"id":7,"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.0, Some(7));
        assert_eq!(err.1, ErrorCode::UnknownOp);
    }

    #[test]
    fn missing_and_bad_fields_are_distinguished() {
        let err = Request::parse(r#"{"op":"prepare","session":"s1"}"#).unwrap_err();
        assert_eq!(err.1, ErrorCode::MissingField);
        let err = Request::parse(r#"{"op":"prepare","session":1,"query":"q"}"#).unwrap_err();
        assert_eq!(err.1, ErrorCode::BadField);
    }

    #[test]
    fn prob_requires_exactly_one_target() {
        let err = Request::parse(r#"{"op":"prob","session":"s1"}"#).unwrap_err();
        assert_eq!(err.1, ErrorCode::MissingField);
        let err = Request::parse(r#"{"op":"prob","session":"s1","plan":"p1","formula":"T"}"#)
            .unwrap_err();
        assert_eq!(err.1, ErrorCode::BadField);
    }

    #[test]
    fn load_options_round_trip_typed() {
        let line = r#"{"op":"load","model":"toplevel T;","ordering":"sifted","scope":"support","backend":"zdd","witness_limit":5,"reorder":"auto:2.5","gc":false}"#;
        let req = Request::parse(line).unwrap();
        let Op::Load { options, .. } = &req.op else {
            panic!("{req:?}");
        };
        assert_eq!(options.ordering, Some(VariableOrdering::Sifted));
        assert_eq!(options.scope, Some(MinimalityScope::FormulaSupport));
        assert_eq!(options.witness_limit, Some(5));
        assert_eq!(
            options.reorder,
            Some(ReorderPolicy::Auto { growth_factor: 2.5 })
        );
        assert_eq!(options.gc, Some(false));
        assert_eq!(req.to_json_line(), line);
    }

    #[test]
    fn bad_enum_names_are_bad_field() {
        for line in [
            r#"{"op":"load","model":"m","ordering":"alphabetical"}"#,
            r#"{"op":"load","model":"m","scope":"galactic"}"#,
            r#"{"op":"load","model":"m","backend":"sat"}"#,
            r#"{"op":"load","model":"m","reorder":"auto:0.5"}"#,
            r#"{"op":"load","model":"m","gc":"yes"}"#,
            r#"{"op":"load","model":"m","witness_limit":-1}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.1, ErrorCode::BadField, "{line}");
        }
    }

    #[test]
    fn cause_requests_round_trip() {
        let line = r#"{"id":4,"op":"cause","session":"s1","plan":"p1","scenario":"IW = 1"}"#;
        let req = Request::parse(line).unwrap();
        assert_eq!(
            req.op,
            Op::Cause {
                session: "s1".to_string(),
                plan: "p1".to_string(),
                scenario: "IW = 1".to_string(),
                stream: false,
            }
        );
        assert_eq!(req.op.session_id(), Some("s1"));
        assert_eq!(req.to_json_line(), line);
        // The scenario is optional (baseline = the plan's own evidence).
        let req = Request::parse(r#"{"op":"cause","session":"s1","plan":"p1"}"#).unwrap();
        let Op::Cause { scenario, .. } = &req.op else {
            panic!("{req:?}");
        };
        assert!(scenario.is_empty());
        let err = Request::parse(r#"{"op":"cause","session":"s1"}"#).unwrap_err();
        assert_eq!(err.1, ErrorCode::MissingField);
    }

    #[test]
    fn stream_flag_parses_and_round_trips() {
        // Absent / null / false all mean "one response line", and the
        // canonical form omits the field in every such case.
        for line in [
            r#"{"op":"sweep","session":"s1","plan":"p1","scenarios":"IW = 1"}"#,
            r#"{"op":"sweep","session":"s1","plan":"p1","scenarios":"IW = 1","stream":null}"#,
            r#"{"op":"sweep","session":"s1","plan":"p1","scenarios":"IW = 1","stream":false}"#,
        ] {
            let req = Request::parse(line).unwrap();
            let Op::Sweep { stream, .. } = &req.op else {
                panic!("{req:?}");
            };
            assert!(!stream, "{line}");
            assert_eq!(
                req.to_json_line(),
                r#"{"op":"sweep","session":"s1","plan":"p1","scenarios":"IW = 1"}"#
            );
        }
        let line =
            r#"{"id":6,"op":"cause","session":"s1","plan":"p1","scenario":"","stream":true}"#;
        let req = Request::parse(line).unwrap();
        assert_eq!(
            req.op,
            Op::Cause {
                session: "s1".to_string(),
                plan: "p1".to_string(),
                scenario: String::new(),
                stream: true,
            }
        );
        assert_eq!(req.to_json_line(), line);
        let err = Request::parse(
            r#"{"op":"sweep","session":"s1","plan":"p1","scenarios":"IW = 1","stream":"yes"}"#,
        )
        .unwrap_err();
        assert_eq!(err.1, ErrorCode::BadField);
    }

    #[test]
    fn lint_requests_round_trip() {
        let line = r#"{"id":9,"op":"lint","session":"s1","spec":"P1: exists T"}"#;
        let req = Request::parse(line).unwrap();
        assert_eq!(
            req.op,
            Op::Lint {
                session: "s1".to_string(),
                spec: Some("P1: exists T".to_string()),
            }
        );
        assert_eq!(req.op.session_id(), Some("s1"));
        assert_eq!(req.op.name(), "lint");
        assert_eq!(req.to_json_line(), line);
        // The spec is optional (model-only lint).
        let line = r#"{"op":"lint","session":"s1"}"#;
        let req = Request::parse(line).unwrap();
        assert_eq!(
            req.op,
            Op::Lint {
                session: "s1".to_string(),
                spec: None,
            }
        );
        assert_eq!(req.to_json_line(), line);
        let err = Request::parse(r#"{"op":"lint"}"#).unwrap_err();
        assert_eq!(err.1, ErrorCode::MissingField);
    }

    #[test]
    fn response_round_trips() {
        let ok = Response::ok(Some(3), r#"{"session":"s1"}"#);
        let line = ok.to_json_line();
        assert_eq!(line, r#"{"id":3,"ok":true,"result":{"session":"s1"}}"#);
        assert_eq!(Response::parse(&line).unwrap(), ok);
        let err = Response::error(None, ErrorCode::Busy, "queue full");
        let line = err.to_json_line();
        assert_eq!(Response::parse(&line).unwrap(), err);
        assert!(!err.is_ok());
    }

    #[test]
    fn unknown_error_codes_are_rejected_by_the_client_parser() {
        let line = r#"{"ok":false,"error":{"code":"weird","message":"?"}}"#;
        assert!(Response::parse(line).unwrap_err().contains("weird"));
    }

    #[test]
    fn session_id_targets_the_right_ops() {
        let targeted = Request::parse(r#"{"op":"eval","session":"s7","plan":"p1"}"#).unwrap();
        assert_eq!(targeted.op.session_id(), Some("s7"));
        let optional = Request::parse(r#"{"op":"stats","session":"s2"}"#).unwrap();
        assert_eq!(optional.op.session_id(), Some("s2"));
        let global = Request::parse(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(global.op.session_id(), None);
        let load = Request::parse(r#"{"op":"load","model":"toplevel T;"}"#).unwrap();
        assert_eq!(load.op.session_id(), None);
        assert_eq!(
            Request::parse(r#"{"op":"shutdown"}"#)
                .unwrap()
                .op
                .session_id(),
            None
        );
    }

    #[test]
    fn error_code_names_round_trip() {
        for code in [
            ErrorCode::ParseError,
            ErrorCode::UnknownOp,
            ErrorCode::MissingField,
            ErrorCode::BadField,
            ErrorCode::UnknownSession,
            ErrorCode::UnknownPlan,
            ErrorCode::ModelError,
            ErrorCode::QueryError,
            ErrorCode::EvalError,
            ErrorCode::Busy,
            ErrorCode::ShuttingDown,
            ErrorCode::Oversized,
            ErrorCode::Overloaded,
            ErrorCode::IdleTimeout,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
    }
}
