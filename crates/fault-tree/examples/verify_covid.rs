//! Prints the qualitative analysis of the reconstructed COVID-19 tree —
//! the raw oracle data used to validate the Fig. 2 reconstruction
//! (see `DESIGN.md` §3). The full paper reproduction lives in the
//! `bfl-bench` crate's `reproduce` binary.
//!
//! Run with: `cargo run -p bfl-fault-tree --example verify_covid`

use bfl_fault_tree::{analysis, corpus};

fn main() {
    let tree = corpus::covid();
    let mcs = analysis::minimal_cut_sets_names(&tree, tree.top());
    println!("MCS(IWoS) ({}):", mcs.len());
    for s in &mcs {
        println!("  {{{}}}", s.join(", "));
    }
    let mps = analysis::minimal_path_sets_names(&tree, tree.top());
    println!("MPS(IWoS) ({}):", mps.len());
    for s in &mps {
        println!("  {{{}}}", s.join(", "));
    }
    let mot = tree
        .element("MoT")
        .unwrap_or_else(|| unreachable!("MoT is a gate of the covid tree"));
    let mcs_mot = analysis::minimal_cut_sets_names(&tree, mot);
    println!("MCS(MoT) with IS:");
    for s in mcs_mot.iter().filter(|s| s.contains(&"IS".to_string())) {
        println!("  {{{}}}", s.join(", "));
    }
    println!("MCS(IWoS) with H4:");
    for s in mcs.iter().filter(|s| s.contains(&"H4".to_string())) {
        println!("  {{{}}}", s.join(", "));
    }
}
