//! A tiny deterministic pseudo-random number generator (SplitMix64).
//!
//! The suite's randomised components — the fault-tree
//! [`generator`](crate::generator) and the synthesis search in
//! `bfl-core` — only need seeded, reproducible uniform draws, not
//! cryptographic quality. Keeping the generator in-tree keeps the whole
//! workspace dependency-free, which matters in the offline build
//! environments this project targets.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) passes BigCrush for this
//! output width and is the stream generator `rand` itself uses to seed
//! its StdRng, so the statistical quality is more than adequate for
//! randomised testing.

use std::ops::{Bound, RangeBounds};

/// A seeded SplitMix64 generator. Equal seeds yield equal streams.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `range` (any `usize` range with a bounded end).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or unbounded above.
    pub fn gen_range<R: RangeBounds<usize>>(&mut self, range: R) -> usize {
        let lo = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let hi_inclusive = match range.end_bound() {
            Bound::Included(&e) => e,
            Bound::Excluded(&e) => e
                .checked_sub(1)
                .unwrap_or_else(|| unreachable!("empty range")),
            Bound::Unbounded => panic!("gen_range requires a bounded end"),
        };
        assert!(lo <= hi_inclusive, "empty range");
        let span = (hi_inclusive - lo) as u64 + 1;
        // Multiply-shift mapping (Lemire); the bias for spans this small
        // (≪ 2^64) is negligible for test generation.
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(2..=5);
            assert!((2..=5).contains(&y));
            let z = r.gen_range(4..5);
            assert_eq!(z, 4);
        }
    }

    #[test]
    fn bools_roughly_follow_p() {
        let mut r = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
