//! Cut-set backend selection — one knob over the three independent
//! MCS/MPS engines of the suite.
//!
//! The suite ships three ways to compute minimal cut and path sets:
//!
//! * [`Backend::Minsol`] — Rauzy's minimal-solutions algorithm on the
//!   shared BDDs ([`analysis::minsol`]);
//! * [`Backend::Paper`] — the paper's primed-variable `MCS`/`MPS`
//!   translation (Algorithm 1's construction);
//! * [`Backend::Zdd`] — bottom-up cut-set families on zero-suppressed
//!   diagrams ([`zdd_engine`]).
//!
//! All three agree on every input (cross-checked in the test-suites) but
//! have very different performance envelopes, so the choice is exposed as
//! a first-class configuration value that higher layers (the
//! `AnalysisSession` in `bfl-core`, the CLI) thread through. The ZDD
//! engine historically computed cut sets only; path sets are obtained by
//! running it on the [`dual_tree`], closing the `mcs`-only gap.

use std::fmt;
use std::str::FromStr;

use crate::analysis;
use crate::builder::FaultTreeBuilder;
use crate::model::{ElementId, FaultTree, GateType};
use crate::zdd_engine;

/// Which engine computes minimal cut/path sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Rauzy minimal solutions on the shared BDD (the default).
    #[default]
    Minsol,
    /// The paper's primed-variable construction.
    Paper,
    /// Bottom-up ZDD cut-set families (path sets via the dual tree).
    Zdd,
}

impl Backend {
    /// Every backend, for exhaustive sweeps in tests and benches.
    pub const ALL: [Backend; 3] = [Backend::Minsol, Backend::Paper, Backend::Zdd];

    /// The engine implementing this backend.
    pub fn engine(self) -> &'static dyn CutSetEngine {
        match self {
            Backend::Minsol => &MinsolEngine,
            Backend::Paper => &PaperEngine,
            Backend::Zdd => &ZddEngine,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Minsol => "minsol",
            Backend::Paper => "paper",
            Backend::Zdd => "zdd",
        })
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "minsol" => Ok(Backend::Minsol),
            "paper" => Ok(Backend::Paper),
            "zdd" => Ok(Backend::Zdd),
            other => Err(format!(
                "unknown backend `{other}` (expected `minsol`, `paper` or `zdd`)"
            )),
        }
    }
}

/// A minimal cut/path set engine.
///
/// Implementations return canonically ordered index sets (each set
/// ascending; sets ordered by cardinality, then lexicographically) so
/// results are comparable across backends.
pub trait CutSetEngine: Send + Sync {
    /// Engine name, matching the [`Backend`] spelling.
    fn name(&self) -> &'static str;

    /// Minimal cut sets of `e` as sets of basic-event indices.
    fn minimal_cut_sets(&self, tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>>;

    /// Minimal path sets of `e` as sets of basic-event indices of the
    /// *operational* events.
    fn minimal_path_sets(&self, tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>>;
}

struct MinsolEngine;

impl CutSetEngine for MinsolEngine {
    fn name(&self) -> &'static str {
        "minsol"
    }

    fn minimal_cut_sets(&self, tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
        analysis::minimal_cut_sets(tree, e)
    }

    fn minimal_path_sets(&self, tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
        analysis::minimal_path_sets(tree, e)
    }
}

struct PaperEngine;

impl CutSetEngine for PaperEngine {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn minimal_cut_sets(&self, tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
        analysis::minimal_cut_sets_paper(tree, e)
    }

    fn minimal_path_sets(&self, tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
        analysis::minimal_path_sets_paper(tree, e)
    }
}

struct ZddEngine;

impl CutSetEngine for ZddEngine {
    fn name(&self) -> &'static str {
        "zdd"
    }

    fn minimal_cut_sets(&self, tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
        zdd_engine::minimal_cut_sets_zdd(tree, e)
    }

    fn minimal_path_sets(&self, tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
        // MPS(e) in T = MCS(e) in the dual of T; the dual preserves ids
        // and basic indices, so the result needs no re-indexing.
        let dual = dual_tree(tree);
        zdd_engine::minimal_cut_sets_zdd(&dual, e)
    }
}

/// The dual fault tree: `AND ↔ OR`, `VOT(k/N) ↦ VOT(N−k+1/N)`.
///
/// Element names, declaration order (hence [`ElementId`]s and basic
/// indices) and the top element are preserved, and the dual's structure
/// function is `Φ^d(b) = ¬Φ(¬b)` element-wise — so the cut sets of the
/// dual are exactly the path sets of the original (and vice versa).
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{backend::dual_tree, corpus, analysis};
/// let tree = corpus::fig1();
/// let dual = dual_tree(&tree);
/// assert_eq!(
///     analysis::minimal_cut_sets(&dual, dual.top()),
///     analysis::minimal_path_sets(&tree, tree.top()),
/// );
/// ```
pub fn dual_tree(tree: &FaultTree) -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    for e in tree.iter() {
        let name = tree.name(e);
        match tree.gate_type(e) {
            None => {
                b.basic_event(name)
                    .unwrap_or_else(|_| unreachable!("names are unique in a well-formed tree"));
            }
            Some(t) => {
                let n = tree.children(e).len() as u32;
                let dual_type = match t {
                    GateType::And => GateType::Or,
                    GateType::Or => GateType::And,
                    GateType::Vot { k } => GateType::Vot { k: n - k + 1 },
                };
                let children = tree.children(e).iter().map(|&c| tree.name(c));
                b.gate(name, dual_type, children)
                    .unwrap_or_else(|_| unreachable!("names are unique"));
            }
        }
    }
    b.build(tree.name(tree.top()))
        .unwrap_or_else(|_| unreachable!("dual of a well-formed tree is well-formed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    fn corpus_trees() -> Vec<FaultTree> {
        vec![
            corpus::or2(),
            corpus::fig1(),
            corpus::covid(),
            corpus::table1_tree(),
            corpus::pressure_tank(),
            corpus::attack_tree(),
            corpus::kofn(2, 4),
            corpus::kofn(3, 5),
        ]
    }

    #[test]
    fn dual_preserves_ids_and_top() {
        let tree = corpus::covid();
        let dual = dual_tree(&tree);
        assert_eq!(dual.len(), tree.len());
        assert_eq!(dual.top(), tree.top());
        for e in tree.iter() {
            assert_eq!(dual.name(e), tree.name(e));
            assert_eq!(dual.basic_index(e), tree.basic_index(e));
        }
    }

    #[test]
    fn dual_is_involutive() {
        for tree in corpus_trees() {
            let twice = dual_tree(&dual_tree(&tree));
            for e in tree.iter() {
                assert_eq!(twice.gate_type(e), tree.gate_type(e), "{}", tree.name(e));
                assert_eq!(twice.children(e), tree.children(e));
            }
        }
    }

    #[test]
    fn all_backends_agree_on_corpus() {
        for tree in corpus_trees() {
            let base_mcs = Backend::Minsol.engine().minimal_cut_sets(&tree, tree.top());
            let base_mps = Backend::Minsol
                .engine()
                .minimal_path_sets(&tree, tree.top());
            for backend in Backend::ALL {
                let engine = backend.engine();
                assert_eq!(
                    engine.minimal_cut_sets(&tree, tree.top()),
                    base_mcs,
                    "mcs via {backend} on {}",
                    tree.name(tree.top())
                );
                assert_eq!(
                    engine.minimal_path_sets(&tree, tree.top()),
                    base_mps,
                    "mps via {backend} on {}",
                    tree.name(tree.top())
                );
            }
        }
    }

    #[test]
    fn backend_round_trips_through_strings() {
        for backend in Backend::ALL {
            assert_eq!(backend.to_string().parse::<Backend>().unwrap(), backend);
            assert_eq!(backend.engine().name(), backend.to_string());
        }
        assert!("bogus".parse::<Backend>().is_err());
    }

    #[test]
    fn vot_dual_threshold() {
        // 2-of-3 fails iff 2 fail; its dual must fail iff 2 are... failed
        // under complemented inputs: VOT(2/3)^d = VOT(2/3) here (n−k+1 = 2).
        let tree = corpus::kofn(2, 3);
        let dual = dual_tree(&tree);
        assert_eq!(dual.gate_type(dual.top()), Some(GateType::Vot { k: 2 }));
        let tree = corpus::kofn(1, 3); // OR-like: dual is AND-like VOT(3/3)
        let dual = dual_tree(&tree);
        assert_eq!(dual.gate_type(dual.top()), Some(GateType::Vot { k: 3 }));
    }
}
