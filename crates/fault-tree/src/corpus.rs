//! The fault trees used throughout the paper, reconstructed from its
//! figures and published analysis results.
//!
//! * [`or2`] — the single OR-gate tree of Fig. 3 / Examples 2–3;
//! * [`fig1`] — the COVID pathogens/reservoir subtree of Fig. 1;
//! * [`table1_tree`] — the five-element tree of Section VI / Table I;
//! * [`covid`] — the full COVID-19 fault tree of Fig. 2 (see `DESIGN.md`
//!   §3 for the reconstruction argument and the oracles it satisfies);
//! * [`kofn`] and [`chain`] — parametric families for benchmarks;
//! * [`scaled`] / [`scaled_model`] — the industrial-scale family
//!   (1k–10k basic events) used by the scale benchmarks and the
//!   metamorphic test suite.

// Every tree here is built from literals: each insert is a fresh name
// and each `build` a well-formed top by construction, so the documented
// `expect`s are unreachable and exercised by this module's tests.
#![allow(clippy::expect_used)]

use crate::builder::FaultTreeBuilder;
use crate::galileo::GalileoModel;
use crate::generator::{industrial_model, industrial_tree, IndustrialConfig};
use crate::model::{FaultTree, GateType};

/// The smallest significant tree (Fig. 3, Examples 2 and 3): a single
/// OR-gate `Top = OR(e1, e2)`.
pub fn or2() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    b.basic_events(["e1", "e2"]).expect("fresh names");
    b.gate("Top", GateType::Or, ["e1", "e2"])
        .expect("fresh name");
    b.build("Top").expect("well-formed")
}

/// The subtree of Fig. 1: *Existence of COVID-19 Pathogens/Reservoir*.
///
/// ```text
/// CP/R = OR(CP, CR);  CP = AND(IW, H3);  CR = AND(IT, H2)
/// ```
///
/// Its minimal cut sets are `{IW, H3}` and `{IT, H2}`; its minimal path
/// sets `{IW, IT}`, `{IW, H2}`, `{H3, IT}` and `{H3, H2}` (Section II).
pub fn fig1() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    b.basic_events(["IW", "H3", "IT", "H2"])
        .expect("fresh names");
    b.gate("CP", GateType::And, ["IW", "H3"])
        .expect("fresh name");
    b.gate("CR", GateType::And, ["IT", "H2"])
        .expect("fresh name");
    b.gate("CP/R", GateType::Or, ["CP", "CR"])
        .expect("fresh name");
    b.build("CP/R").expect("well-formed")
}

/// The five-element tree of Section VI used for Table I:
///
/// ```text
/// e1 = AND(e2, e3);  e3 = OR(e4, e5)
/// ```
///
/// with basic events `e2, e4, e5` (status vectors are ordered
/// `(e2, e4, e5)` as in the paper). Its MCSs for `e1` are `{e2,e4}` and
/// `{e2,e5}`; its MPSs are `{e2}` and `{e4,e5}`.
pub fn table1_tree() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    b.basic_events(["e2", "e4", "e5"]).expect("fresh names");
    b.gate("e3", GateType::Or, ["e4", "e5"])
        .expect("fresh name");
    b.gate("e1", GateType::And, ["e2", "e3"])
        .expect("fresh name");
    b.build("e1").expect("well-formed")
}

/// The full COVID-19 fault tree of Fig. 2: *COVID-19 infected Worker on
/// Site* (IWoS), a slightly modified version of Bakeli & Hafidi (2020).
///
/// The tree has 13 basic events and 15 gates; the basic events
/// `IT`, `PP`, `H1` and `IW` are repeated (occur under several gates), as
/// stated in Section IV. The structure below reproduces **every**
/// qualitative result published in Sections IV and VII; the derivation is
/// documented in `DESIGN.md` §3.
///
/// Basic events (H1–H5 are the human errors):
///
/// | name | meaning |
/// |------|---------|
/// | IW   | infected worker joins the team |
/// | IT   | infected object/tool used by the team |
/// | IS   | infected surface |
/// | PP   | physical proximity |
/// | VW   | vulnerable worker |
/// | AB   | absence of barriers/face protection |
/// | MV   | mechanical ventilation spreading aerosols |
/// | UT   | unknown transmission mode |
/// | H1   | non-respect of outbreak procedures |
/// | H2   | general disinfection error |
/// | H3   | detection error |
/// | H4   | object disinfection error |
/// | H5   | surface disinfection error |
pub fn covid() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    b.basic_events([
        "IW", "IT", "IS", "PP", "VW", "AB", "MV", "UT", "H1", "H2", "H3", "H4", "H5",
    ])
    .expect("fresh names");
    // Existence of COVID-19 pathogens / reservoir (purple subtree, Fig. 1).
    b.gate("CP", GateType::And, ["IW", "H3"])
        .expect("fresh name");
    b.gate("CR", GateType::And, ["IT", "H2"])
        .expect("fresh name");
    b.gate("CP/R", GateType::Or, ["CP", "CR"])
        .expect("fresh name");
    // Modes of transmission (teal subtree).
    b.gate("CIW", GateType::And, ["IW", "PP"])
        .expect("fresh name");
    b.gate("MH1", GateType::And, ["H1", "H4"])
        .expect("fresh name");
    b.gate("CIO", GateType::And, ["IT", "MH1"])
        .expect("fresh name");
    b.gate("MH2", GateType::And, ["H1", "H5"])
        .expect("fresh name");
    b.gate("CIS", GateType::And, ["IS", "MH2"])
        .expect("fresh name");
    b.gate("CT", GateType::Or, ["CIW", "CIO", "CIS"])
        .expect("fresh name");
    b.gate("DT", GateType::And, ["IW", "AB"])
        .expect("fresh name");
    b.gate("AT", GateType::And, ["IW", "MV"])
        .expect("fresh name");
    b.gate("CVT", GateType::And, ["IW", "PP", "H1"])
        .expect("fresh name");
    b.gate("MoT", GateType::Or, ["CT", "DT", "AT", "CVT", "UT"])
        .expect("fresh name");
    // Susceptible host (orange subtree).
    b.gate("SH", GateType::And, ["H1", "VW"])
        .expect("fresh name");
    // Top level event.
    b.gate("IWoS", GateType::And, ["CP/R", "MoT", "SH"])
        .expect("fresh name");
    b.build("IWoS").expect("well-formed")
}

/// A simplified variant of the classical *pressure tank* example from the
/// fault-tree literature: rupture of a pressure tank caused either by a
/// tank defect or by over-pressure, which requires the pump to keep
/// running (stuck relay or a control failure) while the relief path fails
/// (blocked or mis-calibrated valve).
///
/// 6 basic events, 5 gates, no repeated events — every gate is a module,
/// making it the counterpoint to [`covid`] in the module-detection tests
/// and a natural demo tree for the probability layer.
pub fn pressure_tank() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    b.basic_events([
        "TankDefect",
        "K2Stuck",
        "PSwitchStuck",
        "TimerFail",
        "ValveBlocked",
        "ValveMiscal",
    ])
    .expect("fresh names");
    b.gate("ControlFail", GateType::And, ["PSwitchStuck", "TimerFail"])
        .expect("fresh name");
    b.gate("PumpRuns", GateType::Or, ["K2Stuck", "ControlFail"])
        .expect("fresh name");
    b.gate("ReliefFails", GateType::Or, ["ValveBlocked", "ValveMiscal"])
        .expect("fresh name");
    b.gate("Overpressure", GateType::And, ["PumpRuns", "ReliefFails"])
        .expect("fresh name");
    b.gate("Rupture", GateType::Or, ["TankDefect", "Overpressure"])
        .expect("fresh name");
    b.build("Rupture").expect("well-formed")
}

/// An *attack tree* — structurally identical to a fault tree (Section V-A
/// of the paper notes BDD techniques apply to this security-related
/// counterpart). The "top event" is a successful compromise of a
/// credential vault; basic events are attacker actions.
///
/// ```text
/// Compromise  = OR(Insider, External)
/// Insider     = AND(Recruit, BadgeAccess)
/// External    = AND(GainEntry, Exfiltrate)
/// GainEntry   = OR(Phish, ExploitVpn)
/// Phish       = AND(CraftMail, UserClicks)
/// Exfiltrate  = AND(FindVault, CrackKey)
/// ```
///
/// `UserClicks` doubles as the shared social-engineering step under both
/// `Phish` and `Recruit`'s success, mirroring repeated events in Fig. 2.
pub fn attack_tree() -> FaultTree {
    let mut b = FaultTreeBuilder::new();
    b.basic_events([
        "Recruit",
        "BadgeAccess",
        "CraftMail",
        "UserClicks",
        "ExploitVpn",
        "FindVault",
        "CrackKey",
    ])
    .expect("fresh names");
    b.gate(
        "Insider",
        GateType::And,
        ["Recruit", "BadgeAccess", "UserClicks"],
    )
    .expect("fresh name");
    b.gate("Phish", GateType::And, ["CraftMail", "UserClicks"])
        .expect("fresh name");
    b.gate("GainEntry", GateType::Or, ["Phish", "ExploitVpn"])
        .expect("fresh name");
    b.gate("Exfiltrate", GateType::And, ["FindVault", "CrackKey"])
        .expect("fresh name");
    b.gate("External", GateType::And, ["GainEntry", "Exfiltrate"])
        .expect("fresh name");
    b.gate("Compromise", GateType::Or, ["Insider", "External"])
        .expect("fresh name");
    b.build("Compromise").expect("well-formed")
}

/// A `VOT(k/N)` gate over `n` fresh basic events `b0 … b{n-1}`.
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ n`.
pub fn kofn(k: u32, n: u32) -> FaultTree {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut b = FaultTreeBuilder::new();
    let names: Vec<String> = (0..n).map(|i| format!("b{i}")).collect();
    b.basic_events(names.iter().map(String::as_str))
        .expect("fresh names");
    b.gate("Top", GateType::Vot { k }, names.iter().map(String::as_str))
        .expect("fresh name");
    b.build("Top").expect("well-formed")
}

/// A balanced alternating AND/OR tree of the given depth with `2^depth`
/// distinct basic events; useful for scaling benchmarks.
///
/// # Panics
///
/// Panics if `depth` is 0 or greater than 16.
pub fn chain(depth: u32) -> FaultTree {
    assert!((1..=16).contains(&depth), "depth out of range");
    let mut b = FaultTreeBuilder::new();
    let leaves = 1u32 << depth;
    let names: Vec<String> = (0..leaves).map(|i| format!("b{i}")).collect();
    b.basic_events(names.iter().map(String::as_str))
        .expect("fresh names");
    // Build bottom-up: layer d has 2^d nodes.
    let mut layer: Vec<String> = names;
    let mut level = 0u32;
    while layer.len() > 1 {
        let gate_type = if level.is_multiple_of(2) {
            GateType::And
        } else {
            GateType::Or
        };
        let mut next = Vec::with_capacity(layer.len() / 2);
        for (i, pair) in layer.chunks(2).enumerate() {
            let name = format!("g{level}_{i}");
            b.gate(&name, gate_type, pair.iter().map(String::as_str))
                .expect("fresh name");
            next.push(name);
        }
        layer = next;
        level += 1;
    }
    b.build(&layer[0]).expect("well-formed")
}

/// The sizes of the industrial-scale corpus family, in basic events.
pub const SCALED_SIZES: [usize; 4] = [1_000, 2_000, 5_000, 10_000];

/// The fixed configuration behind [`scaled`]: shape and seed are pinned
/// per size so the family is stable across releases (benchmarks and
/// regression baselines stay comparable).
pub fn scaled_config(num_basic: usize) -> IndustrialConfig {
    IndustrialConfig {
        num_basic,
        num_modules: (num_basic / 64).max(2),
        depth: 5,
        fan_in: (2, 4),
        and_bias: 0.4,
        vot_density: 0.1,
        sharing: 0.15,
        prob_range: (1.0e-5, 1.0e-2),
        seed: 0x5CA1ED ^ num_basic as u64,
    }
}

/// An industrial-scale tree with `num_basic` basic events, deterministic
/// per size; see [`SCALED_SIZES`] for the canonical sizes. The tree is a
/// disjunction of ~`num_basic / 64` independent modules, each an internal
/// DAG with shared subtrees and ~10% VOT gates.
pub fn scaled(num_basic: usize) -> FaultTree {
    industrial_tree(&scaled_config(num_basic))
}

/// [`scaled`] with log-uniform probability annotations (`1e-5..1e-2`),
/// ready for the probability layer or Galileo emission.
pub fn scaled_model(num_basic: usize) -> GalileoModel {
    industrial_model(&scaled_config(num_basic))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covid_tree_shape() {
        let t = covid();
        assert_eq!(t.num_basic_events(), 13);
        assert_eq!(t.num_gates(), 15);
        assert_eq!(t.name(t.top()), "IWoS");
    }

    #[test]
    fn covid_repeated_events_are_exactly_the_four_of_the_paper() {
        let t = covid();
        // Count occurrences of each basic event as a child.
        let mut occurrences = std::collections::HashMap::new();
        for g in t.gates() {
            for &c in t.children(g) {
                if t.is_basic(c) {
                    *occurrences.entry(t.name(c).to_string()).or_insert(0usize) += 1;
                }
            }
        }
        let mut repeated: Vec<String> = occurrences
            .iter()
            .filter(|(_, &n)| n > 1)
            .map(|(k, _)| k.clone())
            .collect();
        repeated.sort();
        assert_eq!(repeated, vec!["H1", "IT", "IW", "PP"]);
    }

    #[test]
    fn fig1_matches_subtree_of_covid() {
        let small = fig1();
        let big = covid();
        let mcs_small = crate::analysis::minimal_cut_sets_names(&small, small.top());
        let cpr = big.element("CP/R").unwrap();
        let mcs_big = crate::analysis::minimal_cut_sets_names(&big, cpr);
        assert_eq!(mcs_small, mcs_big);
    }

    #[test]
    fn table1_tree_cut_and_path_sets() {
        let t = table1_tree();
        let mcs = crate::analysis::minimal_cut_sets_names(&t, t.top());
        assert_eq!(
            mcs,
            vec![
                vec!["e2".to_string(), "e4".to_string()],
                vec!["e2".to_string(), "e5".to_string()],
            ]
        );
        let mps = crate::analysis::minimal_path_sets_names(&t, t.top());
        assert_eq!(
            mps,
            vec![
                vec!["e2".to_string()],
                vec!["e4".to_string(), "e5".to_string()],
            ]
        );
    }

    #[test]
    fn pressure_tank_analysis() {
        let t = pressure_tank();
        assert_eq!(t.num_basic_events(), 6);
        assert_eq!(t.num_gates(), 5);
        let mcs = crate::analysis::minimal_cut_sets_names(&t, t.top());
        assert_eq!(
            mcs,
            vec![
                vec!["TankDefect".to_string()],
                vec!["K2Stuck".to_string(), "ValveBlocked".to_string()],
                vec!["K2Stuck".to_string(), "ValveMiscal".to_string()],
                vec![
                    "PSwitchStuck".to_string(),
                    "TimerFail".to_string(),
                    "ValveBlocked".to_string()
                ],
                vec![
                    "PSwitchStuck".to_string(),
                    "TimerFail".to_string(),
                    "ValveMiscal".to_string()
                ],
            ]
        );
        // No repeated events: every gate is a module.
        let mods = crate::modules::modules(&t);
        assert_eq!(mods.len(), t.num_gates());
    }

    #[test]
    fn kofn_counts() {
        let t = kofn(2, 4);
        let mcs = crate::analysis::minimal_cut_sets(&t, t.top());
        assert_eq!(mcs.len(), 6); // C(4,2)
        assert!(mcs.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn chain_is_well_formed() {
        let t = chain(4);
        assert_eq!(t.num_basic_events(), 16);
        assert_eq!(t.num_gates(), 8 + 4 + 2 + 1);
    }

    #[test]
    fn scaled_family_shape() {
        let m = scaled_model(1_000);
        assert_eq!(m.tree.num_basic_events(), 1_000);
        // ~num_basic/64 independent modules under an OR top.
        let roots = m.tree.children(m.tree.top()).to_vec();
        assert_eq!(roots.len(), 15);
        let deco = crate::modules::Decomposition::new(&m.tree);
        assert!(roots.iter().all(|&r| deco.is_module(r)));
        assert!(m.probabilities.iter().all(Option::is_some));
        // Deterministic per size.
        assert_eq!(
            crate::galileo::to_galileo(&m.tree, Some(&m.probabilities)),
            {
                let m2 = scaled_model(1_000);
                crate::galileo::to_galileo(&m2.tree, Some(&m2.probabilities))
            }
        );
    }
}
