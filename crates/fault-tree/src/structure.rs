//! The structure function `Φ_T` of Definition 2.

use crate::model::{ElementId, FaultTree, GateType};
use crate::status::StatusVector;

impl FaultTree {
    /// Evaluates the structure function `Φ_T(b, e)`: the status of element
    /// `e` (`true` = failed) given the status vector `b` over the basic
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not have exactly
    /// [`num_basic_events`](FaultTree::num_basic_events) bits.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_fault_tree::{corpus, StatusVector};
    /// let tree = corpus::fig1();
    /// let b = StatusVector::from_failed_names(&tree, &["IW", "H3"]);
    /// assert!(tree.evaluate(&b, tree.top()));
    /// ```
    pub fn evaluate(&self, b: &StatusVector, e: ElementId) -> bool {
        let statuses = self.evaluate_all(b);
        statuses[e.index()]
    }

    /// Evaluates the structure function for *every* element at once,
    /// returning a vector indexed by [`ElementId::index`]. Shared subtrees
    /// are evaluated once (the tree is a DAG).
    ///
    /// # Panics
    ///
    /// Panics if `b` has the wrong length.
    pub fn evaluate_all(&self, b: &StatusVector) -> Vec<bool> {
        assert_eq!(
            b.len(),
            self.num_basic_events(),
            "status vector length {} does not match |BE| = {}",
            b.len(),
            self.num_basic_events()
        );
        let mut value = vec![false; self.len()];
        let mut done = vec![false; self.len()];
        // Iterative post-order over the DAG from the top; every element is
        // reachable from the top in a well-formed tree.
        let mut stack: Vec<(ElementId, bool)> = vec![(self.top(), false)];
        while let Some((e, expanded)) = stack.pop() {
            if done[e.index()] {
                continue;
            }
            if let Some(bi) = self.basic_index(e) {
                value[e.index()] = b.get(bi);
                done[e.index()] = true;
                continue;
            }
            if !expanded {
                stack.push((e, true));
                for &c in self.children(e) {
                    if !done[c.index()] {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            let children = self.children(e);
            let failed_children = children.iter().filter(|&&c| value[c.index()]).count();
            value[e.index()] = match self.gate_type(e).unwrap_or_else(|| unreachable!("gate")) {
                GateType::And => failed_children == children.len(),
                GateType::Or => failed_children >= 1,
                GateType::Vot { k } => failed_children >= k as usize,
            };
            done[e.index()] = true;
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultTreeBuilder, GateType, StatusVector};

    fn tree_and_or() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["a", "b", "c"]).unwrap();
        b.gate("g", GateType::And, ["a", "b"]).unwrap();
        b.gate("top", GateType::Or, ["g", "c"]).unwrap();
        b.build("top").unwrap()
    }

    #[test]
    fn and_or_semantics() {
        let t = tree_and_or();
        let cases = [
            // (a, b, c) -> top
            ([false, false, false], false),
            ([true, false, false], false),
            ([true, true, false], true),
            ([false, false, true], true),
            ([true, true, true], true),
        ];
        for (bits, expect) in cases {
            let v = StatusVector::from_bits(bits);
            assert_eq!(t.evaluate(&v, t.top()), expect, "bits {bits:?}");
        }
    }

    #[test]
    fn vot_semantics_matches_counting() {
        for k in 1..=3u32 {
            let mut b = FaultTreeBuilder::new();
            b.basic_events(["a", "b", "c"]).unwrap();
            b.gate("top", GateType::Vot { k }, ["a", "b", "c"]).unwrap();
            let t = b.build("top").unwrap();
            for v in StatusVector::enumerate_all(3) {
                let expect = v.count_failed() >= k as usize;
                assert_eq!(t.evaluate(&v, t.top()), expect, "k={k} v={v}");
            }
        }
    }

    #[test]
    fn intermediate_elements_evaluated() {
        let t = tree_and_or();
        let g = t.element("g").unwrap();
        let v = StatusVector::from_bits([true, true, false]);
        assert!(t.evaluate(&v, g));
        let statuses = t.evaluate_all(&v);
        assert!(statuses[g.index()]);
        assert!(statuses[t.top().index()]);
        let c = t.element("c").unwrap();
        assert!(!statuses[c.index()]);
    }

    #[test]
    fn vot_1_is_or_and_vot_n_is_and() {
        let mut b1 = FaultTreeBuilder::new();
        b1.basic_events(["a", "b"]).unwrap();
        b1.gate("top", GateType::Vot { k: 1 }, ["a", "b"]).unwrap();
        let t1 = b1.build("top").unwrap();
        let mut b2 = FaultTreeBuilder::new();
        b2.basic_events(["a", "b"]).unwrap();
        b2.gate("top", GateType::Vot { k: 2 }, ["a", "b"]).unwrap();
        let t2 = b2.build("top").unwrap();
        for v in StatusVector::enumerate_all(2) {
            assert_eq!(t1.evaluate(&v, t1.top()), v.count_failed() >= 1);
            assert_eq!(t2.evaluate(&v, t2.top()), v.count_failed() == 2);
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_length_panics() {
        let t = tree_and_or();
        let v = StatusVector::all_operational(2);
        let _ = t.evaluate(&v, t.top());
    }
}
