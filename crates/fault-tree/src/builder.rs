//! Incremental construction of well-formed fault trees.

use std::collections::HashMap;

use crate::model::{Element, ElementId, ElementKind, FaultTree, FaultTreeError, GateType};

/// A declared element: its name, and for gates the type and child names.
type Declared = (String, Option<(GateType, Vec<String>)>);

/// A builder for [`FaultTree`]s.
///
/// Elements may be declared in any order; gates may reference children
/// declared later (forward references are resolved at
/// [`build`](FaultTreeBuilder::build) time). `build` validates
/// well-formedness per Definition 1.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{FaultTreeBuilder, GateType};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FaultTreeBuilder::new();
/// b.gate("top", GateType::Vot { k: 2 }, ["a", "b", "c"])?;
/// b.basic_events(["a", "b", "c"])?;
/// let tree = b.build("top")?;
/// assert_eq!(tree.num_basic_events(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct FaultTreeBuilder {
    declared: Vec<Declared>,
    names: HashMap<String, usize>,
}

impl FaultTreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn declare(
        &mut self,
        name: &str,
        body: Option<(GateType, Vec<String>)>,
    ) -> Result<(), FaultTreeError> {
        if self.names.contains_key(name) {
            return Err(FaultTreeError::DuplicateName(name.to_string()));
        }
        self.names.insert(name.to_string(), self.declared.len());
        self.declared.push((name.to_string(), body));
        Ok(())
    }

    /// Declares a basic event.
    ///
    /// # Errors
    ///
    /// Returns [`FaultTreeError::DuplicateName`] if the name is taken.
    pub fn basic_event(&mut self, name: &str) -> Result<&mut Self, FaultTreeError> {
        self.declare(name, None)?;
        Ok(self)
    }

    /// Declares several basic events at once.
    ///
    /// # Errors
    ///
    /// Returns [`FaultTreeError::DuplicateName`] on the first taken name.
    pub fn basic_events<I, S>(&mut self, names: I) -> Result<&mut Self, FaultTreeError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for n in names {
            self.basic_event(n.as_ref())?;
        }
        Ok(self)
    }

    /// Declares a gate with the given type and children (by name).
    ///
    /// # Errors
    ///
    /// Returns [`FaultTreeError::DuplicateName`] if the name is taken.
    pub fn gate<I, S>(
        &mut self,
        name: &str,
        gate_type: GateType,
        children: I,
    ) -> Result<&mut Self, FaultTreeError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let children: Vec<String> = children
            .into_iter()
            .map(|s| s.as_ref().to_string())
            .collect();
        self.declare(name, Some((gate_type, children)))?;
        Ok(self)
    }

    /// Finishes construction with `top` as the top element.
    ///
    /// # Errors
    ///
    /// Returns the first well-formedness violation found: unknown child or
    /// top names, duplicate names, empty gates, bad VOT arity, cycles, or
    /// elements unreachable from `top`.
    pub fn build(&self, top: &str) -> Result<FaultTree, FaultTreeError> {
        let mut elements = Vec::with_capacity(self.declared.len());
        let mut by_name = HashMap::new();
        for (i, (name, body)) in self.declared.iter().enumerate() {
            let kind = match body {
                None => ElementKind::Basic,
                Some((t, _)) => ElementKind::Gate(*t),
            };
            let children = match body {
                None => Vec::new(),
                Some((_, child_names)) => {
                    let mut ids = Vec::with_capacity(child_names.len());
                    for c in child_names {
                        let idx = self
                            .names
                            .get(c)
                            .ok_or_else(|| FaultTreeError::UnknownElement(c.clone()))?;
                        ids.push(ElementId(*idx as u32));
                    }
                    ids
                }
            };
            by_name.insert(name.clone(), ElementId(i as u32));
            elements.push(Element {
                name: name.clone(),
                kind,
                children,
            });
        }
        let top_id = *by_name
            .get(top)
            .ok_or_else(|| FaultTreeError::UnknownElement(top.to_string()))?;
        let mut basic = Vec::new();
        let mut basic_index = vec![None; elements.len()];
        for (i, el) in elements.iter().enumerate() {
            if matches!(el.kind, ElementKind::Basic) {
                basic_index[i] = Some(basic.len());
                basic.push(ElementId(i as u32));
            }
        }
        let tree = FaultTree {
            elements,
            by_name,
            top: top_id,
            basic,
            basic_index,
        };
        tree.validate()?;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = FaultTreeBuilder::new();
        b.gate("top", GateType::Or, ["later"]).unwrap();
        b.basic_event("later").unwrap();
        let t = b.build("top").unwrap();
        assert_eq!(t.num_basic_events(), 1);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = FaultTreeBuilder::new();
        b.basic_event("x").unwrap();
        let err = b.basic_event("x").unwrap_err();
        assert_eq!(err, FaultTreeError::DuplicateName("x".to_string()));
    }

    #[test]
    fn unknown_child_rejected() {
        let mut b = FaultTreeBuilder::new();
        b.gate("top", GateType::And, ["ghost"]).unwrap();
        let err = b.build("top").unwrap_err();
        assert_eq!(err, FaultTreeError::UnknownElement("ghost".to_string()));
    }

    #[test]
    fn unknown_top_rejected() {
        let b = FaultTreeBuilder::new();
        let err = b.build("top").unwrap_err();
        assert_eq!(err, FaultTreeError::UnknownElement("top".to_string()));
    }

    #[test]
    fn basic_index_in_declaration_order() {
        let mut b = FaultTreeBuilder::new();
        b.basic_event("b0").unwrap();
        b.gate("g", GateType::Or, ["b0", "b1"]).unwrap();
        b.basic_event("b1").unwrap();
        let t = b.build("g").unwrap();
        assert_eq!(t.basic_event_names(), vec!["b0", "b1"]);
    }
}
