//! A Galileo-style textual format for static fault trees.
//!
//! The grammar follows the classical Galileo dialect used by FTA tools
//! (Storm, DFTCalc), restricted to static gates and extended with an
//! optional `prob=` attribute feeding the probability layer:
//!
//! ```text
//! toplevel "IWoS";
//! "IWoS" and "CP/R" "MoT" "SH";
//! "MoT"  or  "CT" "DT" "AT" "CVT" "UT";
//! "V"    2of3 "a" "b" "c";
//! "IW"   prob=0.05;        // basic event with probability
//! "CT"   prob=0.1..0.3;    // basic event with interval bounds
//! "UT";                    // bare basic event
//! ```
//!
//! Names may be quoted (any characters except `"`) or bare identifiers.
//! Comments run from `//` to the end of the line. Events that are
//! referenced but never declared are implicitly basic events.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::builder::FaultTreeBuilder;
use crate::model::{FaultTree, FaultTreeError, GateType};
use crate::prob::ProbInterval;

/// A parsed Galileo model: the tree plus any `prob=` annotations.
///
/// A basic event carries *either* a point probability (`prob=0.1`,
/// recorded in [`GalileoModel::probabilities`]) *or* an interval bound
/// (`prob=0.1..0.3`, recorded in [`GalileoModel::intervals`]) — never
/// both.
#[derive(Debug, Clone)]
pub struct GalileoModel {
    /// The fault tree.
    pub tree: FaultTree,
    /// Basic-event probabilities by basic index (1.0e0-bounded), `None`
    /// where no point `prob=` was given.
    pub probabilities: Vec<Option<f64>>,
    /// Basic-event interval bounds by basic index, `None` where no
    /// `prob=lo..hi` was given.
    pub intervals: Vec<Option<ProbInterval>>,
}

impl GalileoModel {
    /// Whether any basic event carries an interval annotation.
    pub fn has_intervals(&self) -> bool {
        self.intervals.iter().any(Option::is_some)
    }
}

/// Errors produced by the Galileo parser.
#[derive(Debug, Clone, PartialEq)]
pub struct GalileoError {
    /// 1-based source line of the offence (0 when global).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for GalileoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "galileo: {}", self.message)
        } else {
            write!(f, "galileo: line {}: {}", self.line, self.message)
        }
    }
}

impl Error for GalileoError {}

impl From<FaultTreeError> for GalileoError {
    fn from(e: FaultTreeError) -> Self {
        GalileoError {
            line: 0,
            message: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Name(String),
    Keyword(String),
    Prob(f64),
    ProbRange(f64, f64),
    Vot(u32, u32),
    Semicolon,
}

fn tokenize_line(line: &str, lineno: usize) -> Result<Vec<Token>, GalileoError> {
    let line = match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    };
    let mut tokens = Vec::new();
    let mut chars = line.char_indices().peekable();
    let err = |msg: String| GalileoError {
        line: lineno,
        message: msg,
    };
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c == ';' {
            tokens.push(Token::Semicolon);
            chars.next();
            continue;
        }
        if c == '"' {
            chars.next();
            let mut name = String::new();
            let mut closed = false;
            for (_, ch) in chars.by_ref() {
                if ch == '"' {
                    closed = true;
                    break;
                }
                name.push(ch);
            }
            if !closed {
                return Err(err("unterminated quoted name".to_string()));
            }
            if name.is_empty() {
                return Err(err("empty quoted name".to_string()));
            }
            tokens.push(Token::Name(name));
            continue;
        }
        // Bare word: read until whitespace, quote or semicolon.
        let start = i;
        let mut end = i;
        while let Some(&(j, ch)) = chars.peek() {
            if ch.is_whitespace() || ch == ';' || ch == '"' {
                break;
            }
            end = j + ch.len_utf8();
            chars.next();
        }
        let word = &line[start..end];
        if let Some(rest) = word.strip_prefix("prob=") {
            if let Some((l, h)) = rest.split_once("..") {
                let lo: f64 = l
                    .parse()
                    .map_err(|_| err(format!("invalid interval endpoint `{l}`")))?;
                let hi: f64 = h
                    .parse()
                    .map_err(|_| err(format!("invalid interval endpoint `{h}`")))?;
                ProbInterval::new(lo, hi).map_err(&err)?;
                tokens.push(Token::ProbRange(lo, hi));
            } else {
                let p: f64 = rest
                    .parse()
                    .map_err(|_| err(format!("invalid probability `{rest}`")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(err(format!("probability {p} outside [0, 1]")));
                }
                tokens.push(Token::Prob(p));
            }
        } else if let Some((k, n)) = parse_kofn(word) {
            tokens.push(Token::Vot(k, n));
        } else if word.eq_ignore_ascii_case("toplevel")
            || word.eq_ignore_ascii_case("and")
            || word.eq_ignore_ascii_case("or")
        {
            tokens.push(Token::Keyword(word.to_ascii_lowercase()));
        } else {
            tokens.push(Token::Name(word.to_string()));
        }
    }
    Ok(tokens)
}

fn parse_kofn(word: &str) -> Option<(u32, u32)> {
    let lower = word.to_ascii_lowercase();
    let (k, n) = lower.split_once("of")?;
    let k: u32 = k.parse().ok()?;
    let n: u32 = n.parse().ok()?;
    Some((k, n))
}

/// Parses a Galileo model from text.
///
/// # Errors
///
/// Returns a [`GalileoError`] with the offending line for lexical or
/// grammatical problems, a missing/duplicate `toplevel`, duplicate
/// definitions, or any well-formedness violation of the resulting tree.
pub fn parse(input: &str) -> Result<GalileoModel, GalileoError> {
    struct GateDef {
        gate_type: GateType,
        children: Vec<String>,
        declared_n: Option<u32>,
        line: usize,
    }
    let mut toplevel: Option<(String, usize)> = None;
    let mut gates: Vec<(String, GateDef)> = Vec::new();
    let mut basics: Vec<(String, Option<f64>, Option<ProbInterval>, usize)> = Vec::new();
    let mut defined: HashMap<String, usize> = HashMap::new();
    let mut referenced: Vec<String> = Vec::new();

    for (lineno0, raw_line) in input.lines().enumerate() {
        let lineno = lineno0 + 1;
        let tokens = tokenize_line(raw_line, lineno)?;
        let err = |msg: String| GalileoError {
            line: lineno,
            message: msg,
        };
        // Split on semicolons: each statement parsed independently.
        for stmt in tokens.split(|t| *t == Token::Semicolon) {
            if stmt.is_empty() {
                continue;
            }
            match &stmt[0] {
                Token::Keyword(k) if k == "toplevel" => {
                    let name = match stmt.get(1) {
                        Some(Token::Name(n)) => n.clone(),
                        _ => return Err(err("expected name after `toplevel`".to_string())),
                    };
                    if stmt.len() > 2 {
                        return Err(err("unexpected tokens after toplevel name".to_string()));
                    }
                    if toplevel.is_some() {
                        return Err(err("duplicate `toplevel` declaration".to_string()));
                    }
                    toplevel = Some((name, lineno));
                }
                Token::Name(name) => {
                    if let Some(prev) = defined.get(name) {
                        return Err(err(format!("`{name}` already defined on line {prev}")));
                    }
                    defined.insert(name.clone(), lineno);
                    match stmt.get(1) {
                        None => basics.push((name.clone(), None, None, lineno)),
                        Some(Token::Prob(p)) => {
                            if stmt.len() > 2 {
                                return Err(err("unexpected tokens after probability".to_string()));
                            }
                            basics.push((name.clone(), Some(*p), None, lineno));
                        }
                        Some(Token::ProbRange(lo, hi)) => {
                            if stmt.len() > 2 {
                                return Err(err("unexpected tokens after probability".to_string()));
                            }
                            let iv = ProbInterval::new(*lo, *hi).map_err(&err)?;
                            basics.push((name.clone(), None, Some(iv), lineno));
                        }
                        Some(Token::Keyword(k)) if k == "and" || k == "or" => {
                            let gate_type = if k == "and" {
                                GateType::And
                            } else {
                                GateType::Or
                            };
                            let children = stmt[2..]
                                .iter()
                                .map(|t| match t {
                                    Token::Name(n) => {
                                        referenced.push(n.clone());
                                        Ok(n.clone())
                                    }
                                    other => {
                                        Err(err(format!("expected child name, found {other:?}")))
                                    }
                                })
                                .collect::<Result<Vec<_>, _>>()?;
                            if children.is_empty() {
                                return Err(err(format!("gate `{name}` has no children")));
                            }
                            gates.push((
                                name.clone(),
                                GateDef {
                                    gate_type,
                                    children,
                                    declared_n: None,
                                    line: lineno,
                                },
                            ));
                        }
                        Some(Token::Vot(kk, nn)) => {
                            let children = stmt[2..]
                                .iter()
                                .map(|t| match t {
                                    Token::Name(n) => {
                                        referenced.push(n.clone());
                                        Ok(n.clone())
                                    }
                                    other => {
                                        Err(err(format!("expected child name, found {other:?}")))
                                    }
                                })
                                .collect::<Result<Vec<_>, _>>()?;
                            gates.push((
                                name.clone(),
                                GateDef {
                                    gate_type: GateType::Vot { k: *kk },
                                    children,
                                    declared_n: Some(*nn),
                                    line: lineno,
                                },
                            ));
                        }
                        Some(other) => {
                            return Err(err(format!(
                                "expected gate keyword or probability, found {other:?}"
                            )))
                        }
                    }
                }
                other => return Err(err(format!("unexpected token {other:?}"))),
            }
        }
    }

    let (top, _) = toplevel.ok_or(GalileoError {
        line: 0,
        message: "missing `toplevel` declaration".to_string(),
    })?;

    // Referenced-but-undefined names become implicit basic events.
    for name in referenced {
        if !defined.contains_key(&name) {
            defined.insert(name.clone(), 0);
            basics.push((name, None, None, 0));
        }
    }

    // VOT arity sanity against the declared N.
    for (name, def) in &gates {
        if let Some(n) = def.declared_n {
            if def.children.len() != n as usize {
                return Err(GalileoError {
                    line: def.line,
                    message: format!(
                        "gate `{name}` declares VOT(_/{n}) but has {} children",
                        def.children.len()
                    ),
                });
            }
        }
    }

    let mut builder = FaultTreeBuilder::new();
    let mut probs: Vec<(String, Option<f64>, Option<ProbInterval>)> = Vec::new();
    for (name, p, iv, _) in &basics {
        builder.basic_event(name)?;
        probs.push((name.clone(), *p, *iv));
    }
    for (name, def) in &gates {
        builder.gate(name, def.gate_type, def.children.iter().map(String::as_str))?;
    }
    let tree = builder.build(&top)?;
    let mut probabilities = vec![None; tree.num_basic_events()];
    let mut intervals = vec![None; tree.num_basic_events()];
    for (name, p, iv) in probs {
        let e = tree.element(&name).expect("declared");
        let bi = tree.basic_index(e).expect("basic");
        probabilities[bi] = p;
        intervals[bi] = iv;
    }
    Ok(GalileoModel {
        tree,
        probabilities,
        intervals,
    })
}

/// Serialises a fault tree (and optional probabilities by basic index)
/// back to Galileo text. The output round-trips through [`parse`].
pub fn to_galileo(tree: &FaultTree, probabilities: Option<&[Option<f64>]>) -> String {
    to_galileo_annotated(tree, probabilities, None)
}

/// [`to_galileo`] with optional interval annotations: basic events with
/// an interval are written `prob=lo..hi`, those with a point probability
/// `prob=p`, the rest bare. An interval wins over a point probability in
/// the same slot. The output round-trips through [`parse`].
pub fn to_galileo_annotated(
    tree: &FaultTree,
    probabilities: Option<&[Option<f64>]>,
    intervals: Option<&[Option<ProbInterval>]>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "toplevel \"{}\";", tree.name(tree.top()));
    for g in tree.gates() {
        let kw = match tree.gate_type(g).expect("gate") {
            GateType::And => "and".to_string(),
            GateType::Or => "or".to_string(),
            GateType::Vot { k } => format!("{k}of{}", tree.children(g).len()),
        };
        let children: Vec<String> = tree
            .children(g)
            .iter()
            .map(|&c| format!("\"{}\"", tree.name(c)))
            .collect();
        let _ = writeln!(out, "\"{}\" {kw} {};", tree.name(g), children.join(" "));
    }
    for (bi, &e) in tree.basic_events().iter().enumerate() {
        let iv = intervals.and_then(|v| v.get(bi).copied().flatten());
        let p = probabilities.and_then(|v| v.get(bi).copied().flatten());
        match (iv, p) {
            (Some(iv), _) => {
                let _ = writeln!(out, "\"{}\" prob={}..{};", tree.name(e), iv.lo, iv.hi);
            }
            (None, Some(p)) => {
                let _ = writeln!(out, "\"{}\" prob={p};", tree.name(e));
            }
            (None, None) => {
                let _ = writeln!(out, "\"{}\";", tree.name(e));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn parse_simple_model() {
        let model = parse(
            r#"
            toplevel "Top";
            "Top" and "A" "B"; // comment
            "A" prob=0.25;
            "B";
            "#,
        )
        .unwrap();
        assert_eq!(model.tree.num_basic_events(), 2);
        let a = model.tree.element("A").unwrap();
        let bi = model.tree.basic_index(a).unwrap();
        assert_eq!(model.probabilities[bi], Some(0.25));
    }

    #[test]
    fn implicit_basic_events() {
        let model = parse("toplevel T; T or x y;").unwrap();
        assert_eq!(model.tree.num_basic_events(), 2);
        assert!(model.probabilities.iter().all(Option::is_none));
    }

    #[test]
    fn vot_gate_parses() {
        let model = parse("toplevel T; T 2of3 a b c;").unwrap();
        assert_eq!(
            model.tree.gate_type(model.tree.top()),
            Some(GateType::Vot { k: 2 })
        );
    }

    #[test]
    fn vot_arity_mismatch_rejected() {
        let err = parse("toplevel T; T 2of3 a b;").unwrap_err();
        assert!(err.message.contains("VOT"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn duplicate_definition_rejected() {
        let err = parse("toplevel T;\nT or a;\nT and b;").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("already defined"));
    }

    #[test]
    fn missing_toplevel_rejected() {
        let err = parse("\"T\" or a b;").unwrap_err();
        assert!(err.message.contains("missing `toplevel`"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let err = parse("toplevel \"T;").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn bad_probability_rejected() {
        let err = parse("toplevel T; T or a; a prob=1.5;").unwrap_err();
        assert!(err.message.contains("outside"));
    }

    #[test]
    fn covid_round_trips() {
        let tree = corpus::covid();
        let text = to_galileo(&tree, None);
        let model = parse(&text).unwrap();
        assert_eq!(model.tree.num_basic_events(), tree.num_basic_events());
        assert_eq!(model.tree.num_gates(), tree.num_gates());
        // Same minimal cut sets — structural equivalence.
        assert_eq!(
            crate::analysis::minimal_cut_sets_names(&tree, tree.top()),
            crate::analysis::minimal_cut_sets_names(&model.tree, model.tree.top()),
        );
    }

    #[test]
    fn probabilities_round_trip() {
        let model = parse("toplevel T; T or a b; a prob=0.125; b prob=0.5;").unwrap();
        let text = to_galileo(&model.tree, Some(&model.probabilities));
        let model2 = parse(&text).unwrap();
        assert_eq!(model.probabilities, model2.probabilities);
    }

    #[test]
    fn interval_annotations_parse() {
        let model = parse("toplevel T; T or a b; a prob=0.1..0.3; b prob=0.2;").unwrap();
        assert!(model.has_intervals());
        let a = model.tree.element("a").unwrap();
        let ai = model.tree.basic_index(a).unwrap();
        let b = model.tree.element("b").unwrap();
        let bi = model.tree.basic_index(b).unwrap();
        assert_eq!(
            model.intervals[ai],
            Some(crate::prob::ProbInterval { lo: 0.1, hi: 0.3 })
        );
        assert_eq!(model.probabilities[ai], None);
        assert_eq!(model.intervals[bi], None);
        assert_eq!(model.probabilities[bi], Some(0.2));
    }

    #[test]
    fn malformed_intervals_rejected() {
        for (src, needle) in [
            ("toplevel T; T or a; a prob=0.3..0.1;", "lo > hi"),
            ("toplevel T; T or a; a prob=0.1..1.5;", "outside"),
            ("toplevel T; T or a; a prob=x..0.5;", "invalid interval"),
            ("toplevel T; T or a; a prob=0.1..y;", "invalid interval"),
        ] {
            let err = parse(src).unwrap_err();
            assert!(err.message.contains(needle), "{src}: {err}");
            assert_eq!(err.line, 1, "{src}");
        }
    }

    #[test]
    fn intervals_round_trip() {
        let model = parse("toplevel T; T or a b c; a prob=0.125..0.5; b prob=0.25; c;").unwrap();
        let text = to_galileo_annotated(
            &model.tree,
            Some(&model.probabilities),
            Some(&model.intervals),
        );
        let model2 = parse(&text).unwrap();
        assert_eq!(model.probabilities, model2.probabilities);
        assert_eq!(model.intervals, model2.intervals);
    }

    #[test]
    fn point_models_have_no_intervals() {
        let model = parse("toplevel T; T or a b; a prob=0.125; b prob=0.5;").unwrap();
        assert!(!model.has_intervals());
        assert!(model.intervals.iter().all(Option::is_none));
    }

    #[test]
    fn quoted_names_with_special_characters() {
        let model = parse("toplevel \"CP/R\"; \"CP/R\" or \"a b\" c;").unwrap();
        assert!(model.tree.element("a b").is_some());
        assert!(model.tree.element("CP/R").is_some());
    }
}
