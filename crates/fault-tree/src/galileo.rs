//! A Galileo-style textual format for static fault trees.
//!
//! The grammar follows the classical Galileo dialect used by FTA tools
//! (Storm, DFTCalc), restricted to static gates and extended with an
//! optional `prob=` attribute feeding the probability layer:
//!
//! ```text
//! toplevel "IWoS";
//! "IWoS" and "CP/R" "MoT" "SH";
//! "MoT"  or  "CT" "DT" "AT" "CVT" "UT";
//! "V"    2of3 "a" "b" "c";
//! "IW"   prob=0.05;        // basic event with probability
//! "CT"   prob=0.1..0.3;    // basic event with interval bounds
//! "UT";                    // bare basic event
//! ```
//!
//! Names may be quoted (any characters except `"`) or bare identifiers.
//! Comments run from `//` to the end of the line. Events that are
//! referenced but never declared are implicitly basic events.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::builder::FaultTreeBuilder;
use crate::model::{FaultTree, FaultTreeError, GateType};
use crate::prob::ProbInterval;

/// A parsed Galileo model: the tree plus any `prob=` annotations.
///
/// A basic event carries *either* a point probability (`prob=0.1`,
/// recorded in [`GalileoModel::probabilities`]) *or* an interval bound
/// (`prob=0.1..0.3`, recorded in [`GalileoModel::intervals`]) — never
/// both.
#[derive(Debug, Clone)]
pub struct GalileoModel {
    /// The fault tree.
    pub tree: FaultTree,
    /// Basic-event probabilities by basic index (1.0e0-bounded), `None`
    /// where no point `prob=` was given.
    pub probabilities: Vec<Option<f64>>,
    /// Basic-event interval bounds by basic index, `None` where no
    /// `prob=lo..hi` was given.
    pub intervals: Vec<Option<ProbInterval>>,
    /// Source location of each *explicit* declaration: element name →
    /// `(line, column)`, both 1-based. Implicitly declared basic events
    /// (referenced but never defined) have no entry. Lint diagnostics
    /// and tooling use this to print `file:line:col`.
    pub locations: HashMap<String, (usize, usize)>,
}

impl GalileoModel {
    /// Whether any basic event carries an interval annotation.
    pub fn has_intervals(&self) -> bool {
        self.intervals.iter().any(Option::is_some)
    }
}

/// Errors produced by the Galileo parser.
#[derive(Debug, Clone, PartialEq)]
pub struct GalileoError {
    /// 1-based source line of the offence (0 when global).
    pub line: usize,
    /// 1-based source column (in characters) of the offending token
    /// (0 when unknown or global).
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for GalileoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "galileo: {}", self.message)
        } else if self.col == 0 {
            write!(f, "galileo: line {}: {}", self.line, self.message)
        } else {
            write!(
                f,
                "galileo: line {}:{}: {}",
                self.line, self.col, self.message
            )
        }
    }
}

impl Error for GalileoError {}

impl From<FaultTreeError> for GalileoError {
    fn from(e: FaultTreeError) -> Self {
        GalileoError {
            line: 0,
            col: 0,
            message: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Name(String),
    Keyword(String),
    Prob(f64),
    ProbRange(f64, f64),
    Vot(u32, u32),
    Semicolon,
}

/// A token plus its 1-based character column on the source line.
type SpannedToken = (Token, usize);

fn tokenize_line(line: &str, lineno: usize) -> Result<Vec<SpannedToken>, GalileoError> {
    let line = match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    };
    let mut tokens = Vec::new();
    let mut chars = line.char_indices().peekable();
    // 1-based character column of byte offset `i` (lines are short; the
    // rescan only happens per token/error, not per character).
    let col_at = |i: usize| line[..i].chars().count() + 1;
    let err = |i: usize, msg: String| GalileoError {
        line: lineno,
        col: col_at(i),
        message: msg,
    };
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c == ';' {
            tokens.push((Token::Semicolon, col_at(i)));
            chars.next();
            continue;
        }
        if c == '"' {
            chars.next();
            let mut name = String::new();
            let mut closed = false;
            for (_, ch) in chars.by_ref() {
                if ch == '"' {
                    closed = true;
                    break;
                }
                name.push(ch);
            }
            if !closed {
                return Err(err(i, "unterminated quoted name".to_string()));
            }
            if name.is_empty() {
                return Err(err(i, "empty quoted name".to_string()));
            }
            tokens.push((Token::Name(name), col_at(i)));
            continue;
        }
        // Bare word: read until whitespace, quote or semicolon.
        let start = i;
        let mut end = i;
        while let Some(&(j, ch)) = chars.peek() {
            if ch.is_whitespace() || ch == ';' || ch == '"' {
                break;
            }
            end = j + ch.len_utf8();
            chars.next();
        }
        let word = &line[start..end];
        if let Some(rest) = word.strip_prefix("prob=") {
            if let Some((l, h)) = rest.split_once("..") {
                let lo: f64 = l
                    .parse()
                    .map_err(|_| err(start, format!("invalid interval endpoint `{l}`")))?;
                let hi: f64 = h
                    .parse()
                    .map_err(|_| err(start, format!("invalid interval endpoint `{h}`")))?;
                ProbInterval::new(lo, hi).map_err(|m| err(start, m))?;
                tokens.push((Token::ProbRange(lo, hi), col_at(start)));
            } else {
                let p: f64 = rest
                    .parse()
                    .map_err(|_| err(start, format!("invalid probability `{rest}`")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(err(start, format!("probability {p} outside [0, 1]")));
                }
                tokens.push((Token::Prob(p), col_at(start)));
            }
        } else if let Some((k, n)) = parse_kofn(word) {
            tokens.push((Token::Vot(k, n), col_at(start)));
        } else if word.eq_ignore_ascii_case("toplevel")
            || word.eq_ignore_ascii_case("and")
            || word.eq_ignore_ascii_case("or")
        {
            tokens.push((Token::Keyword(word.to_ascii_lowercase()), col_at(start)));
        } else {
            tokens.push((Token::Name(word.to_string()), col_at(start)));
        }
    }
    Ok(tokens)
}

fn parse_kofn(word: &str) -> Option<(u32, u32)> {
    let lower = word.to_ascii_lowercase();
    let (k, n) = lower.split_once("of")?;
    let k: u32 = k.parse().ok()?;
    let n: u32 = n.parse().ok()?;
    Some((k, n))
}

/// Parses a Galileo model from text.
///
/// # Errors
///
/// Returns a [`GalileoError`] with the offending line for lexical or
/// grammatical problems, a missing/duplicate `toplevel`, duplicate
/// definitions, or any well-formedness violation of the resulting tree.
pub fn parse(input: &str) -> Result<GalileoModel, GalileoError> {
    struct GateDef {
        gate_type: GateType,
        children: Vec<String>,
        declared_n: Option<u32>,
        line: usize,
        col: usize,
    }
    let mut toplevel: Option<(String, usize)> = None;
    let mut gates: Vec<(String, GateDef)> = Vec::new();
    // Name, point probability, interval, (line, col) of the declaration.
    type BasicDecl = (String, Option<f64>, Option<ProbInterval>, (usize, usize));
    let mut basics: Vec<BasicDecl> = Vec::new();
    let mut defined: HashMap<String, usize> = HashMap::new();
    let mut referenced: Vec<String> = Vec::new();

    for (lineno0, raw_line) in input.lines().enumerate() {
        let lineno = lineno0 + 1;
        let tokens = tokenize_line(raw_line, lineno)?;
        let err = |col: usize, msg: String| GalileoError {
            line: lineno,
            col,
            message: msg,
        };
        // Split on semicolons: each statement parsed independently.
        for stmt in tokens.split(|(t, _)| *t == Token::Semicolon) {
            if stmt.is_empty() {
                continue;
            }
            match &stmt[0] {
                (Token::Keyword(k), col0) if k == "toplevel" => {
                    let name = match stmt.get(1) {
                        Some((Token::Name(n), _)) => n.clone(),
                        _ => return Err(err(*col0, "expected name after `toplevel`".to_string())),
                    };
                    if stmt.len() > 2 {
                        return Err(err(
                            stmt[2].1,
                            "unexpected tokens after toplevel name".to_string(),
                        ));
                    }
                    if toplevel.is_some() {
                        return Err(err(*col0, "duplicate `toplevel` declaration".to_string()));
                    }
                    toplevel = Some((name, lineno));
                }
                (Token::Name(name), col0) => {
                    if let Some(prev) = defined.get(name) {
                        return Err(err(
                            *col0,
                            format!("`{name}` already defined on line {prev}"),
                        ));
                    }
                    defined.insert(name.clone(), lineno);
                    let child_names = |toks: &[SpannedToken],
                                       referenced: &mut Vec<String>|
                     -> Result<Vec<String>, GalileoError> {
                        toks.iter()
                            .map(|(t, tcol)| match t {
                                Token::Name(n) => {
                                    referenced.push(n.clone());
                                    Ok(n.clone())
                                }
                                other => {
                                    Err(err(*tcol, format!("expected child name, found {other:?}")))
                                }
                            })
                            .collect()
                    };
                    match stmt.get(1) {
                        None => basics.push((name.clone(), None, None, (lineno, *col0))),
                        Some((Token::Prob(p), _)) => {
                            if stmt.len() > 2 {
                                return Err(err(
                                    stmt[2].1,
                                    "unexpected tokens after probability".to_string(),
                                ));
                            }
                            basics.push((name.clone(), Some(*p), None, (lineno, *col0)));
                        }
                        Some((Token::ProbRange(lo, hi), pcol)) => {
                            if stmt.len() > 2 {
                                return Err(err(
                                    stmt[2].1,
                                    "unexpected tokens after probability".to_string(),
                                ));
                            }
                            let iv = ProbInterval::new(*lo, *hi).map_err(|m| err(*pcol, m))?;
                            basics.push((name.clone(), None, Some(iv), (lineno, *col0)));
                        }
                        Some((Token::Keyword(k), _)) if k == "and" || k == "or" => {
                            let gate_type = if k == "and" {
                                GateType::And
                            } else {
                                GateType::Or
                            };
                            let children = child_names(&stmt[2..], &mut referenced)?;
                            if children.is_empty() {
                                return Err(err(*col0, format!("gate `{name}` has no children")));
                            }
                            gates.push((
                                name.clone(),
                                GateDef {
                                    gate_type,
                                    children,
                                    declared_n: None,
                                    line: lineno,
                                    col: *col0,
                                },
                            ));
                        }
                        Some((Token::Vot(kk, nn), _)) => {
                            let children = child_names(&stmt[2..], &mut referenced)?;
                            gates.push((
                                name.clone(),
                                GateDef {
                                    gate_type: GateType::Vot { k: *kk },
                                    children,
                                    declared_n: Some(*nn),
                                    line: lineno,
                                    col: *col0,
                                },
                            ));
                        }
                        Some((other, ocol)) => {
                            return Err(err(
                                *ocol,
                                format!("expected gate keyword or probability, found {other:?}"),
                            ))
                        }
                    }
                }
                (other, ocol) => return Err(err(*ocol, format!("unexpected token {other:?}"))),
            }
        }
    }

    let (top, _) = toplevel.ok_or(GalileoError {
        line: 0,
        col: 0,
        message: "missing `toplevel` declaration".to_string(),
    })?;

    // Referenced-but-undefined names become implicit basic events.
    for name in referenced {
        if !defined.contains_key(&name) {
            defined.insert(name.clone(), 0);
            basics.push((name, None, None, (0, 0)));
        }
    }

    // VOT arity sanity against the declared N.
    for (name, def) in &gates {
        if let Some(n) = def.declared_n {
            if def.children.len() != n as usize {
                return Err(GalileoError {
                    line: def.line,
                    col: def.col,
                    message: format!(
                        "gate `{name}` declares VOT(_/{n}) but has {} children",
                        def.children.len()
                    ),
                });
            }
        }
    }

    let mut builder = FaultTreeBuilder::new();
    let mut probs: Vec<(String, Option<f64>, Option<ProbInterval>)> = Vec::new();
    let mut locations: HashMap<String, (usize, usize)> = HashMap::new();
    for (name, p, iv, loc) in &basics {
        builder.basic_event(name)?;
        probs.push((name.clone(), *p, *iv));
        if loc.0 > 0 {
            locations.insert(name.clone(), *loc);
        }
    }
    for (name, def) in &gates {
        builder.gate(name, def.gate_type, def.children.iter().map(String::as_str))?;
        locations.insert(name.clone(), (def.line, def.col));
    }
    let tree = builder.build(&top)?;
    let mut probabilities = vec![None; tree.num_basic_events()];
    let mut intervals = vec![None; tree.num_basic_events()];
    for (name, p, iv) in probs {
        let e = tree
            .element(&name)
            .unwrap_or_else(|| unreachable!("declared"));
        let bi = tree.basic_index(e).unwrap_or_else(|| unreachable!("basic"));
        probabilities[bi] = p;
        intervals[bi] = iv;
    }
    Ok(GalileoModel {
        tree,
        probabilities,
        intervals,
        locations,
    })
}

/// Serialises a fault tree (and optional probabilities by basic index)
/// back to Galileo text. The output round-trips through [`parse`].
pub fn to_galileo(tree: &FaultTree, probabilities: Option<&[Option<f64>]>) -> String {
    to_galileo_annotated(tree, probabilities, None)
}

/// [`to_galileo`] with optional interval annotations: basic events with
/// an interval are written `prob=lo..hi`, those with a point probability
/// `prob=p`, the rest bare. An interval wins over a point probability in
/// the same slot. The output round-trips through [`parse`].
pub fn to_galileo_annotated(
    tree: &FaultTree,
    probabilities: Option<&[Option<f64>]>,
    intervals: Option<&[Option<ProbInterval>]>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "toplevel \"{}\";", tree.name(tree.top()));
    for g in tree.gates() {
        let kw = match tree.gate_type(g).unwrap_or_else(|| unreachable!("gate")) {
            GateType::And => "and".to_string(),
            GateType::Or => "or".to_string(),
            GateType::Vot { k } => format!("{k}of{}", tree.children(g).len()),
        };
        let children: Vec<String> = tree
            .children(g)
            .iter()
            .map(|&c| format!("\"{}\"", tree.name(c)))
            .collect();
        let _ = writeln!(out, "\"{}\" {kw} {};", tree.name(g), children.join(" "));
    }
    for (bi, &e) in tree.basic_events().iter().enumerate() {
        let iv = intervals.and_then(|v| v.get(bi).copied().flatten());
        let p = probabilities.and_then(|v| v.get(bi).copied().flatten());
        match (iv, p) {
            (Some(iv), _) => {
                let _ = writeln!(out, "\"{}\" prob={}..{};", tree.name(e), iv.lo, iv.hi);
            }
            (None, Some(p)) => {
                let _ = writeln!(out, "\"{}\" prob={p};", tree.name(e));
            }
            (None, None) => {
                let _ = writeln!(out, "\"{}\";", tree.name(e));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn parse_simple_model() {
        let model = parse(
            r#"
            toplevel "Top";
            "Top" and "A" "B"; // comment
            "A" prob=0.25;
            "B";
            "#,
        )
        .unwrap();
        assert_eq!(model.tree.num_basic_events(), 2);
        let a = model.tree.element("A").unwrap();
        let bi = model.tree.basic_index(a).unwrap();
        assert_eq!(model.probabilities[bi], Some(0.25));
    }

    #[test]
    fn implicit_basic_events() {
        let model = parse("toplevel T; T or x y;").unwrap();
        assert_eq!(model.tree.num_basic_events(), 2);
        assert!(model.probabilities.iter().all(Option::is_none));
    }

    #[test]
    fn vot_gate_parses() {
        let model = parse("toplevel T; T 2of3 a b c;").unwrap();
        assert_eq!(
            model.tree.gate_type(model.tree.top()),
            Some(GateType::Vot { k: 2 })
        );
    }

    #[test]
    fn vot_arity_mismatch_rejected() {
        let err = parse("toplevel T; T 2of3 a b;").unwrap_err();
        assert!(err.message.contains("VOT"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn duplicate_definition_rejected() {
        let err = parse("toplevel T;\nT or a;\nT and b;").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("already defined"));
    }

    #[test]
    fn missing_toplevel_rejected() {
        let err = parse("\"T\" or a b;").unwrap_err();
        assert!(err.message.contains("missing `toplevel`"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let err = parse("toplevel \"T;").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn bad_probability_rejected() {
        let err = parse("toplevel T; T or a; a prob=1.5;").unwrap_err();
        assert!(err.message.contains("outside"));
    }

    #[test]
    fn covid_round_trips() {
        let tree = corpus::covid();
        let text = to_galileo(&tree, None);
        let model = parse(&text).unwrap();
        assert_eq!(model.tree.num_basic_events(), tree.num_basic_events());
        assert_eq!(model.tree.num_gates(), tree.num_gates());
        // Same minimal cut sets — structural equivalence.
        assert_eq!(
            crate::analysis::minimal_cut_sets_names(&tree, tree.top()),
            crate::analysis::minimal_cut_sets_names(&model.tree, model.tree.top()),
        );
    }

    #[test]
    fn probabilities_round_trip() {
        let model = parse("toplevel T; T or a b; a prob=0.125; b prob=0.5;").unwrap();
        let text = to_galileo(&model.tree, Some(&model.probabilities));
        let model2 = parse(&text).unwrap();
        assert_eq!(model.probabilities, model2.probabilities);
    }

    #[test]
    fn interval_annotations_parse() {
        let model = parse("toplevel T; T or a b; a prob=0.1..0.3; b prob=0.2;").unwrap();
        assert!(model.has_intervals());
        let a = model.tree.element("a").unwrap();
        let ai = model.tree.basic_index(a).unwrap();
        let b = model.tree.element("b").unwrap();
        let bi = model.tree.basic_index(b).unwrap();
        assert_eq!(
            model.intervals[ai],
            Some(crate::prob::ProbInterval { lo: 0.1, hi: 0.3 })
        );
        assert_eq!(model.probabilities[ai], None);
        assert_eq!(model.intervals[bi], None);
        assert_eq!(model.probabilities[bi], Some(0.2));
    }

    #[test]
    fn malformed_intervals_rejected() {
        for (src, needle) in [
            ("toplevel T; T or a; a prob=0.3..0.1;", "lo > hi"),
            ("toplevel T; T or a; a prob=0.1..1.5;", "outside"),
            ("toplevel T; T or a; a prob=x..0.5;", "invalid interval"),
            ("toplevel T; T or a; a prob=0.1..y;", "invalid interval"),
        ] {
            let err = parse(src).unwrap_err();
            assert!(err.message.contains(needle), "{src}: {err}");
            assert_eq!(err.line, 1, "{src}");
        }
    }

    #[test]
    fn intervals_round_trip() {
        let model = parse("toplevel T; T or a b c; a prob=0.125..0.5; b prob=0.25; c;").unwrap();
        let text = to_galileo_annotated(
            &model.tree,
            Some(&model.probabilities),
            Some(&model.intervals),
        );
        let model2 = parse(&text).unwrap();
        assert_eq!(model.probabilities, model2.probabilities);
        assert_eq!(model.intervals, model2.intervals);
    }

    #[test]
    fn point_models_have_no_intervals() {
        let model = parse("toplevel T; T or a b; a prob=0.125; b prob=0.5;").unwrap();
        assert!(!model.has_intervals());
        assert!(model.intervals.iter().all(Option::is_none));
    }

    #[test]
    fn errors_carry_line_and_column() {
        // `prob=x` starts at character column 23 of line 1.
        let err = parse("toplevel T; T or a; a prob=x;").unwrap_err();
        assert_eq!((err.line, err.col), (1, 23), "{err}");
        assert_eq!(
            err.to_string(),
            "galileo: line 1:23: invalid probability `x`"
        );

        // The duplicate definition is the `T` opening line 3.
        let err = parse("toplevel T;\nT or a;\nT and b;").unwrap_err();
        assert_eq!((err.line, err.col), (3, 1), "{err}");

        // VOT arity mismatch points at the gate's name token.
        let err = parse("toplevel T;\n  T 2of3 a b;").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3), "{err}");

        // The unterminated quote is the quote character itself.
        let err = parse("toplevel \"T;").unwrap_err();
        assert_eq!((err.line, err.col), (1, 10), "{err}");

        // Columns count characters, not bytes.
        let err = parse("toplevel Tö; Tö or a; a prob=x;").unwrap_err();
        assert_eq!((err.line, err.col), (1, 25), "{err}");

        // Global errors carry no location and render without one.
        let err = parse("\"T\" or a b;").unwrap_err();
        assert_eq!((err.line, err.col), (0, 0));
        assert_eq!(err.to_string(), "galileo: missing `toplevel` declaration");
    }

    #[test]
    fn declaration_locations_recorded_and_round_trip() {
        let model =
            parse("toplevel T;\nT or g1 b;\n  g1 and \"x\" y;\nb prob=0.5;\n\"x\";\n").unwrap();
        assert_eq!(model.locations.get("T"), Some(&(2, 1)));
        assert_eq!(model.locations.get("g1"), Some(&(3, 3)));
        assert_eq!(model.locations.get("b"), Some(&(4, 1)));
        assert_eq!(model.locations.get("x"), Some(&(5, 1)));
        // `y` is implicit: referenced, never declared, no location.
        assert_eq!(model.locations.get("y"), None);

        // Serialise and reparse: every element of the emitted text is an
        // explicit declaration, so the reparse locates all of them.
        let text = to_galileo(&model.tree, Some(&model.probabilities));
        let model2 = parse(&text).unwrap();
        for e in model2.tree.iter() {
            assert!(
                model2.locations.contains_key(model2.tree.name(e)),
                "{} has no location after round-trip",
                model2.tree.name(e)
            );
        }
    }

    #[test]
    fn quoted_names_with_special_characters() {
        let model = parse("toplevel \"CP/R\"; \"CP/R\" or \"a b\" c;").unwrap();
        assert!(model.tree.element("a b").is_some());
        assert!(model.tree.element("CP/R").is_some());
    }
}
