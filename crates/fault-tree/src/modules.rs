//! Module detection: gates whose cone is *independent* of the rest of the
//! tree (no element below the gate occurs anywhere else).
//!
//! Modules are the classical enabler of compositional fault-tree analysis
//! (Dutuit & Rauzy, 1996): a module can be analysed in isolation and its
//! result substituted as a virtual basic event. They also connect to the
//! paper's `IDP` operator — a module is independent (shares no
//! influencing basic events) of every disjoint part of the tree.

use crate::model::{ElementId, FaultTree};

/// Returns all gates that are modules of `tree`, in declaration order.
/// The top element is always a module.
///
/// A gate `g` is a *module* when every element in its cone (its proper
/// descendants) is reachable from outside the cone only through `g`.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, modules};
/// let tree = corpus::fig1();
/// let mods = modules::modules(&tree);
/// let names: Vec<&str> = mods.iter().map(|&g| tree.name(g)).collect();
/// // No shared events in Fig. 1: every gate is a module.
/// assert_eq!(names, vec!["CP", "CR", "CP/R"]);
/// ```
pub fn modules(tree: &FaultTree) -> Vec<ElementId> {
    // parents[x] = gates having x as a child.
    let mut parents: Vec<Vec<ElementId>> = vec![Vec::new(); tree.len()];
    for g in tree.gates() {
        for &c in tree.children(g) {
            parents[c.index()].push(g);
        }
    }
    let mut out = Vec::new();
    for g in tree.gates() {
        if is_module_with_parents(tree, g, &parents) {
            out.push(g);
        }
    }
    out
}

/// Whether a single gate is a module (see [`modules`]).
pub fn is_module(tree: &FaultTree, gate: ElementId) -> bool {
    let mut parents: Vec<Vec<ElementId>> = vec![Vec::new(); tree.len()];
    for g in tree.gates() {
        for &c in tree.children(g) {
            parents[c.index()].push(g);
        }
    }
    is_module_with_parents(tree, gate, &parents)
}

fn is_module_with_parents(tree: &FaultTree, gate: ElementId, parents: &[Vec<ElementId>]) -> bool {
    // Cone of `gate`: all proper descendants.
    let mut in_cone = vec![false; tree.len()];
    let mut stack: Vec<ElementId> = tree.children(gate).to_vec();
    while let Some(x) = stack.pop() {
        if in_cone[x.index()] {
            continue;
        }
        in_cone[x.index()] = true;
        stack.extend(tree.children(x).iter().copied());
    }
    // A descendant's parents must all be the gate itself or inside the
    // cone; otherwise some other part of the tree shares it.
    for x in tree.iter() {
        if !in_cone[x.index()] {
            continue;
        }
        for &p in &parents[x.index()] {
            if p != gate && !in_cone[p.index()] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{corpus, FaultTreeBuilder, GateType};

    fn names(tree: &FaultTree, mods: &[ElementId]) -> Vec<String> {
        mods.iter().map(|&g| tree.name(g).to_string()).collect()
    }

    #[test]
    fn top_is_always_a_module() {
        for tree in [corpus::fig1(), corpus::covid(), corpus::or2()] {
            assert!(is_module(&tree, tree.top()), "{}", tree.name(tree.top()));
        }
    }

    #[test]
    fn fig1_every_gate_is_a_module() {
        let tree = corpus::fig1();
        assert_eq!(names(&tree, &modules(&tree)), vec!["CP", "CR", "CP/R"]);
    }

    #[test]
    fn covid_shared_events_break_modularity() {
        let tree = corpus::covid();
        let mods = modules(&tree);
        let mod_names = names(&tree, &mods);
        // IWoS is a module (it is the top); CP is not (IW is shared with
        // CIW, DT, AT, CVT); CR is not (IT shared with CIO).
        assert!(mod_names.contains(&"IWoS".to_string()));
        assert!(!mod_names.contains(&"CP".to_string()));
        assert!(!mod_names.contains(&"CR".to_string()));
        assert!(!mod_names.contains(&"SH".to_string())); // H1 is shared
    }

    #[test]
    fn shared_gate_is_not_inside_two_modules() {
        // top = AND(g1, g2); g1 = OR(shared, a); g2 = OR(shared, b);
        // shared = AND(x, y). Neither g1 nor g2 is a module, but shared is.
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["a", "b", "x", "y"]).unwrap();
        b.gate("shared", GateType::And, ["x", "y"]).unwrap();
        b.gate("g1", GateType::Or, ["shared", "a"]).unwrap();
        b.gate("g2", GateType::Or, ["shared", "b"]).unwrap();
        b.gate("top", GateType::And, ["g1", "g2"]).unwrap();
        let tree = b.build("top").unwrap();
        let mod_names = names(&tree, &modules(&tree));
        assert_eq!(mod_names, vec!["shared", "top"]);
    }

    #[test]
    fn module_is_idp_of_disjoint_parts() {
        // Cross-check with the logic's IDP notion: a module's cone shares
        // no basic events with the rest, so the module gate and any gate
        // outside its cone with disjoint leaves are independent.
        let tree = corpus::fig1();
        // CP and CR are both modules with disjoint cones.
        let cp_cone = tree.basic_events_under(tree.element("CP").unwrap());
        let cr_cone = tree.basic_events_under(tree.element("CR").unwrap());
        assert!(cp_cone.iter().all(|e| !cr_cone.contains(e)));
    }
}
