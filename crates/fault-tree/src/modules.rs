//! Module detection: gates whose cone is *independent* of the rest of the
//! tree (no element below the gate occurs anywhere else).
//!
//! Modules are the classical enabler of compositional fault-tree analysis
//! (Dutuit & Rauzy, 1996): a module can be analysed in isolation and its
//! result substituted as a virtual basic event. They also connect to the
//! paper's `IDP` operator — a module is independent (shares no
//! influencing basic events) of every disjoint part of the tree — and
//! they are the unit of parallel BDD construction
//! ([`bdd::TreeBdd::compile_parallel`](crate::bdd::TreeBdd::compile_parallel)):
//! disjoint modules compile into per-worker arenas and stitch back into
//! the parent diagram.
//!
//! Detection runs the Dutuit–Rauzy linear-time algorithm: one DFS from
//! the top stamps every element with its first visit, last visit and
//! completion times, and a gate is a module exactly when every visit to
//! its cone happened strictly inside the gate's own first-visit/completion
//! window. Shared-subtree DAGs are handled correctly: an element reached
//! from two branches is re-stamped on the later arrival, pushing its last
//! visit outside the earlier branch's window. One decomposition serves
//! any number of per-gate queries in O(1) each.

use crate::model::{ElementId, FaultTree};

/// The result of the linear-time Dutuit–Rauzy decomposition: DFS visit
/// windows for every element, answering per-gate module queries in O(1).
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, modules::Decomposition};
/// let tree = corpus::covid();
/// let d = Decomposition::new(&tree);
/// // The top is always a module; `CP` shares `IW` with other branches.
/// assert!(d.is_module(tree.top()));
/// assert!(!d.is_module(tree.element("CP").unwrap()));
/// ```
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Time of the first arrival at each element.
    first: Vec<u64>,
    /// Time of the latest arrival (re-stamped on every revisit).
    last: Vec<u64>,
    /// Completion time: stamped after the element's cone was explored.
    post: Vec<u64>,
    /// Minimum `first` over the element's *proper* descendants
    /// (`u64::MAX` for basic events).
    min_first: Vec<u64>,
    /// Maximum `last` over the element's proper descendants (`0` for
    /// basic events). Recomputed bottom-up after the DFS, so revisits
    /// from *later* branches are visible to earlier ones.
    max_last: Vec<u64>,
}

impl Decomposition {
    /// Runs the decomposition: one DFS plus one reverse-topological
    /// aggregation pass — `O(V + E)` total.
    pub fn new(tree: &FaultTree) -> Self {
        let n = tree.len();
        let mut first = vec![0u64; n];
        let mut last = vec![0u64; n];
        let mut post = vec![0u64; n];
        let mut clock = 0u64;
        // Iterative DFS from the top; children explored on first arrival
        // only, revisits just re-stamp `last`. `finish_order` records
        // completion order (children always complete before parents).
        let mut finish_order: Vec<ElementId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(ElementId, bool)> = vec![(tree.top(), false)];
        while let Some((x, expanded)) = stack.pop() {
            let xi = x.index();
            if expanded {
                clock += 1;
                post[xi] = clock;
                finish_order.push(x);
                continue;
            }
            clock += 1;
            if visited[xi] {
                last[xi] = clock;
                continue;
            }
            visited[xi] = true;
            first[xi] = clock;
            last[xi] = clock;
            stack.push((x, true));
            // Reverse order so children are explored in declaration order.
            for &c in tree.children(x).iter().rev() {
                stack.push((c, false));
            }
        }
        // Bottom-up aggregates over proper descendants. `finish_order`
        // is a reverse-topological order of the reachable DAG, so every
        // child's aggregate is final when its parents fold it in.
        let mut min_first = vec![u64::MAX; n];
        let mut max_last = vec![0u64; n];
        for &g in &finish_order {
            let gi = g.index();
            for &c in tree.children(g) {
                let ci = c.index();
                min_first[gi] = min_first[gi].min(first[ci]).min(min_first[ci]);
                max_last[gi] = max_last[gi].max(last[ci]).max(max_last[ci]);
            }
        }
        Decomposition {
            first,
            last,
            post,
            min_first,
            max_last,
        }
    }

    /// Whether `gate` is a module: every visit to its proper descendants
    /// happened strictly between the gate's first arrival and its
    /// completion, i.e. nothing below the gate is reachable from outside
    /// its cone. Basic events are trivially modules.
    pub fn is_module(&self, gate: ElementId) -> bool {
        let gi = gate.index();
        if self.min_first[gi] == u64::MAX {
            return true; // no descendants: a basic event
        }
        self.min_first[gi] > self.first[gi] && self.max_last[gi] < self.post[gi]
    }

    /// The DFS visit window `(first, post)` of an element — exposed for
    /// diagnostics and tests.
    pub fn window(&self, e: ElementId) -> (u64, u64) {
        (self.first[e.index()], self.post[e.index()])
    }

    /// The latest arrival time at an element (revisits re-stamp it).
    pub fn last_visit(&self, e: ElementId) -> u64 {
        self.last[e.index()]
    }
}

/// Returns all gates that are modules of `tree`, in declaration order.
/// The top element is always a module.
///
/// A gate `g` is a *module* when every element in its cone (its proper
/// descendants) is reachable from outside the cone only through `g` —
/// correct on shared-subtree DAGs: a gate whose descendant set overlaps
/// another branch is not a module.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, modules};
/// let tree = corpus::fig1();
/// let mods = modules::modules(&tree);
/// let names: Vec<&str> = mods.iter().map(|&g| tree.name(g)).collect();
/// // No shared events in Fig. 1: every gate is a module.
/// assert_eq!(names, vec!["CP", "CR", "CP/R"]);
/// ```
pub fn modules(tree: &FaultTree) -> Vec<ElementId> {
    let d = Decomposition::new(tree);
    tree.gates().filter(|&g| d.is_module(g)).collect()
}

/// Whether a single gate is a module (see [`modules`]). Runs a full
/// decomposition; batch callers should hold a [`Decomposition`] and query
/// it directly.
pub fn is_module(tree: &FaultTree, gate: ElementId) -> bool {
    Decomposition::new(tree).is_module(gate)
}

/// The *maximal proper* modules of `tree` with at least `min_cone`
/// elements in their cone (the module root included): every returned
/// gate is a module, none is the top, none is contained in another
/// returned module, and their cones are pairwise disjoint — the work
/// units of parallel construction.
///
/// Modules form a laminar family (two modules are nested or disjoint),
/// so greedily taking outermost modules in DFS-discovery order yields
/// the unique maximal antichain.
pub fn top_modules(tree: &FaultTree, min_cone: usize) -> Vec<ElementId> {
    let d = Decomposition::new(tree);
    let mut covered = vec![false; tree.len()];
    covered[tree.top().index()] = true;
    // Gates in ascending first-visit order: outermost candidates first.
    let mut gates: Vec<ElementId> = tree.gates().filter(|&g| d.first[g.index()] > 0).collect();
    gates.sort_by_key(|&g| d.first[g.index()]);
    let mut out = Vec::new();
    for g in gates {
        if covered[g.index()] || !d.is_module(g) {
            continue;
        }
        let cone = cone_size_and_mark(tree, g, &mut covered);
        if cone >= min_cone {
            out.push(g);
        }
    }
    out.sort_by_key(|&g| g.index());
    out
}

/// Number of elements in the cone rooted at `g` (inclusive), marking
/// every one as covered.
fn cone_size_and_mark(tree: &FaultTree, g: ElementId, covered: &mut [bool]) -> usize {
    let mut count = 0usize;
    let mut stack = vec![g];
    while let Some(x) = stack.pop() {
        if covered[x.index()] {
            continue;
        }
        covered[x.index()] = true;
        count += 1;
        stack.extend(tree.children(x).iter().copied());
    }
    count
}

/// All elements of the cone rooted at `g`, the root included.
pub fn cone(tree: &FaultTree, g: ElementId) -> Vec<ElementId> {
    let mut seen = vec![false; tree.len()];
    let mut out = Vec::new();
    let mut stack = vec![g];
    while let Some(x) = stack.pop() {
        if seen[x.index()] {
            continue;
        }
        seen[x.index()] = true;
        out.push(x);
        stack.extend(tree.children(x).iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{corpus, FaultTreeBuilder, GateType};

    fn names(tree: &FaultTree, mods: &[ElementId]) -> Vec<String> {
        mods.iter().map(|&g| tree.name(g).to_string()).collect()
    }

    #[test]
    fn top_is_always_a_module() {
        for tree in [corpus::fig1(), corpus::covid(), corpus::or2()] {
            assert!(is_module(&tree, tree.top()), "{}", tree.name(tree.top()));
        }
    }

    #[test]
    fn fig1_every_gate_is_a_module() {
        let tree = corpus::fig1();
        assert_eq!(names(&tree, &modules(&tree)), vec!["CP", "CR", "CP/R"]);
    }

    #[test]
    fn covid_shared_events_break_modularity() {
        let tree = corpus::covid();
        let mods = modules(&tree);
        let mod_names = names(&tree, &mods);
        // IWoS is a module (it is the top); CP is not (IW is shared with
        // CIW, DT, AT, CVT); CR is not (IT shared with CIO).
        assert!(mod_names.contains(&"IWoS".to_string()));
        assert!(!mod_names.contains(&"CP".to_string()));
        assert!(!mod_names.contains(&"CR".to_string()));
        assert!(!mod_names.contains(&"SH".to_string())); // H1 is shared
    }

    #[test]
    fn shared_gate_is_not_inside_two_modules() {
        // top = AND(g1, g2); g1 = OR(shared, a); g2 = OR(shared, b);
        // shared = AND(x, y). Neither g1 nor g2 is a module, but shared is.
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["a", "b", "x", "y"]).unwrap();
        b.gate("shared", GateType::And, ["x", "y"]).unwrap();
        b.gate("g1", GateType::Or, ["shared", "a"]).unwrap();
        b.gate("g2", GateType::Or, ["shared", "b"]).unwrap();
        b.gate("top", GateType::And, ["g1", "g2"]).unwrap();
        let tree = b.build("top").unwrap();
        let mod_names = names(&tree, &modules(&tree));
        assert_eq!(mod_names, vec!["shared", "top"]);
    }

    /// Regression: a basic event shared between two branches of a DAG
    /// breaks the modularity of *both* enclosing gates — including the
    /// branch the DFS explores first, whose window closes before the
    /// second branch revisits the shared leaf.
    #[test]
    fn shared_basic_event_breaks_both_branches() {
        // top = AND(g1, g2); g1 = OR(x, a); g2 = OR(x, b) — x is shared.
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["x", "a", "b"]).unwrap();
        b.gate("g1", GateType::Or, ["x", "a"]).unwrap();
        b.gate("g2", GateType::Or, ["x", "b"]).unwrap();
        b.gate("top", GateType::And, ["g1", "g2"]).unwrap();
        let tree = b.build("top").unwrap();
        let g1 = tree.element("g1").unwrap();
        let g2 = tree.element("g2").unwrap();
        assert!(!is_module(&tree, g1), "g1 shares x with g2");
        assert!(!is_module(&tree, g2), "g2 shares x with g1");
        assert!(is_module(&tree, tree.top()));
        assert_eq!(names(&tree, &modules(&tree)), vec!["top"]);
    }

    /// The linear-time detector agrees with the quadratic parents-based
    /// check on every gate of every corpus tree.
    #[test]
    fn agrees_with_parents_based_reference() {
        fn reference(tree: &FaultTree, gate: ElementId) -> bool {
            let mut parents: Vec<Vec<ElementId>> = vec![Vec::new(); tree.len()];
            for g in tree.gates() {
                for &c in tree.children(g) {
                    parents[c.index()].push(g);
                }
            }
            let mut in_cone = vec![false; tree.len()];
            let mut stack: Vec<ElementId> = tree.children(gate).to_vec();
            while let Some(x) = stack.pop() {
                if in_cone[x.index()] {
                    continue;
                }
                in_cone[x.index()] = true;
                stack.extend(tree.children(x).iter().copied());
            }
            tree.iter().filter(|x| in_cone[x.index()]).all(|x| {
                parents[x.index()]
                    .iter()
                    .all(|&p| p == gate || in_cone[p.index()])
            })
        }
        for tree in [
            corpus::or2(),
            corpus::fig1(),
            corpus::table1_tree(),
            corpus::covid(),
            corpus::pressure_tank(),
            corpus::attack_tree(),
            corpus::chain(5),
        ] {
            let d = Decomposition::new(&tree);
            for g in tree.gates() {
                assert_eq!(
                    d.is_module(g),
                    reference(&tree, g),
                    "{} in tree with top {}",
                    tree.name(g),
                    tree.name(tree.top())
                );
            }
        }
    }

    #[test]
    fn top_modules_are_disjoint_and_maximal() {
        let tree = corpus::pressure_tank();
        // Every gate is a module; the maximal proper ones are the direct
        // children of the top that are gates.
        let tops = top_modules(&tree, 1);
        let top_names = names(&tree, &tops);
        assert_eq!(top_names, vec!["Overpressure"]);
        // Cones of returned modules never overlap.
        let covid = corpus::covid();
        let tops = top_modules(&covid, 1);
        let mut seen = vec![false; covid.len()];
        for &m in &tops {
            for e in cone(&covid, m) {
                assert!(!seen[e.index()], "overlapping cones at {}", covid.name(e));
                seen[e.index()] = true;
            }
        }
    }

    #[test]
    fn module_is_idp_of_disjoint_parts() {
        // Cross-check with the logic's IDP notion: a module's cone shares
        // no basic events with the rest, so the module gate and any gate
        // outside its cone with disjoint leaves are independent.
        let tree = corpus::fig1();
        // CP and CR are both modules with disjoint cones.
        let cp_cone = tree.basic_events_under(tree.element("CP").unwrap());
        let cr_cone = tree.basic_events_under(tree.element("CR").unwrap());
        assert!(cp_cone.iter().all(|e| !cr_cone.contains(e)));
    }
}
