//! Qualitative fault-tree analysis: cut sets and path sets
//! (Definitions 3–4), and their minimal variants computed by two
//! independent engines:
//!
//! 1. the paper's primed-variable BDD construction (the `MCS` case of
//!    Algorithm 1), and
//! 2. Rauzy's minimal-solutions algorithm (`minsol`), together with the
//!    dual construction for minimal path sets.
//!
//! Both engines return identical canonical results; the test-suite
//! cross-checks them against each other and against an exhaustive
//! reference on small trees.

use std::collections::HashMap;

use bfl_bdd::{Bdd, Manager, Var};

use crate::bdd::TreeBdd;
use crate::model::{ElementId, FaultTree};
use crate::order::VariableOrdering;
use crate::status::StatusVector;

impl FaultTree {
    /// Is `b` a cut set for `e` (Definition 3): `Φ_T(b, e) = 1`?
    pub fn is_cut_set(&self, b: &StatusVector, e: ElementId) -> bool {
        self.evaluate(b, e)
    }

    /// Is `b` a path set for `e` (Definition 4): `Φ_T(b, e) = 0`?
    pub fn is_path_set(&self, b: &StatusVector, e: ElementId) -> bool {
        !self.evaluate(b, e)
    }

    /// Is `b` a *minimal* cut set for `e`: a cut set no proper sub-vector
    /// of which is a cut set?
    ///
    /// For the monotone structure functions of fault trees it suffices to
    /// check the vectors obtained by repairing one failed event.
    pub fn is_minimal_cut_set(&self, b: &StatusVector, e: ElementId) -> bool {
        if !self.is_cut_set(b, e) {
            return false;
        }
        b.failed_indices()
            .into_iter()
            .all(|i| !self.is_cut_set(&b.with(i, false), e))
    }

    /// Is `b` a *minimal* path set vector for `e`: a path set such that
    /// failing any further event destroys the path set? (Maximal vector
    /// semantics; the set of *operational* events is minimal.)
    pub fn is_minimal_path_set(&self, b: &StatusVector, e: ElementId) -> bool {
        if !self.is_path_set(b, e) {
            return false;
        }
        (0..b.len())
            .filter(|&i| !b.get(i))
            .all(|i| !self.is_path_set(&b.with(i, true), e))
    }
}

/// Canonicalises a list of index sets: each set ascending, sets ordered by
/// (cardinality, lexicographic).
fn canonicalise(mut sets: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for s in &mut sets {
        s.sort_unstable();
    }
    sets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    sets.dedup();
    sets
}

/// Renders index sets as sorted name lists in the canonical order (each
/// set's names ascending; sets by cardinality, then lexicographically) —
/// the shared presentation used by every backend and the session layer.
pub fn index_sets_to_names(tree: &FaultTree, sets: &[Vec<usize>]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = sets
        .iter()
        .map(|s| {
            let mut names: Vec<String> = s
                .iter()
                .map(|&i| tree.name(tree.basic_events()[i]).to_string())
                .collect();
            names.sort();
            names
        })
        .collect();
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    out
}

/// Minimal cut sets of element `e`, as sets of basic-event indices
/// (canonically ordered). Uses the `minsol` engine with the default DFS
/// ordering.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, analysis};
/// let tree = corpus::fig1();
/// let mcs = analysis::minimal_cut_sets_names(&tree, tree.top());
/// assert_eq!(mcs.len(), 2); // {IW,H3} and {IT,H2}
/// ```
pub fn minimal_cut_sets(tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
    let mut tb = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
    minimal_cut_sets_with(tree, &mut tb, e)
}

/// Minimal cut sets as sorted name lists.
pub fn minimal_cut_sets_names(tree: &FaultTree, e: ElementId) -> Vec<Vec<String>> {
    index_sets_to_names(tree, &minimal_cut_sets(tree, e))
}

/// Minimal path sets of element `e`, as sets of basic-event indices of the
/// *operational* events (canonically ordered).
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, analysis};
/// let tree = corpus::fig1();
/// let mps = analysis::minimal_path_sets_names(&tree, tree.top());
/// assert_eq!(mps.len(), 4); // {IW,IT} {IW,H2} {H3,IT} {H3,H2}
/// ```
pub fn minimal_path_sets(tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
    let mut tb = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
    minimal_path_sets_with(tree, &mut tb, e)
}

/// Minimal path sets as sorted name lists.
pub fn minimal_path_sets_names(tree: &FaultTree, e: ElementId) -> Vec<Vec<String>> {
    index_sets_to_names(tree, &minimal_path_sets(tree, e))
}

/// `minsol`-engine minimal cut sets using an existing [`TreeBdd`].
pub fn minimal_cut_sets_with(tree: &FaultTree, tb: &mut TreeBdd, e: ElementId) -> Vec<Vec<usize>> {
    let f = tb.element_bdd(tree, e);
    let universe = tb.unprimed_vars();
    let ms = minsol(tb.manager_mut(), f, &universe);
    extract_one_sets(tree, tb, ms)
}

/// `minsol`-engine minimal path sets using an existing [`TreeBdd`].
///
/// A minimal path set of `Φ` is a minimal solution of the *dual* function
/// `Φ^d(b) = ¬Φ(¬b)`; the ones of each solution are the operational
/// events.
pub fn minimal_path_sets_with(tree: &FaultTree, tb: &mut TreeBdd, e: ElementId) -> Vec<Vec<usize>> {
    let f = tb.element_bdd(tree, e);
    let universe = tb.unprimed_vars();
    let m = tb.manager_mut();
    let nf = m.not(f);
    let dual = flip_polarity(m, nf);
    let ms = minsol(m, dual, &universe);
    extract_one_sets(tree, tb, ms)
}

/// Reads off the satisfying vectors of a minimal-solutions BDD as sets of
/// basic-event indices (positions of ones).
fn extract_one_sets(tree: &FaultTree, tb: &TreeBdd, ms: Bdd) -> Vec<Vec<usize>> {
    let universe = tb.unprimed_vars();
    let mut sets = Vec::new();
    for vector in tb.manager().sat_vectors(ms, &universe) {
        let sv = tb.vector_from_positions(tree, &vector);
        sets.push(sv.failed_indices());
    }
    canonicalise(sets)
}

/// Rauzy-style minimal solutions of a *monotone* function `f` over the
/// variable `universe` (ascending levels): returns the BDD whose
/// satisfying vectors are exactly the minimal satisfying vectors of `f`.
///
/// Variables of the universe on which `f` does not depend are forced to
/// `0` in every solution.
///
/// # Panics
///
/// Panics if the support of `f` is not contained in `universe`.
pub fn minsol(m: &mut Manager, f: Bdd, universe: &[Var]) -> Bdd {
    for v in m.support(f) {
        assert!(universe.contains(&v), "support {v} outside universe");
    }
    // Walk the universe in the manager's *current* level order so the
    // recursion stays aligned with the diagram after dynamic reordering.
    let mut by_level: Vec<Var> = universe.to_vec();
    by_level.sort_unstable_by_key(|&v| m.level_of(v));
    let mut memo = HashMap::new();
    minsol_rec(m, f, &by_level, 0, &mut memo)
}

fn minsol_rec(
    m: &mut Manager,
    f: Bdd,
    universe: &[Var],
    idx: usize,
    memo: &mut HashMap<(u32, usize), Bdd>,
) -> Bdd {
    if f.is_false() {
        return m.bot();
    }
    if idx == universe.len() {
        debug_assert!(f.is_true(), "support outside universe");
        return m.top();
    }
    if f.is_true() {
        // The empty extension is the unique minimal solution: all
        // remaining variables must be 0.
        let mut acc = m.top();
        for &v in universe[idx..].iter().rev() {
            let lit = m.nvar(v);
            acc = m.and(lit, acc);
        }
        return acc;
    }
    if let Some(&r) = memo.get(&(f.id(), idx)) {
        return r;
    }
    let v = universe[idx];
    let (f0, f1) = {
        let node = m.node(f);
        if node.var == v {
            (node.low, node.high)
        } else {
            debug_assert!(
                m.level_of(node.var) > m.level_of(v),
                "universe must be ascending levels"
            );
            (f, f)
        }
    };
    let m0 = minsol_rec(m, f0, universe, idx + 1, memo);
    let m1 = minsol_rec(m, f1, universe, idx + 1, memo);
    // A vector with v = 1 is minimal iff it is minimal for f1 and does not
    // already satisfy f0 (else clearing v would give a smaller solution).
    let nf0 = m.not(f0);
    let high = m.and(m1, nf0);
    let lit = m.var(v);
    let r = m.ite(lit, high, m0);
    memo.insert((f.id(), idx), r);
    r
}

/// Swaps the polarity of every variable: the result satisfies exactly the
/// complemented vectors of `f` (`flip(f)(b) = f(¬b)`).
pub fn flip_polarity(m: &mut Manager, f: Bdd) -> Bdd {
    let mut memo = HashMap::new();
    flip_rec(m, f, &mut memo)
}

fn flip_rec(m: &mut Manager, f: Bdd, memo: &mut HashMap<u32, Bdd>) -> Bdd {
    if f.is_terminal() {
        return f;
    }
    if let Some(&r) = memo.get(&f.id()) {
        return r;
    }
    let node = m.node(f);
    let low = flip_rec(m, node.low, memo);
    let high = flip_rec(m, node.high, memo);
    // Swap the children: the flipped node takes `high` when the variable
    // is 0 and `low` when it is 1.
    let lit = m.var(node.var);
    let r = m.ite(lit, low, high);
    memo.insert(f.id(), r);
    r
}

/// The paper's primed-variable construction of the minimal cut sets
/// (`MCS` case of Algorithm 1):
///
/// `B_mcs = B ∧ ¬∃V′. (V′ ⊂ V ∧ B[V ↷ V′])`.
///
/// Returns the BDD over unprimed variables whose satisfying vectors are
/// the MCS vectors. This is the construction benchmarked against
/// [`minsol`] in `ablation: mcs engines`.
pub fn mcs_bdd_paper(tb: &mut TreeBdd, f: Bdd) -> Bdd {
    let pairs = tb.var_pairs();
    let primed: Vec<Var> = tb.primed_vars();
    let m = tb.manager_mut();
    let subset = m.strict_subset(&pairs);
    let f_primed = m.rename(f, &|v| Var(v.index() + 1));
    let exists_smaller = m.and_exists(subset, f_primed, &primed);
    let not_smaller = m.not(exists_smaller);
    m.and(f, not_smaller)
}

/// The dual construction for minimal path sets (maximal vectors satisfying
/// `¬f`; see `DESIGN.md` §4):
///
/// `B_mps = ¬B ∧ ¬∃V′. (V′ ⊃ V ∧ ¬B[V ↷ V′])`.
pub fn mps_bdd_paper(tb: &mut TreeBdd, f: Bdd) -> Bdd {
    let pairs = tb.var_pairs();
    let primed: Vec<Var> = tb.primed_vars();
    let m = tb.manager_mut();
    let superset = m.strict_superset(&pairs);
    let nf = m.not(f);
    let nf_primed = m.rename(nf, &|v| Var(v.index() + 1));
    let exists_bigger = m.and_exists(superset, nf_primed, &primed);
    let not_bigger = m.not(exists_bigger);
    m.and(nf, not_bigger)
}

/// Paper-construction minimal cut sets (for cross-checks and ablation).
pub fn minimal_cut_sets_paper(tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
    let mut tb = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
    let f = tb.element_bdd(tree, e);
    let ms = mcs_bdd_paper(&mut tb, f);
    extract_one_sets(tree, &tb, ms)
}

/// Paper-construction minimal path sets: satisfying vectors are *maximal*;
/// the returned sets contain the indices of the **operational** events.
pub fn minimal_path_sets_paper(tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
    let mut tb = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
    let f = tb.element_bdd(tree, e);
    let ms = mps_bdd_paper(&mut tb, f);
    let universe = tb.unprimed_vars();
    let mut sets = Vec::new();
    for vector in tb.manager().sat_vectors(ms, &universe) {
        let sv = tb.vector_from_positions(tree, &vector);
        // Operational events = zeros of the maximal vector.
        sets.push((0..sv.len()).filter(|&i| !sv.get(i)).collect());
    }
    canonicalise(sets)
}

/// Number of minimal cut sets of `e`, computed on the `minsol` BDD by
/// model counting — no enumeration, so it stays cheap even when the
/// number of cut sets is astronomically large (e.g. deep alternating
/// AND/OR trees).
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, analysis};
/// let tree = corpus::covid();
/// assert_eq!(analysis::count_minimal_cut_sets(&tree, tree.top()), 12);
/// ```
pub fn count_minimal_cut_sets(tree: &FaultTree, e: ElementId) -> u128 {
    let mut tb = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
    let f = tb.element_bdd(tree, e);
    let universe = tb.unprimed_vars();
    let ms = minsol(tb.manager_mut(), f, &universe);
    tb.manager().sat_count_over(ms, &universe)
}

/// Number of minimal path sets of `e` (see [`count_minimal_cut_sets`]).
pub fn count_minimal_path_sets(tree: &FaultTree, e: ElementId) -> u128 {
    let mut tb = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
    let f = tb.element_bdd(tree, e);
    let universe = tb.unprimed_vars();
    let m = tb.manager_mut();
    let nf = m.not(f);
    let dual = flip_polarity(m, nf);
    let ms = minsol(m, dual, &universe);
    tb.manager().sat_count_over(ms, &universe)
}

/// Exhaustive reference implementation of minimal cut sets (all `2^n`
/// vectors); used by the test-suite as ground truth.
///
/// # Panics
///
/// Panics if the tree has more than 20 basic events.
pub fn minimal_cut_sets_naive(tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
    assert!(
        tree.num_basic_events() <= 20,
        "naive engine limited to 20 events"
    );
    let mut sets = Vec::new();
    for b in StatusVector::enumerate_all(tree.num_basic_events()) {
        if tree.is_minimal_cut_set(&b, e) {
            sets.push(b.failed_indices());
        }
    }
    canonicalise(sets)
}

/// Exhaustive reference implementation of minimal path sets (sets of
/// operational events).
///
/// # Panics
///
/// Panics if the tree has more than 20 basic events.
pub fn minimal_path_sets_naive(tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
    assert!(
        tree.num_basic_events() <= 20,
        "naive engine limited to 20 events"
    );
    let mut sets = Vec::new();
    for b in StatusVector::enumerate_all(tree.num_basic_events()) {
        if tree.is_minimal_path_set(&b, e) {
            sets.push((0..b.len()).filter(|&i| !b.get(i)).collect());
        }
    }
    canonicalise(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn fig1_minimal_cut_sets() {
        let tree = corpus::fig1();
        let mcs = minimal_cut_sets_names(&tree, tree.top());
        assert_eq!(
            mcs,
            vec![
                vec!["H2".to_string(), "IT".to_string()],
                vec!["H3".to_string(), "IW".to_string()],
            ]
        );
    }

    #[test]
    fn fig1_minimal_path_sets() {
        let tree = corpus::fig1();
        let mps = minimal_path_sets_names(&tree, tree.top());
        assert_eq!(
            mps,
            vec![
                vec!["H2".to_string(), "H3".to_string()],
                vec!["H2".to_string(), "IW".to_string()],
                vec!["H3".to_string(), "IT".to_string()],
                vec!["IT".to_string(), "IW".to_string()],
            ]
        );
    }

    #[test]
    fn engines_agree_on_fig1() {
        let tree = corpus::fig1();
        assert_eq!(
            minimal_cut_sets(&tree, tree.top()),
            minimal_cut_sets_paper(&tree, tree.top())
        );
        assert_eq!(
            minimal_cut_sets(&tree, tree.top()),
            minimal_cut_sets_naive(&tree, tree.top())
        );
        assert_eq!(
            minimal_path_sets(&tree, tree.top()),
            minimal_path_sets_paper(&tree, tree.top())
        );
        assert_eq!(
            minimal_path_sets(&tree, tree.top()),
            minimal_path_sets_naive(&tree, tree.top())
        );
    }

    #[test]
    fn engines_agree_on_covid() {
        let tree = corpus::covid();
        for &e in &[
            tree.top(),
            tree.element("MoT").unwrap(),
            tree.element("CT").unwrap(),
        ] {
            assert_eq!(minimal_cut_sets(&tree, e), minimal_cut_sets_paper(&tree, e));
            assert_eq!(
                minimal_path_sets(&tree, e),
                minimal_path_sets_paper(&tree, e)
            );
            assert_eq!(minimal_cut_sets(&tree, e), minimal_cut_sets_naive(&tree, e));
            assert_eq!(
                minimal_path_sets(&tree, e),
                minimal_path_sets_naive(&tree, e)
            );
        }
    }

    #[test]
    fn mcs_vectors_are_minimal_cut_sets() {
        let tree = corpus::covid();
        for set in minimal_cut_sets(&tree, tree.top()) {
            let mut b = StatusVector::all_operational(tree.num_basic_events());
            for i in set {
                b.set(i, true);
            }
            assert!(tree.is_minimal_cut_set(&b, tree.top()), "{b}");
        }
    }

    #[test]
    fn mps_sets_are_minimal_path_sets() {
        let tree = corpus::covid();
        for set in minimal_path_sets(&tree, tree.top()) {
            // Vector: everything failed except the path set.
            let mut b = StatusVector::all_failed(tree.num_basic_events());
            for i in set {
                b.set(i, false);
            }
            assert!(tree.is_minimal_path_set(&b, tree.top()), "{b}");
        }
    }

    #[test]
    fn counts_match_enumeration() {
        for tree in [corpus::fig1(), corpus::covid(), corpus::table1_tree()] {
            assert_eq!(
                count_minimal_cut_sets(&tree, tree.top()),
                minimal_cut_sets(&tree, tree.top()).len() as u128
            );
            assert_eq!(
                count_minimal_path_sets(&tree, tree.top()),
                minimal_path_sets(&tree, tree.top()).len() as u128
            );
        }
    }

    #[test]
    fn counting_scales_where_enumeration_cannot() {
        // Depth-10 alternating AND/OR chain: ~10^9 minimal cut sets.
        let tree = corpus::chain(10);
        let count = count_minimal_cut_sets(&tree, tree.top());
        assert!(count > 1_000_000_000, "{count}");
    }

    #[test]
    fn flip_polarity_involution() {
        let tree = corpus::covid();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let f = tb.element_bdd(&tree, tree.top());
        let m = tb.manager_mut();
        let g = flip_polarity(m, f);
        let h = flip_polarity(m, g);
        assert_eq!(f, h);
    }

    #[test]
    fn minsol_of_or_gate() {
        let tree = corpus::or2();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let f = tb.element_bdd(&tree, tree.top());
        let universe = tb.unprimed_vars();
        let ms = minsol(tb.manager_mut(), f, &universe);
        // Minimal solutions: exactly (1,0) and (0,1) over the two unprimed
        // variables; the two primed variables are don't-cares (2 models × 4).
        assert_eq!(tb.manager().sat_count(ms, 4), 8);
        let sets = extract_one_sets(&tree, &tb, ms);
        assert_eq!(sets, vec![vec![0], vec![1]]);
    }
}
