//! Seeded random fault-tree generation for benchmarks and property-based
//! tests.

use crate::builder::FaultTreeBuilder;
use crate::model::{FaultTree, GateType};
use crate::rng::Prng;

/// Parameters for [`random_tree`].
#[derive(Debug, Clone)]
pub struct RandomTreeConfig {
    /// Number of basic events (≥ 1).
    pub num_basic: usize,
    /// Number of gates (≥ 1); the first generated gate becomes the top.
    pub num_gates: usize,
    /// Children per gate are drawn uniformly from `2..=max_children`.
    pub max_children: usize,
    /// Probability that a gate is `VOT` (with random `k`); the remainder
    /// splits evenly between `AND` and `OR`.
    pub vot_probability: f64,
    /// RNG seed — equal configs with equal seeds generate equal trees.
    pub seed: u64,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            num_basic: 12,
            num_gates: 8,
            max_children: 4,
            vot_probability: 0.15,
            seed: 0xB0F1,
        }
    }
}

/// Generates a pseudo-random well-formed fault tree.
///
/// Gates are generated top-down: gate `i` draws children from gates
/// `i+1..` and the basic events, which guarantees acyclicity; a repair
/// pass attaches any unreachable element to a random reachable gate, so
/// the result always passes validation. Basic events may be shared by
/// several gates (repeated events, as in the paper's Fig. 2).
///
/// # Panics
///
/// Panics if `num_basic` or `num_gates` is zero, or `max_children < 2`.
pub fn random_tree(config: &RandomTreeConfig) -> FaultTree {
    assert!(config.num_basic >= 1, "need at least one basic event");
    assert!(config.num_gates >= 1, "need at least one gate");
    assert!(config.max_children >= 2, "need max_children >= 2");
    let mut rng = Prng::seed_from_u64(config.seed);
    let basic_names: Vec<String> = (0..config.num_basic).map(|i| format!("be{i}")).collect();
    let gate_names: Vec<String> = (0..config.num_gates).map(|i| format!("g{i}")).collect();

    // children[i] = names drawn for gate i.
    let mut children: Vec<Vec<usize>> = Vec::with_capacity(config.num_gates);
    // Universe indices: 0..num_gates are gates, then basic events.
    let universe = config.num_gates + config.num_basic;
    for i in 0..config.num_gates {
        let later_gates = config.num_gates - i - 1;
        let pool = later_gates + config.num_basic;
        let arity = rng.gen_range(2..=config.max_children.min(pool.max(2)));
        let mut picked = Vec::new();
        while picked.len() < arity.min(pool) {
            // Draw from later gates and basics, no duplicate children.
            let raw = rng.gen_range(0..pool);
            let idx = if raw < later_gates {
                i + 1 + raw
            } else {
                config.num_gates + (raw - later_gates)
            };
            if !picked.contains(&idx) {
                picked.push(idx);
            }
        }
        children.push(picked);
    }

    // Reachability repair: attach unreached elements to random reached
    // gates (keeping acyclicity: element j attaches to a gate i < j for
    // gates, or to any gate for basics).
    let mut reached = vec![false; universe];
    let mut stack = vec![0usize];
    while let Some(x) = stack.pop() {
        if reached[x] {
            continue;
        }
        reached[x] = true;
        if x < config.num_gates {
            stack.extend(children[x].iter().copied());
        }
    }
    for j in 0..universe {
        if reached[j] {
            continue;
        }
        let host = if j < config.num_gates {
            // Attach gate j under some reached gate with smaller index.
            (0..j).filter(|&i| reached[i]).max().unwrap_or(0)
        } else {
            rng.gen_range(0..config.num_gates.min(j))
        };
        children[host].push(j);
        // Newly reached subtree:
        let mut stack = vec![j];
        while let Some(x) = stack.pop() {
            if reached[x] {
                continue;
            }
            reached[x] = true;
            if x < config.num_gates {
                stack.extend(children[x].iter().copied());
            }
        }
    }

    let mut b = FaultTreeBuilder::new();
    b.basic_events(basic_names.iter().map(String::as_str))
        .expect("fresh names");
    for i in 0..config.num_gates {
        let n = children[i].len() as u32;
        let gate_type = if rng.gen_bool(config.vot_probability.clamp(0.0, 1.0)) && n >= 2 {
            GateType::Vot {
                k: rng.gen_range(1..=n as usize) as u32,
            }
        } else if rng.gen_bool(0.5) {
            GateType::And
        } else {
            GateType::Or
        };
        let child_names: Vec<&str> = children[i]
            .iter()
            .map(|&idx| {
                if idx < config.num_gates {
                    gate_names[idx].as_str()
                } else {
                    basic_names[idx - config.num_gates].as_str()
                }
            })
            .collect();
        b.gate(&gate_names[i], gate_type, child_names)
            .expect("fresh name");
    }
    b.build(&gate_names[0])
        .expect("generated tree is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomTreeConfig::default();
        let t1 = random_tree(&cfg);
        let t2 = random_tree(&cfg);
        assert_eq!(t1.len(), t2.len());
        let names1: Vec<_> = t1.iter().map(|e| t1.name(e).to_string()).collect();
        let names2: Vec<_> = t2.iter().map(|e| t2.name(e).to_string()).collect();
        assert_eq!(names1, names2);
    }

    #[test]
    fn different_seeds_differ() {
        let t1 = random_tree(&RandomTreeConfig {
            seed: 1,
            ..Default::default()
        });
        let t2 = random_tree(&RandomTreeConfig {
            seed: 2,
            ..Default::default()
        });
        // Extremely unlikely to coincide: compare child structure.
        let shape = |t: &FaultTree| -> Vec<Vec<usize>> {
            t.iter()
                .map(|e| t.children(e).iter().map(|c| c.index()).collect())
                .collect()
        };
        assert_ne!(shape(&t1), shape(&t2));
    }

    #[test]
    fn generated_trees_validate_across_sizes() {
        for seed in 0..20 {
            for (nb, ng) in [(3, 2), (10, 6), (25, 15), (60, 40)] {
                let cfg = RandomTreeConfig {
                    num_basic: nb,
                    num_gates: ng,
                    max_children: 5,
                    vot_probability: 0.2,
                    seed,
                };
                let t = random_tree(&cfg);
                assert_eq!(t.num_basic_events(), nb);
                assert_eq!(t.num_gates(), ng);
            }
        }
    }
}
