//! Seeded random fault-tree generation for benchmarks and property-based
//! tests.
//!
//! Two generators live here:
//!
//! * [`random_tree`] — small unshaped trees for property tests (kept
//!   byte-compatible with earlier releases: equal seeds generate equal
//!   trees);
//! * [`industrial_tree`] / [`industrial_model`] — shaped industrial-scale
//!   trees in the style of the "BDDs Strike Back" corpus: a configurable
//!   number of *independent modules* built bottom-up in layers, with
//!   tunable fan-in, AND/OR mix, VOT density, intra-module DAG sharing
//!   and log-uniform probability annotations. The module structure is by
//!   construction what `modules::top_modules` detects, which makes these
//!   trees the natural corpus for parallel (per-module) BDD compilation.

// The generators mint their own `g{i}`/`b{i}` names from counters, so
// every builder insert is fresh and every `expect` documents an
// unreachable state (the differential suite re-parses each emission).
#![allow(clippy::expect_used)]

use crate::builder::FaultTreeBuilder;
use crate::galileo::GalileoModel;
use crate::model::{FaultTree, GateType};
use crate::rng::Prng;

/// Parameters for [`random_tree`].
#[derive(Debug, Clone)]
pub struct RandomTreeConfig {
    /// Number of basic events (≥ 1).
    pub num_basic: usize,
    /// Number of gates (≥ 1); the first generated gate becomes the top.
    pub num_gates: usize,
    /// Children per gate are drawn uniformly from `2..=max_children`.
    pub max_children: usize,
    /// Probability that a gate is `VOT` (with random `k`); the remainder
    /// splits evenly between `AND` and `OR`.
    pub vot_probability: f64,
    /// RNG seed — equal configs with equal seeds generate equal trees.
    pub seed: u64,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            num_basic: 12,
            num_gates: 8,
            max_children: 4,
            vot_probability: 0.15,
            seed: 0xB0F1,
        }
    }
}

/// Generates a pseudo-random well-formed fault tree.
///
/// Gates are generated top-down: gate `i` draws children from gates
/// `i+1..` and the basic events, which guarantees acyclicity; a repair
/// pass attaches any unreachable element to a random reachable gate, so
/// the result always passes validation. Basic events may be shared by
/// several gates (repeated events, as in the paper's Fig. 2).
///
/// # Panics
///
/// Panics if `num_basic` or `num_gates` is zero, or `max_children < 2`.
pub fn random_tree(config: &RandomTreeConfig) -> FaultTree {
    assert!(config.num_basic >= 1, "need at least one basic event");
    assert!(config.num_gates >= 1, "need at least one gate");
    assert!(config.max_children >= 2, "need max_children >= 2");
    let mut rng = Prng::seed_from_u64(config.seed);
    let basic_names: Vec<String> = (0..config.num_basic).map(|i| format!("be{i}")).collect();
    let gate_names: Vec<String> = (0..config.num_gates).map(|i| format!("g{i}")).collect();

    // children[i] = names drawn for gate i.
    let mut children: Vec<Vec<usize>> = Vec::with_capacity(config.num_gates);
    // Universe indices: 0..num_gates are gates, then basic events.
    let universe = config.num_gates + config.num_basic;
    for i in 0..config.num_gates {
        let later_gates = config.num_gates - i - 1;
        let pool = later_gates + config.num_basic;
        let arity = rng.gen_range(2..=config.max_children.min(pool.max(2)));
        let mut picked = Vec::new();
        while picked.len() < arity.min(pool) {
            // Draw from later gates and basics, no duplicate children.
            let raw = rng.gen_range(0..pool);
            let idx = if raw < later_gates {
                i + 1 + raw
            } else {
                config.num_gates + (raw - later_gates)
            };
            if !picked.contains(&idx) {
                picked.push(idx);
            }
        }
        children.push(picked);
    }

    // Reachability repair: attach unreached elements to random reached
    // gates (keeping acyclicity: element j attaches to a gate i < j for
    // gates, or to any gate for basics).
    let mut reached = vec![false; universe];
    let mut stack = vec![0usize];
    while let Some(x) = stack.pop() {
        if reached[x] {
            continue;
        }
        reached[x] = true;
        if x < config.num_gates {
            stack.extend(children[x].iter().copied());
        }
    }
    for j in 0..universe {
        if reached[j] {
            continue;
        }
        let host = if j < config.num_gates {
            // Attach gate j under some reached gate with smaller index.
            (0..j).filter(|&i| reached[i]).max().unwrap_or(0)
        } else {
            rng.gen_range(0..config.num_gates.min(j))
        };
        children[host].push(j);
        // Newly reached subtree:
        let mut stack = vec![j];
        while let Some(x) = stack.pop() {
            if reached[x] {
                continue;
            }
            reached[x] = true;
            if x < config.num_gates {
                stack.extend(children[x].iter().copied());
            }
        }
    }

    let mut b = FaultTreeBuilder::new();
    b.basic_events(basic_names.iter().map(String::as_str))
        .expect("fresh names");
    for i in 0..config.num_gates {
        let n = children[i].len() as u32;
        let gate_type = if rng.gen_bool(config.vot_probability.clamp(0.0, 1.0)) && n >= 2 {
            GateType::Vot {
                k: rng.gen_range(1..=n as usize) as u32,
            }
        } else if rng.gen_bool(0.5) {
            GateType::And
        } else {
            GateType::Or
        };
        let child_names: Vec<&str> = children[i]
            .iter()
            .map(|&idx| {
                if idx < config.num_gates {
                    gate_names[idx].as_str()
                } else {
                    basic_names[idx - config.num_gates].as_str()
                }
            })
            .collect();
        b.gate(&gate_names[i], gate_type, child_names)
            .expect("fresh name");
    }
    b.build(&gate_names[0])
        .expect("generated tree is well-formed")
}

/// Parameters for [`industrial_tree`].
///
/// The generated tree is a disjunction (`top`, an `OR` gate) over
/// `num_modules` structurally independent modules. Each module is built
/// bottom-up from its share of the basic events: the current layer is
/// chunked into gates of `fan_in` children until one root remains, with
/// `depth` capping the number of layers (the final layer collapses into
/// a single wide gate). Sharing adds extra child edges *within* a module
/// to already-built elements, so modules stay independent of each other
/// (their descendant sets are disjoint) while each module is internally a
/// DAG, not a tree.
#[derive(Debug, Clone)]
pub struct IndustrialConfig {
    /// Total number of basic events across all modules (≥ `num_modules`).
    pub num_basic: usize,
    /// Number of independent top-level modules (≥ 1).
    pub num_modules: usize,
    /// Maximum gate layers per module (≥ 1); layer `depth` collapses the
    /// remaining elements into one gate.
    pub depth: usize,
    /// Inclusive fan-in range for gates, `(min, max)` with `min ≥ 2`.
    pub fan_in: (usize, usize),
    /// Probability that a non-VOT gate is `AND` (the rest are `OR`).
    pub and_bias: f64,
    /// Probability that a gate with ≥ 3 children is a strict `VOT`
    /// (`2 ≤ k < n`).
    pub vot_density: f64,
    /// Probability that a gate gains one extra child shared with an
    /// already-built element of the same module (DAG sharing).
    pub sharing: f64,
    /// Probabilities are drawn log-uniformly from this range
    /// (`0 < lo ≤ hi ≤ 1`); only used by [`industrial_model`].
    pub prob_range: (f64, f64),
    /// RNG seed — equal configs with equal seeds generate equal trees.
    pub seed: u64,
}

impl Default for IndustrialConfig {
    fn default() -> Self {
        IndustrialConfig {
            num_basic: 1_000,
            num_modules: 16,
            depth: 6,
            fan_in: (2, 4),
            and_bias: 0.4,
            vot_density: 0.1,
            sharing: 0.15,
            prob_range: (1.0e-5, 1.0e-2),
            seed: 0x5CA1E,
        }
    }
}

/// Generates a shaped industrial-scale fault tree; see
/// [`IndustrialConfig`] for the knobs.
///
/// Structural guarantees, by construction:
///
/// * well-formed (validates, every element reachable from `top`);
/// * `top` is an `OR` gate whose children are the `num_modules` module
///   roots, and the modules' descendant sets are pairwise disjoint — so
///   each module root is a *module* in the Dutuit–Rauzy sense;
/// * acyclic even with sharing enabled, because shared edges only point
///   at already-built elements.
///
/// # Panics
///
/// Panics on degenerate configurations: `num_modules == 0`,
/// `num_basic < 2 * num_modules`, `depth == 0` or a bad `fan_in` range.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::generator::{industrial_tree, IndustrialConfig};
/// let tree = industrial_tree(&IndustrialConfig {
///     num_basic: 200,
///     num_modules: 4,
///     ..Default::default()
/// });
/// assert_eq!(tree.num_basic_events(), 200);
/// assert_eq!(tree.children(tree.top()).len(), 4);
/// ```
pub fn industrial_tree(config: &IndustrialConfig) -> FaultTree {
    build_industrial(config).0
}

/// [`industrial_tree`] plus log-uniform probability annotations, packed
/// as a [`GalileoModel`] ready for [`crate::galileo::to_galileo`] or the
/// probability layer.
pub fn industrial_model(config: &IndustrialConfig) -> GalileoModel {
    let (tree, probabilities) = build_industrial(config);
    let intervals = vec![None; tree.num_basic_events()];
    GalileoModel {
        tree,
        probabilities,
        intervals,
        // Generated models have no source text to point into.
        locations: Default::default(),
    }
}

fn build_industrial(config: &IndustrialConfig) -> (FaultTree, Vec<Option<f64>>) {
    assert!(config.num_modules >= 1, "need at least one module");
    assert!(
        config.num_basic >= 2 * config.num_modules,
        "need at least two basic events per module"
    );
    assert!(config.depth >= 1, "need depth >= 1");
    let (fan_lo, fan_hi) = config.fan_in;
    assert!(
        fan_lo >= 2 && fan_hi >= fan_lo,
        "need 2 <= fan_in.0 <= fan_in.1"
    );
    let (p_lo, p_hi) = config.prob_range;
    assert!(
        p_lo > 0.0 && p_lo <= p_hi && p_hi <= 1.0,
        "need 0 < prob_range.0 <= prob_range.1 <= 1"
    );

    let mut rng = Prng::seed_from_u64(config.seed);
    let mut b = FaultTreeBuilder::new();

    // Basic events first, in module-major order: the Galileo emitter
    // writes basics in declaration order, so this keeps emitted text
    // stable and readable.
    let per_module = config.num_basic / config.num_modules;
    let remainder = config.num_basic % config.num_modules;
    let mut module_basics: Vec<Vec<String>> = Vec::with_capacity(config.num_modules);
    for mi in 0..config.num_modules {
        let count = per_module + usize::from(mi < remainder);
        let names: Vec<String> = (0..count).map(|j| format!("m{mi}_e{j}")).collect();
        b.basic_events(names.iter().map(String::as_str))
            .expect("fresh names");
        module_basics.push(names);
    }

    // Each module: chunk the current layer into gates until one root
    // remains; shared extra children point only at elements of the same
    // module that already exist, so modules stay pairwise independent.
    let mut module_roots: Vec<String> = Vec::with_capacity(config.num_modules);
    for (mi, basics) in module_basics.iter().enumerate() {
        let mut layer: Vec<String> = basics.clone();
        let mut pool: Vec<String> = basics.clone();
        let mut level = 0usize;
        while layer.len() > 1 {
            let collapse = level + 1 >= config.depth;
            let mut next: Vec<String> = Vec::new();
            let mut i = 0usize;
            let mut idx = 0usize;
            while i < layer.len() {
                let remaining = layer.len() - i;
                let mut take = if collapse {
                    remaining
                } else {
                    rng.gen_range(fan_lo..=fan_hi).min(remaining)
                };
                // Never strand a single element: it would form a trivial
                // one-child gate on the next pass.
                if remaining - take == 1 {
                    take += 1;
                }
                let mut kids: Vec<String> = layer[i..i + take].to_vec();
                i += take;
                if rng.gen_bool(config.sharing) && pool.len() > kids.len() {
                    // One extra shared edge into the module's DAG.
                    for _ in 0..8 {
                        let extra = pool[rng.gen_range(0..pool.len())].clone();
                        if !kids.contains(&extra) {
                            kids.push(extra);
                            break;
                        }
                    }
                }
                let n = kids.len();
                let gate_type = if n >= 3 && rng.gen_bool(config.vot_density) {
                    GateType::Vot {
                        k: rng.gen_range(2..=n - 1) as u32,
                    }
                } else if rng.gen_bool(config.and_bias) {
                    GateType::And
                } else {
                    GateType::Or
                };
                let name = format!("m{mi}_g{level}_{idx}");
                b.gate(&name, gate_type, kids.iter().map(String::as_str))
                    .expect("fresh name");
                next.push(name.clone());
                pool.push(name);
                idx += 1;
            }
            layer = next;
            level += 1;
        }
        module_roots.push(layer.pop().expect("module has a root"));
    }

    let top_name = "top";
    b.gate(
        top_name,
        GateType::Or,
        module_roots.iter().map(String::as_str),
    )
    .expect("fresh name");
    let tree = b.build(top_name).expect("generated tree is well-formed");

    let probabilities: Vec<Option<f64>> = (0..tree.num_basic_events())
        .map(|_| {
            // Log-uniform in [p_lo, p_hi].
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            Some(p_lo * (p_hi / p_lo).powf(u))
        })
        .collect();
    (tree, probabilities)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomTreeConfig::default();
        let t1 = random_tree(&cfg);
        let t2 = random_tree(&cfg);
        assert_eq!(t1.len(), t2.len());
        let names1: Vec<_> = t1.iter().map(|e| t1.name(e).to_string()).collect();
        let names2: Vec<_> = t2.iter().map(|e| t2.name(e).to_string()).collect();
        assert_eq!(names1, names2);
    }

    #[test]
    fn different_seeds_differ() {
        let t1 = random_tree(&RandomTreeConfig {
            seed: 1,
            ..Default::default()
        });
        let t2 = random_tree(&RandomTreeConfig {
            seed: 2,
            ..Default::default()
        });
        // Extremely unlikely to coincide: compare child structure.
        let shape = |t: &FaultTree| -> Vec<Vec<usize>> {
            t.iter()
                .map(|e| t.children(e).iter().map(|c| c.index()).collect())
                .collect()
        };
        assert_ne!(shape(&t1), shape(&t2));
    }

    #[test]
    fn generated_trees_validate_across_sizes() {
        for seed in 0..20 {
            for (nb, ng) in [(3, 2), (10, 6), (25, 15), (60, 40)] {
                let cfg = RandomTreeConfig {
                    num_basic: nb,
                    num_gates: ng,
                    max_children: 5,
                    vot_probability: 0.2,
                    seed,
                };
                let t = random_tree(&cfg);
                assert_eq!(t.num_basic_events(), nb);
                assert_eq!(t.num_gates(), ng);
            }
        }
    }

    #[test]
    fn industrial_modules_are_real_modules() {
        let cfg = IndustrialConfig {
            num_basic: 200,
            num_modules: 4,
            ..Default::default()
        };
        let t = industrial_tree(&cfg);
        assert_eq!(t.num_basic_events(), 200);
        let roots = t.children(t.top()).to_vec();
        assert_eq!(roots.len(), 4);
        let deco = crate::modules::Decomposition::new(&t);
        for &r in &roots {
            assert!(deco.is_module(r), "module root {} not a module", t.name(r));
        }
    }

    #[test]
    fn industrial_generation_is_deterministic() {
        let cfg = IndustrialConfig {
            num_basic: 120,
            num_modules: 3,
            ..Default::default()
        };
        let m1 = industrial_model(&cfg);
        let m2 = industrial_model(&cfg);
        let shape = |t: &FaultTree| -> Vec<Vec<usize>> {
            t.iter()
                .map(|e| t.children(e).iter().map(|c| c.index()).collect())
                .collect()
        };
        assert_eq!(shape(&m1.tree), shape(&m2.tree));
        assert_eq!(m1.probabilities, m2.probabilities);
    }

    #[test]
    fn industrial_probabilities_are_in_range() {
        let cfg = IndustrialConfig {
            num_basic: 64,
            num_modules: 2,
            prob_range: (1.0e-4, 1.0e-1),
            ..Default::default()
        };
        let m = industrial_model(&cfg);
        for p in &m.probabilities {
            let p = p.expect("annotated");
            assert!((1.0e-4..=1.0e-1).contains(&p), "{p} out of range");
        }
    }

    #[test]
    fn industrial_respects_depth_cap() {
        let cfg = IndustrialConfig {
            num_basic: 256,
            num_modules: 2,
            depth: 3,
            sharing: 0.0,
            ..Default::default()
        };
        let t = industrial_tree(&cfg);
        // Longest path from top: top -> module root (layer <= depth-1
        // within each module) -> ... -> basic. Depth 3 per module plus
        // the top gate bounds every path by 4 gate hops.
        fn height(t: &FaultTree, e: crate::model::ElementId) -> usize {
            t.children(e)
                .iter()
                .map(|&c| 1 + height(t, c))
                .max()
                .unwrap_or(0)
        }
        assert!(height(&t, t.top()) <= 4, "height {}", height(&t, t.top()));
    }
}
