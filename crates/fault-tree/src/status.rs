//! Status vectors (Definition 2): one bit per basic event, `1` = failed.

use std::fmt;

use crate::model::FaultTree;

/// A status vector `b = (b_1, …, b_n)` over the basic events of a fault
/// tree: bit `i` is `1` iff the `i`-th basic event (in
/// [`basic_events`](crate::FaultTree::basic_events) order) has failed.
///
/// Vectors are compared as *sets of failed events*: `b′ ⊂ b` means the
/// failed set of `b′` is a strict subset of that of `b` — the order used by
/// the `MCS`/`MPS` semantics.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::StatusVector;
/// let b = StatusVector::from_bits([false, true, false]);
/// let c = StatusVector::from_bits([true, true, false]);
/// assert!(b.is_strict_subset_of(&c));
/// assert_eq!(b.to_string(), "010");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusVector {
    words: Vec<u64>,
    len: usize,
}

impl StatusVector {
    /// The all-operational vector of length `len`.
    pub fn all_operational(len: usize) -> Self {
        StatusVector {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The all-failed vector of length `len`.
    pub fn all_failed(len: usize) -> Self {
        let mut v = Self::all_operational(len);
        for i in 0..len {
            v.set(i, true);
        }
        v
    }

    /// Builds a vector from explicit bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = Self::all_operational(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// Builds the vector for `tree` in which exactly the named basic
    /// events have failed.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown or names a gate; use
    /// [`FaultTree::require`] for fallible lookup.
    pub fn from_failed_names(tree: &FaultTree, failed: &[&str]) -> Self {
        let mut v = Self::all_operational(tree.num_basic_events());
        for name in failed {
            let e = tree
                .element(name)
                .unwrap_or_else(|| panic!("unknown element `{name}`"));
            let idx = tree
                .basic_index(e)
                .unwrap_or_else(|| panic!("`{name}` is not a basic event"));
            v.set(idx, true);
        }
        v
    }

    /// Number of basic events covered by this vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty (no basic events).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The status of basic event `i` (`true` = failed).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the status of basic event `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, failed: bool) {
        assert!(i < self.len, "index {i} out of range");
        if failed {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Returns a copy with bit `i` set to `failed`.
    pub fn with(&self, i: usize, failed: bool) -> Self {
        let mut v = self.clone();
        v.set(i, failed);
        v
    }

    /// Number of failed basic events.
    pub fn count_failed(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of failed basic events, ascending.
    pub fn failed_indices(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.get(i)).collect()
    }

    /// Names of failed basic events of `tree`, in basic-index order.
    pub fn failed_names<'t>(&self, tree: &'t FaultTree) -> Vec<&'t str> {
        self.failed_indices()
            .into_iter()
            .map(|i| tree.name(tree.basic_events()[i]))
            .collect()
    }

    /// Iterates over all bits (`true` = failed).
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Set inclusion on failed events: `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Strict set inclusion on failed events: `self ⊂ other`.
    pub fn is_strict_subset_of(&self, other: &Self) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Enumerates every vector of length `len` (all `2^len` combinations),
    /// in increasing binary order with index 0 as the least-significant
    /// bit. Intended for small `len` in tests and reference algorithms.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn enumerate_all(len: usize) -> impl Iterator<Item = StatusVector> {
        assert!(len <= 32, "exhaustive enumeration limited to 32 events");
        (0..(1u64 << len))
            .map(move |bits| StatusVector::from_bits((0..len).map(|i| (bits >> i) & 1 == 1)))
    }
}

impl fmt::Display for StatusVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for StatusVector {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultTreeBuilder, GateType};

    #[test]
    fn bit_roundtrip() {
        let mut v = StatusVector::all_operational(70);
        v.set(0, true);
        v.set(65, true);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(65));
        assert_eq!(v.count_failed(), 2);
        assert_eq!(v.failed_indices(), vec![0, 65]);
    }

    #[test]
    fn subset_relation() {
        let a = StatusVector::from_bits([true, false, false]);
        let b = StatusVector::from_bits([true, true, false]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_strict_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(!a.is_strict_subset_of(&a));
        let c = StatusVector::from_bits([false, false, true]);
        assert!(!a.is_subset_of(&c));
        assert!(!c.is_subset_of(&a));
    }

    #[test]
    fn from_failed_names_maps_indices() {
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["x", "y", "z"]).unwrap();
        b.gate("top", GateType::Or, ["x", "y", "z"]).unwrap();
        let t = b.build("top").unwrap();
        let v = StatusVector::from_failed_names(&t, &["y"]);
        assert_eq!(v.to_string(), "010");
        assert_eq!(v.failed_names(&t), vec!["y"]);
    }

    #[test]
    fn enumerate_all_counts() {
        assert_eq!(StatusVector::enumerate_all(4).count(), 16);
        let first = StatusVector::enumerate_all(2).next().unwrap();
        assert_eq!(first.to_string(), "00");
    }

    #[test]
    fn display_is_bitstring() {
        let v = StatusVector::from_bits([false, true]);
        assert_eq!(format!("{v}"), "01");
    }

    #[test]
    fn all_failed_sets_every_bit() {
        let v = StatusVector::all_failed(65);
        assert_eq!(v.count_failed(), 65);
    }
}
