//! Graphviz export of fault trees, with optional status decoration
//! (the failure-propagation views of Table I and Section VII).

use std::fmt::Write as _;

use crate::model::{FaultTree, GateType};
use crate::status::StatusVector;

/// Renders the tree as a Graphviz `digraph`.
///
/// Gates are drawn as boxes labelled with their type, basic events as
/// ellipses.
pub fn to_dot(tree: &FaultTree) -> String {
    to_dot_with_status(tree, None)
}

/// Renders the tree with failure propagation for `b`: failed elements are
/// filled red, operational ones green — the visual language of the
/// counterexample representations in Table I.
pub fn to_dot_with_status(tree: &FaultTree, b: Option<&StatusVector>) -> String {
    let statuses = b.map(|v| tree.evaluate_all(v));
    let mut out = String::new();
    let _ = writeln!(out, "digraph fault_tree {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for e in tree.iter() {
        let shape = if tree.is_basic(e) { "ellipse" } else { "box" };
        let label = match tree.gate_type(e) {
            None => tree.name(e).to_string(),
            Some(GateType::And) => format!("{}\\nAND", tree.name(e)),
            Some(GateType::Or) => format!("{}\\nOR", tree.name(e)),
            Some(GateType::Vot { k }) => {
                format!("{}\\nVOT({k}/{})", tree.name(e), tree.children(e).len())
            }
        };
        let colour = match &statuses {
            None => String::new(),
            Some(s) => {
                if s[e.index()] {
                    ", style=filled, fillcolor=\"#ffb3b3\"".to_string()
                } else {
                    ", style=filled, fillcolor=\"#b3ffb3\"".to_string()
                }
            }
        };
        let _ = writeln!(
            out,
            "  n{} [shape={shape}, label=\"{label}\"{colour}];",
            e.index()
        );
    }
    for e in tree.iter() {
        for &c in tree.children(e) {
            let _ = writeln!(out, "  n{} -> n{};", e.index(), c.index());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn dot_contains_all_elements() {
        let tree = corpus::covid();
        let dot = to_dot(&tree);
        for e in tree.iter() {
            assert!(dot.contains(tree.name(e)), "{}", tree.name(e));
        }
        assert!(!dot.contains("VOT"));
        assert!(dot.contains("AND"));
        assert!(dot.contains("OR"));
    }

    #[test]
    fn status_colours_failed_nodes() {
        let tree = corpus::fig1();
        let b = StatusVector::from_failed_names(&tree, &["IW", "H3"]);
        let dot = to_dot_with_status(&tree, Some(&b));
        assert!(dot.contains("#ffb3b3"));
        assert!(dot.contains("#b3ffb3"));
    }

    #[test]
    fn vot_label_present() {
        let tree = corpus::kofn(2, 3);
        let dot = to_dot(&tree);
        assert!(dot.contains("VOT(2/3)"));
    }
}
