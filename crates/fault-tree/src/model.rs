//! The fault-tree model of Definition 1: elements, gate types,
//! well-formedness.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a fault-tree element (basic or intermediate event).
///
/// Ids are dense indices into the owning [`FaultTree`]; they are stable for
/// the lifetime of the tree and order elements by declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub(crate) u32);

impl ElementId {
    /// The dense index of this element inside its tree.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Gate types of static fault trees (Definition 1, extended with
/// `VOT(k/N)` as described in Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateType {
    /// Fails iff *all* children have failed.
    And,
    /// Fails iff *at least one* child has failed.
    Or,
    /// `VOT(k/N)`: fails iff at least `k` of its `N` children have failed.
    ///
    /// The arity `N` is the number of children of the gate; the
    /// well-formedness check enforces `1 ≤ k ≤ N`.
    Vot {
        /// The threshold `k`.
        k: u32,
    },
}

impl fmt::Display for GateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateType::And => write!(f, "and"),
            GateType::Or => write!(f, "or"),
            GateType::Vot { k } => write!(f, "vot({k})"),
        }
    }
}

/// The role of an element: a leaf or a gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ElementKind {
    Basic,
    Gate(GateType),
}

#[derive(Debug, Clone)]
pub(crate) struct Element {
    pub(crate) name: String,
    pub(crate) kind: ElementKind,
    /// Children in declaration order; empty for basic events.
    pub(crate) children: Vec<ElementId>,
}

/// Errors raised while constructing or validating a fault tree.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultTreeError {
    /// An element name was declared twice.
    DuplicateName(String),
    /// A referenced element name does not exist.
    UnknownElement(String),
    /// A gate was declared with no children (Def. 1 requires `ch(e) ≠ ∅`).
    EmptyChildren(String),
    /// A `VOT(k/N)` gate with `k = 0` or `k > N`.
    VotArity {
        /// Gate name.
        name: String,
        /// Declared threshold.
        k: u32,
        /// Number of children.
        n: usize,
    },
    /// The graph contains a cycle through the named element.
    Cycle(String),
    /// An element is not reachable from the top element.
    Unreachable(String),
    /// The chosen top element is a basic event, not a gate.
    BasicTop(String),
    /// A basic event was given children.
    BasicWithChildren(String),
}

impl fmt::Display for FaultTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTreeError::DuplicateName(n) => write!(f, "duplicate element name `{n}`"),
            FaultTreeError::UnknownElement(n) => write!(f, "unknown element `{n}`"),
            FaultTreeError::EmptyChildren(n) => write!(f, "gate `{n}` has no children"),
            FaultTreeError::VotArity { name, k, n } => {
                write!(
                    f,
                    "gate `{name}` is VOT({k}/{n}) but requires 1 <= k <= {n}"
                )
            }
            FaultTreeError::Cycle(n) => write!(f, "cycle through element `{n}`"),
            FaultTreeError::Unreachable(n) => {
                write!(f, "element `{n}` is not reachable from the top element")
            }
            FaultTreeError::BasicTop(n) => write!(f, "top element `{n}` is a basic event"),
            FaultTreeError::BasicWithChildren(n) => {
                write!(f, "basic event `{n}` cannot have children")
            }
        }
    }
}

impl Error for FaultTreeError {}

/// A well-formed static fault tree `T = ⟨BE, IE, t, ch⟩` (Definition 1).
///
/// Use [`FaultTreeBuilder`](crate::FaultTreeBuilder) or the
/// [`galileo`](crate::galileo) parser to construct trees; construction
/// validates well-formedness (acyclicity, a unique top gate from which all
/// elements are reachable, non-empty gate children, VOT arity).
///
/// Basic events carry a *basic index* — their position among basic events
/// in declaration order — which is the index used by
/// [`StatusVector`](crate::StatusVector)s (Definition 2).
#[derive(Debug, Clone)]
pub struct FaultTree {
    pub(crate) elements: Vec<Element>,
    pub(crate) by_name: HashMap<String, ElementId>,
    pub(crate) top: ElementId,
    /// Basic events in declaration order.
    pub(crate) basic: Vec<ElementId>,
    /// For each element: `Some(basic index)` if it is a basic event.
    pub(crate) basic_index: Vec<Option<usize>>,
}

impl FaultTree {
    /// The top element `e_top`.
    pub fn top(&self) -> ElementId {
        self.top
    }

    /// Total number of elements `|E| = |BE| + |IE|`.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the tree has no elements. Well-formed trees are never empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of basic events `|BE|`.
    pub fn num_basic_events(&self) -> usize {
        self.basic.len()
    }

    /// Number of intermediate events `|IE|`.
    pub fn num_gates(&self) -> usize {
        self.elements.len() - self.basic.len()
    }

    /// Looks an element up by name.
    pub fn element(&self, name: &str) -> Option<ElementId> {
        self.by_name.get(name).copied()
    }

    /// Looks an element up by name, as a `Result`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultTreeError::UnknownElement`] if absent.
    pub fn require(&self, name: &str) -> Result<ElementId, FaultTreeError> {
        self.element(name)
            .ok_or_else(|| FaultTreeError::UnknownElement(name.to_string()))
    }

    /// The name of an element.
    pub fn name(&self, e: ElementId) -> &str {
        &self.elements[e.index()].name
    }

    /// Whether `e` is a basic event.
    pub fn is_basic(&self, e: ElementId) -> bool {
        matches!(self.elements[e.index()].kind, ElementKind::Basic)
    }

    /// The gate type of an intermediate event (`t(e)`), `None` for basic
    /// events.
    pub fn gate_type(&self, e: ElementId) -> Option<GateType> {
        match self.elements[e.index()].kind {
            ElementKind::Basic => None,
            ElementKind::Gate(t) => Some(t),
        }
    }

    /// The children `ch(e)` of an element (empty for basic events).
    pub fn children(&self, e: ElementId) -> &[ElementId] {
        &self.elements[e.index()].children
    }

    /// All elements in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = ElementId> + '_ {
        (0..self.elements.len() as u32).map(ElementId)
    }

    /// Basic events in declaration order — the universe of
    /// [`StatusVector`](crate::StatusVector)s.
    pub fn basic_events(&self) -> &[ElementId] {
        &self.basic
    }

    /// Intermediate events in declaration order.
    pub fn gates(&self) -> impl Iterator<Item = ElementId> + '_ {
        self.iter().filter(|&e| !self.is_basic(e))
    }

    /// The basic index of a basic event (its position in
    /// [`FaultTree::basic_events`]), `None` for gates.
    pub fn basic_index(&self, e: ElementId) -> Option<usize> {
        self.basic_index[e.index()]
    }

    /// Names of all basic events, in basic-index order.
    pub fn basic_event_names(&self) -> Vec<&str> {
        self.basic.iter().map(|&e| self.name(e)).collect()
    }

    /// The set of basic events in the cone of `e` (the leaves of the
    /// subtree rooted at `e`), in basic-index order.
    pub fn basic_events_under(&self, e: ElementId) -> Vec<ElementId> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![e];
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            if seen[x.index()] {
                continue;
            }
            seen[x.index()] = true;
            if self.is_basic(x) {
                out.push(x);
            } else {
                stack.extend(self.children(x).iter().copied());
            }
        }
        out.sort_by_key(|&b| self.basic_index(b));
        out
    }

    /// Validates well-formedness; called by the builder and parser.
    pub(crate) fn validate(&self) -> Result<(), FaultTreeError> {
        // Top must be a gate.
        if self.is_basic(self.top) {
            return Err(FaultTreeError::BasicTop(self.name(self.top).to_string()));
        }
        for e in self.iter() {
            let el = &self.elements[e.index()];
            match el.kind {
                ElementKind::Basic => {
                    if !el.children.is_empty() {
                        return Err(FaultTreeError::BasicWithChildren(el.name.clone()));
                    }
                }
                ElementKind::Gate(t) => {
                    if el.children.is_empty() {
                        return Err(FaultTreeError::EmptyChildren(el.name.clone()));
                    }
                    if let GateType::Vot { k } = t {
                        let n = el.children.len();
                        if k == 0 || k as usize > n {
                            return Err(FaultTreeError::VotArity {
                                name: el.name.clone(),
                                k,
                                n,
                            });
                        }
                    }
                }
            }
        }
        // Acyclicity via iterative DFS with colouring, and reachability
        // from the top element.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.len()];
        let mut stack: Vec<(ElementId, usize)> = vec![(self.top, 0)];
        colour[self.top.index()] = Colour::Grey;
        while let Some(&mut (e, ref mut next)) = stack.last_mut() {
            let children = &self.elements[e.index()].children;
            if *next < children.len() {
                let c = children[*next];
                *next += 1;
                match colour[c.index()] {
                    Colour::White => {
                        colour[c.index()] = Colour::Grey;
                        stack.push((c, 0));
                    }
                    Colour::Grey => {
                        return Err(FaultTreeError::Cycle(self.name(c).to_string()));
                    }
                    Colour::Black => {}
                }
            } else {
                colour[e.index()] = Colour::Black;
                stack.pop();
            }
        }
        for e in self.iter() {
            if colour[e.index()] == Colour::White {
                return Err(FaultTreeError::Unreachable(self.name(e).to_string()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{FaultTreeBuilder, FaultTreeError, GateType};

    #[test]
    fn accessors() {
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["a", "b"]).unwrap();
        b.gate("top", GateType::And, ["a", "b"]).unwrap();
        let t = b.build("top").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_basic_events(), 2);
        assert_eq!(t.num_gates(), 1);
        assert_eq!(t.name(t.top()), "top");
        assert_eq!(t.gate_type(t.top()), Some(GateType::And));
        let a = t.element("a").unwrap();
        assert!(t.is_basic(a));
        assert_eq!(t.basic_index(a), Some(0));
        assert_eq!(t.children(t.top()).len(), 2);
        assert_eq!(t.basic_event_names(), vec!["a", "b"]);
    }

    #[test]
    fn cycle_detected() {
        let mut b = FaultTreeBuilder::new();
        b.basic_event("x").unwrap();
        b.gate("g1", GateType::And, ["g2", "x"]).unwrap();
        b.gate("g2", GateType::Or, ["g1"]).unwrap();
        let err = b.build("g1").unwrap_err();
        assert!(matches!(err, FaultTreeError::Cycle(_)));
    }

    #[test]
    fn unreachable_detected() {
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["a", "b", "orphan"]).unwrap();
        b.gate("top", GateType::Or, ["a", "b"]).unwrap();
        let err = b.build("top").unwrap_err();
        assert_eq!(err, FaultTreeError::Unreachable("orphan".to_string()));
    }

    #[test]
    fn vot_arity_checked() {
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["a", "b"]).unwrap();
        b.gate("top", GateType::Vot { k: 3 }, ["a", "b"]).unwrap();
        let err = b.build("top").unwrap_err();
        assert!(matches!(err, FaultTreeError::VotArity { .. }));
    }

    #[test]
    fn basic_top_rejected() {
        let mut b = FaultTreeBuilder::new();
        b.basic_event("a").unwrap();
        let err = b.build("a").unwrap_err();
        assert!(matches!(err, FaultTreeError::BasicTop(_)));
    }

    #[test]
    fn dag_sharing_allowed() {
        // Repeated basic events and shared gates are legal (Fig. 2 uses
        // both).
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["x", "y"]).unwrap();
        b.gate("shared", GateType::Or, ["x", "y"]).unwrap();
        b.gate("g1", GateType::And, ["shared", "x"]).unwrap();
        b.gate("g2", GateType::And, ["shared", "y"]).unwrap();
        b.gate("top", GateType::Or, ["g1", "g2"]).unwrap();
        let t = b.build("top").unwrap();
        assert_eq!(t.num_gates(), 4);
    }

    #[test]
    fn cone_of_influence() {
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["a", "b", "c"]).unwrap();
        b.gate("g", GateType::And, ["a", "b"]).unwrap();
        b.gate("top", GateType::Or, ["g", "c"]).unwrap();
        let t = b.build("top").unwrap();
        let g = t.element("g").unwrap();
        let cone = t.basic_events_under(g);
        let names: Vec<&str> = cone.iter().map(|&e| t.name(e)).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
